// Incremental delta-extraction bench + gate: a churning fleet (every
// endpoint's store mutates daily at data granularity) crawled for N days
// under IncrementalMode::kTrack (probe + full re-extraction every cycle,
// the control arm) versus IncrementalMode::kDelta (probe-skip quiet
// endpoints, re-extract only dirty classes, patch summaries in place).
//
// Emits machine-readable BENCH_delta_extraction.json and exits nonzero
// when a gate fails:
//   - content identity: the kDelta run's ContentFingerprint (what the
//     fleet learned) is byte-identical to the kTrack run's — incremental
//     extraction may change how endpoints are queried, never what the
//     summaries say;
//   - deployment invariance: the kDelta canonical history is identical
//     across {1, 2, 4} shards x {1, 4} parallelism;
//   - makespan: the kDelta run's total simulated fleet makespan is >= 3x
//     smaller than kTrack's at 5% daily churn (simulated time from the
//     charged-latency model, so the gate is deterministic and does not
//     need a quiet machine).
//
//   ./build/bench_delta_extraction [num_endpoints] [days]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/logging.h"
#include "hbold/fleet.h"

namespace {

using hbold::FleetReport;
using hbold::IncrementalMode;
using hbold::Json;
using hbold::SimClock;
using hbold::Stopwatch;

constexpr double kChurnFraction = 0.05;
/// Share of the fleet whose data never changes: real LD fleets are mostly
/// quiet, and the quiet endpoints are what the one-probe steady state is
/// for.
constexpr double kQuietFraction = 0.34;

hbold::bench::FleetOptions WorldOptions(size_t num_endpoints) {
  hbold::bench::FleetOptions options;
  options.size = num_endpoints;
  options.max_classes = 60;
  options.max_instances_per_class = 30;
  options.seed = 4242;
  options.mutation.daily_churn_fraction = kChurnFraction;
  options.mutation.seed = 2020;
  options.quiet_fraction = kQuietFraction;
  return options;
}

struct ArmResult {
  FleetReport report;
  double wall_ms = 0;
  double total_makespan_ms = 0;
  size_t probes = 0;
  size_t probe_skips = 0;
  size_t delta_extractions = 0;
  size_t queries = 0;
};

/// One full crawl of the seeded churning world. The fleet (stores
/// included) is rebuilt from scratch per arm: mutation rewrites the
/// stores day by day, so arms must not share them. Identical options
/// replay identical churn histories.
ArmResult RunArm(size_t num_endpoints, int64_t days, IncrementalMode mode,
                 int shards, int parallelism) {
  SimClock clock;
  std::vector<hbold::bench::FleetMember> members =
      hbold::bench::BuildFleet(WorldOptions(num_endpoints), &clock);

  hbold::FleetOptions options;
  options.num_shards = shards;
  options.server.parallelism = parallelism;
  options.server.refresh_age_days = 1;  // churn-sensitive: crawl daily
  options.server.incremental.mode = mode;
  if (shards == 1 && parallelism == 1) options.fleet_workers = 1;
  hbold::Fleet fleet(&clock, options);
  for (hbold::bench::FleetMember& member : members) {
    hbold::endpoint::EndpointRecord record;
    record.url = member.url;
    record.name = member.endpoint->name();
    fleet.RegisterEndpoint(record);
    fleet.AttachEndpoint(member.url, member.endpoint.get());
  }

  ArmResult result;
  Stopwatch wall;
  result.report = fleet.RunSimulation(days);
  result.wall_ms = wall.ElapsedMillis();
  for (const hbold::FleetDayReport& day : result.report.days) {
    result.total_makespan_ms += day.fleet_makespan_ms;
    result.probes += day.probes;
    result.probe_skips += day.probe_skips;
    result.delta_extractions += day.delta_extractions;
  }
  for (const hbold::bench::FleetMember& member : members) {
    result.queries += member.endpoint->queries_served();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  hbold::Logger::set_threshold(hbold::LogLevel::kWarn);
  const size_t num_endpoints =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 24;
  const int64_t days = argc > 2 ? std::atoll(argv[2]) : 8;

  std::printf("=== delta extraction: %zu endpoints, %lld days, %.0f%% "
              "daily churn ===\n",
              num_endpoints, static_cast<long long>(days),
              kChurnFraction * 100);

  ArmResult track =
      RunArm(num_endpoints, days, IncrementalMode::kTrack, 1, 1);
  ArmResult delta =
      RunArm(num_endpoints, days, IncrementalMode::kDelta, 1, 1);

  // Gate 1: what the fleet learned is identical across arms.
  bool content_identity = delta.report.ContentFingerprint() ==
                          track.report.ContentFingerprint();

  // Gate 2: kDelta's canonical history is deployment-invariant.
  const std::string canonical = delta.report.CanonicalDump();
  bool invariant = true;
  struct Deployment {
    int shards, parallelism;
  };
  for (const Deployment& dep :
       {Deployment{2, 1}, Deployment{4, 1}, Deployment{1, 4},
        Deployment{4, 4}}) {
    ArmResult run = RunArm(num_endpoints, days, IncrementalMode::kDelta,
                           dep.shards, dep.parallelism);
    invariant = invariant && run.report.CanonicalDump() == canonical;
  }

  // Gate 3: the incremental crawl is >= 3x cheaper in simulated time.
  double makespan_reduction =
      delta.total_makespan_ms > 0
          ? track.total_makespan_ms / delta.total_makespan_ms
          : 0;
  double query_reduction =
      delta.queries > 0
          ? static_cast<double>(track.queries) /
                static_cast<double>(delta.queries)
          : 0;

  std::printf("%-28s %14s %14s\n", "", "kTrack (full)", "kDelta");
  std::printf("%-28s %12.1f ms %12.1f ms\n", "total fleet makespan",
              track.total_makespan_ms, delta.total_makespan_ms);
  std::printf("%-28s %14zu %14zu\n", "endpoint queries", track.queries,
              delta.queries);
  std::printf("%-28s %14zu %14zu\n", "probe skips", track.probe_skips,
              delta.probe_skips);
  std::printf("%-28s %14zu %14zu\n", "delta extractions",
              track.delta_extractions, delta.delta_extractions);
  std::printf("\nmakespan reduction %.2fx, query reduction %.2fx\n",
              makespan_reduction, query_reduction);
  std::printf("content %s (fingerprint %s), kDelta history %s across "
              "{1,2,4} shards x {1,4} parallelism\n",
              content_identity ? "IDENTICAL" : "DIVERGED",
              delta.report.ContentFingerprint().c_str(),
              invariant ? "IDENTICAL" : "DIVERGED");

  Json report = Json::MakeObject();
  report.Set("endpoints", static_cast<int64_t>(num_endpoints));
  report.Set("days", static_cast<int64_t>(days));
  report.Set("churn_fraction", kChurnFraction);
  report.Set("content_fingerprint", delta.report.ContentFingerprint());
  report.Set("delta_fingerprint", delta.report.Fingerprint());
  report.Set("track_total_makespan_ms", track.total_makespan_ms);
  report.Set("delta_total_makespan_ms", delta.total_makespan_ms);
  report.Set("makespan_reduction", makespan_reduction);
  report.Set("track_queries", static_cast<int64_t>(track.queries));
  report.Set("delta_queries", static_cast<int64_t>(delta.queries));
  report.Set("query_reduction", query_reduction);
  report.Set("probes", static_cast<int64_t>(delta.probes));
  report.Set("probe_skips", static_cast<int64_t>(delta.probe_skips));
  report.Set("delta_extractions",
             static_cast<int64_t>(delta.delta_extractions));
  report.Set("track_wall_ms", track.wall_ms);
  report.Set("delta_wall_ms", delta.wall_ms);
  Json gates = Json::MakeObject();
  gates.Set("content_identity", content_identity);
  gates.Set("deployment_invariance", invariant);
  gates.Set("makespan_reduction_3x", makespan_reduction >= 3.0);
  report.Set("gates", std::move(gates));

  std::ofstream out("BENCH_delta_extraction.json");
  out << report.Dump(2) << "\n";
  out.close();
  std::printf("wrote BENCH_delta_extraction.json\n");

  if (!content_identity) {
    std::fprintf(stderr,
                 "GATE FAILED: kDelta content diverged from full "
                 "re-extraction\n");
    return 1;
  }
  if (!invariant) {
    std::fprintf(stderr,
                 "GATE FAILED: kDelta canonical history diverged across "
                 "deployments\n");
    return 1;
  }
  if (makespan_reduction < 3.0) {
    std::fprintf(stderr,
                 "GATE FAILED: makespan reduction %.2fx < 3x\n",
                 makespan_reduction);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
