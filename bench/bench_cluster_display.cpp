// E2 — §3.2 Cluster Schema display time: precomputed (stored in the
// document DB by the server layer) vs computed on-the-fly at every click
// (the previous H-BOLD demo).
//
// Paper claim: "on half of the SPARQL endpoints stored in H-BOLD, the time
// needed to display the Cluster Schema to the user is decreased by the
// 35%" — i.e. the median improvement is at least 35%.
//
// We process a 130-endpoint fleet once, then measure for every endpoint:
//   old path: load Schema Summary + run Louvain + build the Cluster Schema
//   new path: load the precomputed Cluster Schema document
// and report the distribution of per-endpoint improvements.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "hbold/hbold.h"

int main() {
  using hbold::bench::Percentile;

  hbold::SimClock clock;
  hbold::store::Database db;
  hbold::Server server(&db, &clock);

  hbold::bench::FleetOptions options;
  options.size = 130;
  options.min_classes = 5;
  options.max_classes = 150;
  options.max_instances_per_class = 30;
  // Dialect quirks don't matter here; keep every endpoint extractable fast.
  options.no_aggregates_fraction = 0;
  options.no_group_by_fraction = 0;
  options.row_capped_fraction = 0;
  auto fleet = hbold::bench::BuildFleet(options, &clock);
  hbold::bench::AttachFleet(&fleet, &server);

  std::printf("processing %zu endpoints through the server pipeline...\n",
              fleet.size());
  size_t processed = 0;
  for (const auto& member : fleet) {
    if (server.ProcessEndpoint(member.url).ok()) ++processed;
  }
  std::printf("processed %zu/%zu\n", processed, fleet.size());

  hbold::Presentation presentation(&db);
  constexpr int kRepetitions = 15;

  std::vector<double> improvements;  // percent reduction per endpoint
  std::vector<double> old_times, new_times;
  for (const auto& member : fleet) {
    // Median of repeated measurements per path, interleaved.
    std::vector<double> old_ms, new_ms;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      double compute = 0, load = 0;
      auto on_the_fly =
          presentation.ComputeClusterSchemaOnTheFly(member.url, &compute);
      auto stored = presentation.LoadClusterSchema(member.url, &load);
      if (!on_the_fly.ok() || !stored.ok()) break;
      old_ms.push_back(compute);
      new_ms.push_back(load);
    }
    if (old_ms.empty()) continue;
    double old_t = Percentile(old_ms, 50);
    double new_t = Percentile(new_ms, 50);
    old_times.push_back(old_t);
    new_times.push_back(new_t);
    improvements.push_back(100.0 * (old_t - new_t) / old_t);
  }

  hbold::bench::PrintHeader(
      "E2: §3.2 Cluster Schema display time, precomputed vs on-the-fly");
  std::printf("endpoints measured: %zu\n", improvements.size());
  std::printf("on-the-fly (old) median: %.3f ms   p95: %.3f ms\n",
              Percentile(old_times, 50), Percentile(old_times, 95));
  std::printf("precomputed (new) median: %.3f ms   p95: %.3f ms\n",
              Percentile(new_times, 50), Percentile(new_times, 95));
  std::printf("\nper-endpoint display-time reduction:\n");
  for (double p : {5.0, 25.0, 50.0, 75.0, 95.0}) {
    std::printf("  p%-3.0f  %6.1f%%\n", p, Percentile(improvements, p));
  }
  size_t at_least_35 = 0;
  for (double i : improvements) {
    if (i >= 35.0) ++at_least_35;
  }
  double fraction = improvements.empty()
                        ? 0
                        : 100.0 * static_cast<double>(at_least_35) /
                              static_cast<double>(improvements.size());

  std::printf("\n%-56s %-14s %s\n", "metric", "paper", "measured");
  std::printf("%-56s %-14s %.0f%% of endpoints\n",
              "display time reduced by >= 35%", ">= 50% of endpoints",
              fraction);
  bool ok = fraction >= 50.0;
  std::printf("\nshape holds (median improvement >= 35%%): %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
