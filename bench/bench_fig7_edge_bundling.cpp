// E7 — Fig. 7: Hierarchical Edge Bundling of the Schema Summary (Holten
// 2006). Regenerates the figure on the Scholarly LD, sweeps the bundling
// strength beta, and reports the ink (total curve length) against the
// straight-chord baseline plus the domain/range classification around the
// Event class of interest that the paper's figure highlights.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "cluster/cluster_schema.h"
#include "cluster/louvain.h"
#include "extraction/extractor.h"
#include "viz/edge_bundling.h"
#include "viz/render.h"
#include "workload/scholarly.h"

namespace {

struct Fixture {
  hbold::schema::SchemaSummary summary;
  hbold::cluster::ClusterSchema clusters;

  static Fixture& Get() {
    static Fixture* fixture = [] {
      auto* f = new Fixture();
      hbold::rdf::TripleStore store;
      hbold::workload::GenerateScholarly({}, &store);
      hbold::SimClock clock;
      hbold::endpoint::SimulatedRemoteEndpoint ep("u", "n", &store, &clock);
      auto indexes =
          hbold::extraction::IndexExtractor().Extract(&ep, nullptr);
      f->summary = hbold::schema::SchemaSummary::FromIndexes(*indexes);
      f->clusters = hbold::cluster::ClusterSchema::FromPartition(
          f->summary, hbold::cluster::Louvain(
                          hbold::cluster::BuildClassGraph(f->summary)));
      return f;
    }();
    return *fixture;
  }
};

void PrintTables() {
  Fixture& f = Fixture::Get();
  hbold::bench::PrintHeader(
      "E7: Fig. 7 hierarchical edge bundling of the Schema Summary");
  std::printf("schema: %zu classes, %zu property arcs, %zu clusters\n\n",
              f.summary.NodeCount(), f.summary.ArcCount(),
              f.clusters.ClusterCount());

  // Beta sweep: ink vs the straight-line baseline.
  std::printf("%-8s %14s %14s %12s\n", "beta", "bundled ink", "straight ink",
              "ratio");
  for (double beta : {0.0, 0.25, 0.5, 0.75, 0.85, 1.0}) {
    hbold::viz::EdgeBundlingOptions opt;
    opt.beta = beta;
    auto layout = hbold::viz::BundleSchemaSummary(f.summary, f.clusters, opt);
    std::printf("%-8.2f %14.1f %14.1f %12.3f\n", beta, layout.TotalInk(),
                layout.StraightInk(),
                layout.TotalInk() / layout.StraightInk());
  }
  std::printf("\nshape check: ratio == 1 at beta=0 and grows monotonically —\n"
              "the Holten trade of longer, hierarchy-following curves for\n"
              "less visual clutter.\n");

  // The paper's focus view: Event in bold, its rdfs:range (Situation,
  // green) and rdfs:domain classes (Vevent, SessionEvent, ConferenceSeries,
  // InformationObject, red).
  auto layout = hbold::viz::BundleSchemaSummary(f.summary, f.clusters, {});
  std::string ns = hbold::workload::kScholarlyNs;
  int event_node = f.summary.FindNode(ns + "Event");
  std::set<std::string> ranges, domains;
  for (const auto& arc : f.summary.arcs()) {
    if (static_cast<int>(arc.src) == event_node &&
        static_cast<int>(arc.dst) != event_node) {
      ranges.insert(f.summary.nodes()[arc.dst].label);
    }
    if (static_cast<int>(arc.dst) == event_node &&
        static_cast<int>(arc.src) != event_node) {
      domains.insert(f.summary.nodes()[arc.src].label);
    }
  }
  std::printf("\nEvent focus (paper: range={Situation}, domain={Vevent,\n"
              "SessionEvent, ConferenceSeries, InformationObject, ...}):\n");
  std::printf("  measured ranges:");
  for (const auto& r : ranges) std::printf(" %s", r.c_str());
  std::printf("\n  measured domains:");
  for (const auto& d : domains) std::printf(" %s", d.c_str());
  std::printf("\n");
}

void BM_BundleScholarly(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  hbold::viz::EdgeBundlingOptions opt;
  opt.beta = 0.85;
  for (auto _ : state) {
    auto layout = hbold::viz::BundleSchemaSummary(f.summary, f.clusters, opt);
    benchmark::DoNotOptimize(layout);
  }
}
BENCHMARK(BM_BundleScholarly);

void BM_BundleAndRenderSvg(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    auto layout = hbold::viz::BundleSchemaSummary(f.summary, f.clusters, {});
    auto svg = hbold::viz::RenderEdgeBundling(layout, 300, 0);
    benchmark::DoNotOptimize(svg.ToString());
  }
}
BENCHMARK(BM_BundleAndRenderSvg);

void BM_SampleBSpline(benchmark::State& state) {
  std::vector<hbold::viz::Point> control{
      {0, 0}, {100, 50}, {150, 150}, {50, 200}, {200, 250}};
  for (auto _ : state) {
    auto curve = hbold::viz::SampleBSpline(
        control, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(BM_SampleBSpline)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  PrintTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
