// Adversarial delta-extraction bench + gate: a mixed fleet of honest,
// lying, partial-fingerprint, and transiently-flaky endpoints crawled
// under IncrementalMode::kBounded (staleness-bounded incremental with
// quarantine) versus IncrementalMode::kTrack (probe + full re-extraction
// every cycle, the always-full control arm).
//
// The adversary and the world both freeze a few days before the end
// (ProbeFaultModel/MutationModel::freeze_after_day), leaving at least one
// staleness budget of honest days: the gate is that the bounded arm's
// FINAL persisted artifacts are byte-identical to the control arm's —
// whatever the probes lied about mid-run, quarantine + forced refresh
// converged back to the truth within the budget.
//
// Emits machine-readable BENCH_adversarial_delta.json and exits nonzero
// when a gate fails:
//   - final-state identity: normalized summaries + cluster docs of the
//     kBounded run match the kTrack run byte-for-byte after convergence;
//   - deployment invariance: the kBounded canonical history is identical
//     across {1, 2, 4} shards x {1, 4} parallelism — fault coins are pure
//     functions of (seed, day, attempt), never of thread schedule;
//   - adversary detected: the run actually surfaced probe mismatches and
//     forced refreshes (a silent pass would mean the faults never fired);
//   - makespan: the bounded arm still beats always-full-refresh >= 1.2x
//     in simulated fleet time despite paying for forced refreshes.
//
//   ./build/bench_adversarial_delta [num_endpoints] [days]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/logging.h"
#include "endpoint/simulated_endpoint.h"
#include "hbold/fleet.h"
#include "rdf/graph.h"
#include "store/database.h"
#include "workload/ld_generator.h"

namespace {

using hbold::FleetReport;
using hbold::IncrementalMode;
using hbold::Json;
using hbold::SimClock;
using hbold::Stopwatch;

constexpr double kChurnFraction = 0.05;
constexpr int64_t kStalenessBudgetDays = 4;

/// One seeded adversarial world: endpoints, their stores, and the fleet
/// driving them. Rebuilt from scratch per arm — mutation rewrites the
/// stores day by day, so arms must not share them.
struct AdversarialWorld {
  SimClock clock;
  std::vector<std::unique_ptr<hbold::rdf::TripleStore>> stores;
  std::vector<std::unique_ptr<hbold::endpoint::SimulatedRemoteEndpoint>>
      endpoints;
  std::unique_ptr<hbold::Fleet> fleet;
};

std::string Url(size_t i) {
  return "http://adv" + std::to_string(i) + ".example.org/sparql";
}

std::unique_ptr<AdversarialWorld> BuildWorld(size_t num_endpoints,
                                             int64_t freeze_day,
                                             IncrementalMode mode, int shards,
                                             int parallelism) {
  auto world = std::make_unique<AdversarialWorld>();
  hbold::FleetOptions options;
  options.num_shards = shards;
  options.server.parallelism = parallelism;
  options.server.refresh_age_days = 1;  // churn-sensitive: crawl daily
  options.server.incremental.mode = mode;
  options.server.incremental.staleness_budget_days = kStalenessBudgetDays;
  options.server.incremental.quarantine_strikes = 2;
  options.server.incremental.quarantine_days = 2;
  if (shards == 1 && parallelism == 1) options.fleet_workers = 1;
  world->fleet = std::make_unique<hbold::Fleet>(&world->clock, options);

  for (size_t i = 0; i < num_endpoints; ++i) {
    auto store = std::make_unique<hbold::rdf::TripleStore>();
    hbold::workload::SyntheticLdConfig config;
    config.namespace_iri =
        "http://adv" + std::to_string(i) + ".example.org/";
    config.num_classes = 8 + (i * 7) % 40;
    config.num_domains = 2 + config.num_classes / 12;
    config.max_instances_per_class = 24;
    config.seed = 7100 + i * 7919;
    hbold::workload::GenerateSyntheticLd(config, store.get());

    hbold::endpoint::Dialect dialect = hbold::endpoint::Dialect::Full();
    if (i % 4 == 1) dialect = hbold::endpoint::Dialect::NoGroupBy();
    if (i % 4 == 2) dialect = hbold::endpoint::Dialect::NoAggregates();
    if (i % 4 == 3) dialect = hbold::endpoint::Dialect::RowCapped(4096);

    hbold::endpoint::MutationModel mutation;
    // A third of the fleet is quiet; the rest churns daily. Everything
    // freezes after `freeze_day` so the convergence gate is well-defined.
    mutation.daily_churn_fraction = (i % 3 == 0) ? 0.0 : kChurnFraction;
    mutation.hot_class_fraction = 0.5;
    mutation.seed = 6300 + i * 104729;
    mutation.freeze_after_day = freeze_day;

    // Fault mix: honest / quiet-liar / partial+truncated / flaky probes.
    hbold::endpoint::ProbeFaultModel faults;
    faults.seed = 9900 + i * 31337;
    faults.freeze_after_day = freeze_day;
    switch (i % 4) {
      case 1:
        faults.lie_generation_probability = 0.4;
        faults.lie_fingerprint_probability = 0.4;
        break;
      case 2:
        faults.partial_probability = 0.4;
        faults.truncate_probability = 0.25;
        break;
      case 3:
        faults.transient_failure_probability = 0.35;
        break;
      default:  // honest
        break;
    }

    auto ep = std::make_unique<hbold::endpoint::SimulatedRemoteEndpoint>(
        Url(i), "Adv " + std::to_string(i), store.get(), &world->clock,
        dialect, hbold::endpoint::AvailabilityModel{},
        hbold::endpoint::LatencyModel{}, mutation, faults);
    hbold::endpoint::EndpointRecord record;
    record.url = Url(i);
    record.name = ep->name();
    world->fleet->RegisterEndpoint(record);
    world->fleet->AttachEndpoint(Url(i), ep.get());
    world->stores.push_back(std::move(store));
    world->endpoints.push_back(std::move(ep));
  }
  return world;
}

struct ArmResult {
  FleetReport report;
  /// Final persisted artifacts, endpoint_url -> normalized doc dump
  /// (provenance fields zeroed so kTrack's daily re-extraction stamps
  /// compare equal to kBounded's skip-and-refresh stamps).
  std::map<std::string, std::string> final_state;
  double wall_ms = 0;
  double total_makespan_ms = 0;
  size_t queries = 0;
  size_t probe_skips = 0;
  size_t delta_extractions = 0;
  size_t probe_mismatches = 0;
  size_t forced_refreshes = 0;
  size_t quarantines_entered = 0;
  size_t quarantines_exited = 0;
};

ArmResult RunArm(size_t num_endpoints, int64_t days, int64_t freeze_day,
                 IncrementalMode mode, int shards, int parallelism) {
  std::unique_ptr<AdversarialWorld> world =
      BuildWorld(num_endpoints, freeze_day, mode, shards, parallelism);
  ArmResult result;
  Stopwatch wall;
  result.report = world->fleet->RunSimulation(days);
  result.wall_ms = wall.ElapsedMillis();
  for (const hbold::FleetDayReport& day : result.report.days) {
    result.total_makespan_ms += day.fleet_makespan_ms;
    result.probe_skips += day.probe_skips;
    result.delta_extractions += day.delta_extractions;
    result.probe_mismatches += day.probe_mismatches;
    result.forced_refreshes += day.forced_refreshes;
    result.quarantines_entered += day.quarantines_entered;
    result.quarantines_exited += day.quarantines_exited;
  }
  for (const auto& ep : world->endpoints) {
    result.queries += ep->queries_served();
  }
  for (const char* collection :
       {hbold::kSummariesCollection, hbold::kClustersCollection}) {
    for (size_t s = 0; s < world->fleet->num_shards(); ++s) {
      const hbold::store::Collection* c =
          world->fleet->shard_db(s).FindCollection(collection);
      if (c == nullptr) continue;
      for (hbold::store::Document doc : c->Snapshot()) {
        std::string key =
            std::string(collection) + "|" + doc.GetString("endpoint_url");
        doc.Set("_id", 0);
        doc.Set("extracted_day", 0);
        result.final_state[key] = doc.Dump();
      }
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  hbold::Logger::set_threshold(hbold::LogLevel::kWarn);
  const size_t num_endpoints =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 24;
  const int64_t days = argc > 2 ? std::atoll(argv[2]) : 14;
  // Freeze the world and the adversary one staleness budget (plus the
  // final crawl day) before the end, so convergence is guaranteed iff the
  // bounded pipeline's forced refreshes work as specified.
  const int64_t freeze_day = days - kStalenessBudgetDays - 1;

  std::printf("=== adversarial delta: %zu endpoints, %lld days (freeze "
              "after day %lld), %.0f%% churn ===\n",
              num_endpoints, static_cast<long long>(days),
              static_cast<long long>(freeze_day), kChurnFraction * 100);

  ArmResult track = RunArm(num_endpoints, days, freeze_day,
                           IncrementalMode::kTrack, 1, 1);
  ArmResult bounded = RunArm(num_endpoints, days, freeze_day,
                             IncrementalMode::kBounded, 1, 1);

  // Gate 1: after the honest tail, the bounded arm's persisted artifacts
  // are byte-identical to always-full-refresh truth.
  bool final_identity = bounded.final_state == track.final_state;

  // Gate 2: kBounded's canonical history is deployment-invariant even
  // with every fault class firing.
  const std::string canonical = bounded.report.CanonicalDump();
  bool invariant = true;
  struct Deployment {
    int shards, parallelism;
  };
  for (const Deployment& dep :
       {Deployment{2, 1}, Deployment{4, 1}, Deployment{1, 4},
        Deployment{4, 4}}) {
    ArmResult run = RunArm(num_endpoints, days, freeze_day,
                           IncrementalMode::kBounded, dep.shards,
                           dep.parallelism);
    invariant = invariant && run.report.CanonicalDump() == canonical;
  }

  // Gate 3: the defenses actually fired — a run where no probe ever
  // mismatched would be vacuous.
  bool adversary_detected =
      bounded.probe_mismatches > 0 && bounded.forced_refreshes > 0;

  // Gate 4: even paying for forced refreshes and quarantine, bounded
  // incremental still beats always-full-refresh in simulated fleet time.
  double makespan_reduction =
      bounded.total_makespan_ms > 0
          ? track.total_makespan_ms / bounded.total_makespan_ms
          : 0;

  std::printf("%-28s %14s %14s\n", "", "kTrack (full)", "kBounded");
  std::printf("%-28s %12.1f ms %12.1f ms\n", "total fleet makespan",
              track.total_makespan_ms, bounded.total_makespan_ms);
  std::printf("%-28s %14zu %14zu\n", "endpoint queries", track.queries,
              bounded.queries);
  std::printf("%-28s %14zu %14zu\n", "probe skips", track.probe_skips,
              bounded.probe_skips);
  std::printf("%-28s %14zu %14zu\n", "delta extractions",
              track.delta_extractions, bounded.delta_extractions);
  std::printf("%-28s %14zu %14zu\n", "probe mismatches",
              track.probe_mismatches, bounded.probe_mismatches);
  std::printf("%-28s %14zu %14zu\n", "forced refreshes",
              track.forced_refreshes, bounded.forced_refreshes);
  std::printf("%-28s %14zu %14zu\n", "quarantines entered",
              track.quarantines_entered, bounded.quarantines_entered);
  std::printf("\nmakespan reduction %.2fx; final state %s; kBounded "
              "history %s across {1,2,4} shards x {1,4} parallelism\n",
              makespan_reduction,
              final_identity ? "IDENTICAL" : "DIVERGED",
              invariant ? "IDENTICAL" : "DIVERGED");

  Json report = Json::MakeObject();
  report.Set("endpoints", static_cast<int64_t>(num_endpoints));
  report.Set("days", static_cast<int64_t>(days));
  report.Set("freeze_day", freeze_day);
  report.Set("staleness_budget_days", kStalenessBudgetDays);
  report.Set("churn_fraction", kChurnFraction);
  report.Set("bounded_fingerprint", bounded.report.Fingerprint());
  report.Set("track_total_makespan_ms", track.total_makespan_ms);
  report.Set("bounded_total_makespan_ms", bounded.total_makespan_ms);
  report.Set("makespan_reduction", makespan_reduction);
  report.Set("track_queries", static_cast<int64_t>(track.queries));
  report.Set("bounded_queries", static_cast<int64_t>(bounded.queries));
  report.Set("probe_skips", static_cast<int64_t>(bounded.probe_skips));
  report.Set("delta_extractions",
             static_cast<int64_t>(bounded.delta_extractions));
  report.Set("probe_mismatches",
             static_cast<int64_t>(bounded.probe_mismatches));
  report.Set("forced_refreshes",
             static_cast<int64_t>(bounded.forced_refreshes));
  report.Set("quarantines_entered",
             static_cast<int64_t>(bounded.quarantines_entered));
  report.Set("quarantines_exited",
             static_cast<int64_t>(bounded.quarantines_exited));
  report.Set("track_wall_ms", track.wall_ms);
  report.Set("bounded_wall_ms", bounded.wall_ms);
  Json gates = Json::MakeObject();
  gates.Set("final_state_identity", final_identity);
  gates.Set("deployment_invariance", invariant);
  gates.Set("adversary_detected", adversary_detected);
  gates.Set("makespan_reduction_1_2x", makespan_reduction >= 1.2);
  report.Set("gates", std::move(gates));

  std::ofstream out("BENCH_adversarial_delta.json");
  out << report.Dump(2) << "\n";
  out.close();
  std::printf("wrote BENCH_adversarial_delta.json\n");

  if (!final_identity) {
    std::fprintf(stderr,
                 "GATE FAILED: kBounded final artifacts diverged from "
                 "always-full truth after the honest tail\n");
    return 1;
  }
  if (!invariant) {
    std::fprintf(stderr,
                 "GATE FAILED: kBounded canonical history diverged across "
                 "deployments\n");
    return 1;
  }
  if (!adversary_detected) {
    std::fprintf(stderr,
                 "GATE FAILED: no probe mismatch / forced refresh was ever "
                 "recorded — the adversary never fired\n");
    return 1;
  }
  if (makespan_reduction < 1.2) {
    std::fprintf(stderr, "GATE FAILED: makespan reduction %.2fx < 1.2x\n",
                 makespan_reduction);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
