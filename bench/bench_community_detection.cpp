// E9 — community detection for the Cluster Schema [Po & Malvezzi 2018]:
// Louvain (the algorithm H-BOLD ships) against label propagation and
// greedy agglomerative merging, on schema-shaped graphs of growing size.
// Reports modularity, community count and runtime per (algorithm, size).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/cluster_schema.h"
#include "cluster/greedy_merge.h"
#include "cluster/label_propagation.h"
#include "cluster/louvain.h"
#include "cluster/modularity.h"
#include "extraction/extractor.h"
#include "workload/ld_generator.h"

namespace {

/// Builds the class graph of a synthetic LD with `classes` classes (the
/// same pipeline the server uses, so the graphs have schema-like shape:
/// domains with dense intra-links).
hbold::cluster::UGraph SchemaGraph(size_t classes, uint64_t seed) {
  hbold::rdf::TripleStore store;
  hbold::workload::SyntheticLdConfig config;
  config.num_classes = classes;
  config.num_domains = 2 + classes / 10;
  config.max_instances_per_class = 20;
  config.seed = seed;
  hbold::workload::GenerateSyntheticLd(config, &store);
  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep("u", "n", &store, &clock);
  auto indexes = hbold::extraction::IndexExtractor().Extract(&ep, nullptr);
  auto summary = hbold::schema::SchemaSummary::FromIndexes(*indexes);
  return hbold::cluster::BuildClassGraph(summary);
}

void PrintTable() {
  hbold::bench::PrintHeader(
      "E9: community detection on Schema Summary graphs");
  std::printf("%-10s %-18s %12s %12s %12s\n", "classes", "algorithm",
              "modularity", "clusters", "time ms");
  for (size_t classes : {10, 50, 100, 400, 1000}) {
    hbold::cluster::UGraph graph = SchemaGraph(classes, classes * 13);
    struct Algo {
      const char* name;
      hbold::cluster::Partition (*run)(const hbold::cluster::UGraph&);
    };
    const Algo algos[] = {
        {"louvain",
         [](const hbold::cluster::UGraph& g) {
           return hbold::cluster::Louvain(g);
         }},
        {"label-propagation",
         [](const hbold::cluster::UGraph& g) {
           return hbold::cluster::LabelPropagation(g);
         }},
        {"greedy-merge",
         [](const hbold::cluster::UGraph& g) {
           return hbold::cluster::GreedyMerge(g);
         }},
    };
    for (const Algo& algo : algos) {
      if (classes > 400 && std::string(algo.name) == "greedy-merge") {
        std::printf("%-10zu %-18s %12s %12s %12s\n", classes, algo.name,
                    "(skipped)", "-", "-");
        continue;  // O(n^2) merge bookkeeping; not competitive at scale
      }
      hbold::Stopwatch sw;
      hbold::cluster::Partition partition = algo.run(graph);
      double ms = sw.ElapsedMillis();
      double q = hbold::cluster::Modularity(graph, partition);
      std::printf("%-10zu %-18s %12.4f %12zu %12.3f\n", classes, algo.name, q,
                  hbold::cluster::CommunityCount(partition), ms);
    }
  }
  std::printf(
      "\nshape check: Louvain matches or beats the baselines on modularity\n"
      "at every size while staying near-linear in runtime — the reason the\n"
      "Cluster Schema uses it.\n");
}

void BM_Louvain(benchmark::State& state) {
  hbold::cluster::UGraph graph =
      SchemaGraph(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto partition = hbold::cluster::Louvain(graph);
    benchmark::DoNotOptimize(partition);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Louvain)->Arg(10)->Arg(100)->Arg(1000)->Complexity();

void BM_LabelPropagation(benchmark::State& state) {
  hbold::cluster::UGraph graph =
      SchemaGraph(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    auto partition = hbold::cluster::LabelPropagation(graph);
    benchmark::DoNotOptimize(partition);
  }
}
BENCHMARK(BM_LabelPropagation)->Arg(10)->Arg(100)->Arg(1000);

void BM_Modularity(benchmark::State& state) {
  hbold::cluster::UGraph graph =
      SchemaGraph(static_cast<size_t>(state.range(0)), 5);
  auto partition = hbold::cluster::Louvain(graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hbold::cluster::Modularity(graph, partition));
  }
}
BENCHMARK(BM_Modularity)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
