// E12 (future work, §5) — effectiveness of H-BOLD as a visualization tool.
// The paper plans "a survey involving different kinds of LD consumers";
// here a deterministic task simulator plays the user: how many UI
// interactions does each exploration strategy need for three common
// tasks, as datasets grow? The Cluster Schema's value proposition is that
// interaction counts stop scaling with the number of classes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/cluster_schema.h"
#include "cluster/louvain.h"
#include "extraction/extractor.h"
#include "hbold/effectiveness.h"
#include "workload/ld_generator.h"

namespace {

struct Dataset {
  hbold::schema::SchemaSummary summary;
  hbold::cluster::ClusterSchema clusters;
};

Dataset MakeDataset(size_t classes, uint64_t seed) {
  hbold::rdf::TripleStore store;
  hbold::workload::SyntheticLdConfig config;
  config.num_classes = classes;
  config.num_domains = 2 + classes / 10;
  // Real LD class sizes are heavily skewed; that is what makes the
  // Cluster Schema's per-cluster totals informative.
  config.max_instances_per_class = 400;
  config.zipf_skew = 1.4;
  config.seed = seed;
  hbold::workload::GenerateSyntheticLd(config, &store);
  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep("u", "n", &store, &clock);
  auto indexes = hbold::extraction::IndexExtractor().Extract(&ep, nullptr);
  Dataset d;
  d.summary = hbold::schema::SchemaSummary::FromIndexes(*indexes);
  d.clusters = hbold::cluster::ClusterSchema::FromPartition(
      d.summary,
      hbold::cluster::Louvain(hbold::cluster::BuildClassGraph(d.summary)));
  return d;
}

/// Mean interactions of a task over several target classes.
struct TaskStats {
  double flat = 0;
  double clustered = 0;
  size_t failures = 0;
};

}  // namespace

int main() {
  hbold::bench::PrintHeader(
      "E12: simulated effectiveness study (future work, §5)");
  std::printf("%-10s %10s | %14s %14s | %14s %14s | %14s %14s\n", "classes",
              "clusters", "find: flat", "find: cluster", "top: flat",
              "top: cluster", "conn: flat", "conn: cluster");

  bool shape_holds = true;
  for (size_t classes : {10, 40, 100, 400, 1000}) {
    Dataset d = MakeDataset(classes, classes * 3);
    hbold::EffectivenessSimulator sim(d.summary, d.clusters);

    TaskStats find_stats, top_stats, conn_stats;
    size_t samples = 0;
    // Sample target classes across the whole spectrum.
    for (size_t i = 0; i < d.summary.NodeCount();
         i += std::max<size_t>(1, d.summary.NodeCount() / 12)) {
      ++samples;
      const std::string& label = d.summary.nodes()[i].label;
      auto flat = sim.FindClassByLabel(
          label, hbold::ExplorationStrategy::kFlatScan);
      auto clustered = sim.FindClassByLabel(
          label, hbold::ExplorationStrategy::kClusterFirst);
      if (!flat.success || !clustered.success) ++find_stats.failures;
      find_stats.flat += static_cast<double>(flat.interactions);
      find_stats.clustered += static_cast<double>(clustered.interactions);

      size_t other = (i * 7 + 3) % d.summary.NodeCount();
      auto conn_flat = sim.FindConnection(
          i, other, hbold::ExplorationStrategy::kFlatScan);
      auto conn_clustered = sim.FindConnection(
          i, other, hbold::ExplorationStrategy::kClusterFirst);
      conn_stats.flat += static_cast<double>(conn_flat.interactions);
      conn_stats.clustered += static_cast<double>(conn_clustered.interactions);
    }
    auto top_flat =
        sim.FindMostPopulatedClass(hbold::ExplorationStrategy::kFlatScan);
    auto top_clustered =
        sim.FindMostPopulatedClass(hbold::ExplorationStrategy::kClusterFirst);
    top_stats.flat = static_cast<double>(top_flat.interactions);
    top_stats.clustered = static_cast<double>(top_clustered.interactions);

    double n = static_cast<double>(samples);
    std::printf("%-10zu %10zu | %14.1f %14.1f | %14.1f %14.1f | %14.1f "
                "%14.1f\n",
                classes, d.clusters.ClusterCount(), find_stats.flat / n,
                find_stats.clustered / n, top_stats.flat, top_stats.clustered,
                conn_stats.flat / n, conn_stats.clustered / n);
    if (classes >= 100 &&
        (top_stats.clustered >= top_stats.flat ||
         conn_stats.clustered >= conn_stats.flat)) {
      shape_holds = false;
    }
    if (find_stats.failures > 0) shape_holds = false;
  }
  std::printf(
      "\nshape check: every task succeeds under both strategies; from ~100\n"
      "classes on, the cluster-first workflow needs clearly fewer\n"
      "interactions for aggregate and connectivity tasks — the paper's\n"
      "motivation for the high-level view (\"the main goal of H-BOLD was\n"
      "to facilitate the exploration of LD with a high number of\n"
      "classes\").\n");
  std::printf("shape holds: %s\n", shape_holds ? "YES" : "NO");
  return shape_holds ? 0 : 1;
}
