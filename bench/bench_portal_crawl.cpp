// E1 — §3.3 endpoint discovery funnel.
//
// The paper reports: 65 SPARQL endpoints discovered on the European Data
// Portal, 9 on the EU Open Data Portal, 15 on IO Data Science Paris; net
// +70 after dedup against the existing list; registry 610 -> 680; indexed
// endpoints 110 -> 130 (20 of the 70 new endpoints pass extraction).
//
// We reconstruct the same funnel on synthetic DCAT catalogs: the portal
// content is synthetic, but every step — the Listing 1 query, the URL
// regex, the registry dedup, the extraction success gate — runs for real.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "hbold/hbold.h"
#include "workload/ld_generator.h"
#include "workload/portal_generator.h"

namespace {

using hbold::bench::PrintHeader;
using hbold::bench::PrintRow;

std::string SeedUrl(size_t i) {
  return "http://seed" + std::to_string(i) + ".example.org/sparql";
}
std::string NewUrl(const std::string& portal, size_t i) {
  return "http://" + portal + "-ld" + std::to_string(i) +
         ".example.org/sparql";
}

}  // namespace

int main() {
  hbold::SimClock clock;
  hbold::store::Database db;
  hbold::Server server(&db, &clock);

  // --- The pre-existing H-BOLD list: 610 endpoints, 110 of them indexed.
  for (size_t i = 0; i < 610; ++i) {
    hbold::endpoint::EndpointRecord record;
    record.url = SeedUrl(i);
    record.name = "Seed " + std::to_string(i);
    record.source = hbold::endpoint::EndpointSource::kSeedList;
    if (i < 110) {
      record.indexed = true;
      record.last_attempt_day = 0;
      record.last_success_day = 0;
    }
    server.RegisterEndpoint(record);
  }

  // --- Portal catalogs. Overlap with the seed list: 14 + 3 + 2 = 19 of
  // the 89 discovered URLs are already known, leaving 70 new.
  struct PortalSpec {
    const char* name;
    size_t datasets;
    size_t discovered;
    size_t overlap;
  };
  const PortalSpec specs[] = {
      {"European Data Portal", 900, 65, 14},
      {"EU Open Data Portal", 150, 9, 3},
      {"IO Data Science Paris", 200, 15, 2},
  };

  struct Portal {
    hbold::rdf::TripleStore catalog;
    std::unique_ptr<hbold::endpoint::SimulatedRemoteEndpoint> endpoint;
  };
  std::vector<Portal> portals(3);
  std::vector<std::string> new_urls;
  for (size_t p = 0; p < 3; ++p) {
    hbold::workload::PortalConfig config;
    config.portal_name = specs[p].name;
    config.namespace_iri =
        "http://portal" + std::to_string(p) + ".example.org/";
    config.total_datasets = specs[p].datasets;
    for (size_t i = 0; i < specs[p].discovered; ++i) {
      if (i < specs[p].overlap) {
        config.sparql_urls.push_back(SeedUrl(200 + p * 20 + i));
      } else {
        std::string url = NewUrl("p" + std::to_string(p), i);
        config.sparql_urls.push_back(url);
        new_urls.push_back(url);
      }
    }
    hbold::workload::GeneratePortalCatalog(config, &portals[p].catalog);
    portals[p].endpoint =
        std::make_unique<hbold::endpoint::SimulatedRemoteEndpoint>(
            config.namespace_iri + "sparql", specs[p].name,
            &portals[p].catalog, &clock);
  }

  // --- Crawl all three portals in one batched fan-out (the Listing 1
  // probes overlap on a shared pool; registry merge order stays the
  // sequential portal order, so the funnel numbers are unchanged).
  hbold::PortalCrawler crawler(&server.registry());
  std::vector<hbold::PortalTarget> targets;
  for (size_t p = 0; p < 3; ++p) {
    targets.push_back(
        hbold::PortalTarget{specs[p].name, portals[p].endpoint.get()});
  }
  hbold::ThreadPool crawl_pool(3);
  hbold::endpoint::QueryBatchOptions crawl_options;
  crawl_options.pool = &crawl_pool;
  auto crawl_results = crawler.CrawlAll(targets, 0, crawl_options);
  size_t found[3] = {0, 0, 0};
  size_t total_new = 0;
  for (size_t p = 0; p < 3; ++p) {
    if (!crawl_results[p].ok()) {
      std::fprintf(stderr, "crawl failed: %s\n",
                   crawl_results[p].status().ToString().c_str());
      return 1;
    }
    found[p] = crawl_results[p]->distinct_urls;
    total_new += crawl_results[p]->newly_added;
  }

  // --- Of the 70 new endpoints, 20 are live LD sources that extract
  // cleanly; the rest are dead or incompatible ("some of them are not
  // working or are not compatible with the index extraction phase").
  std::vector<std::unique_ptr<hbold::rdf::TripleStore>> stores;
  std::vector<std::unique_ptr<hbold::endpoint::SimulatedRemoteEndpoint>> eps;
  for (size_t i = 0; i < new_urls.size(); ++i) {
    if (i >= 20) break;  // only the first 20 get a live backend
    auto store = std::make_unique<hbold::rdf::TripleStore>();
    hbold::workload::SyntheticLdConfig config;
    config.namespace_iri = new_urls[i] + "/";
    config.num_classes = 6 + i;
    config.max_instances_per_class = 30;
    config.seed = 77 + i;
    hbold::workload::GenerateSyntheticLd(config, store.get());
    auto ep = std::make_unique<hbold::endpoint::SimulatedRemoteEndpoint>(
        new_urls[i], "New LD", store.get(), &clock);
    server.AttachEndpoint(new_urls[i], ep.get());
    stores.push_back(std::move(store));
    eps.push_back(std::move(ep));
  }
  size_t extracted = 0;
  for (const std::string& url : new_urls) {
    if (server.ProcessEndpoint(url).ok()) ++extracted;
  }
  size_t indexed_total = server.registry().IndexedCount();

  // --- Report, paper vs measured.
  PrintHeader("E1: §3.3 endpoint discovery funnel (paper vs measured)");
  std::printf("%-46s %-22s %s\n", "metric", "paper", "measured");
  PrintRow("endpoints found on European Data Portal", "65",
           std::to_string(found[0]));
  PrintRow("endpoints found on EU Open Data Portal", "9",
           std::to_string(found[1]));
  PrintRow("endpoints found on IO Data Science Paris", "15",
           std::to_string(found[2]));
  PrintRow("net new endpoints after dedup", "70", std::to_string(total_new));
  PrintRow("endpoints listed after crawl", "680 (610+70)",
           std::to_string(server.registry().size()));
  PrintRow("new endpoints surviving index extraction", "20",
           std::to_string(extracted));
  PrintRow("indexed endpoints after crawl", "130 (110+20)",
           std::to_string(indexed_total));

  bool ok = found[0] == 65 && found[1] == 9 && found[2] == 15 &&
            total_new == 70 && server.registry().size() == 680 &&
            extracted == 20 && indexed_total == 130;
  std::printf("\nfunnel reproduced exactly: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
