// Parallel daily-cycle bench: the §3.1 refresh over a ~50-endpoint portal,
// swept across worker counts. Two speedup figures matter:
//
//   - simulated: the cycle's endpoint-latency makespan vs. the sequential
//     sum — what parallelism buys when pipelines wait on remote endpoints
//     (the production regime: extraction time is dominated by network
//     latency, so N workers overlap N endpoints' waits).
//   - wall-clock: real elapsed time of the cycle, which also includes the
//     CPU-bound summary/cluster stages; it only scales with real cores.
//
// The bench additionally asserts the parallel DailyReport merges back in
// registry order with the same counts and reused flags as the sequential
// cycle — the determinism contract of Server::RunDailyCycle.
//
//   ./build/bench_parallel_pipeline [fleet_size]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace {

using hbold::DailyReport;
using hbold::Server;
using hbold::SimClock;

/// One fresh server over the shared fleet, one daily cycle at `workers`.
DailyReport RunCycle(std::vector<hbold::bench::FleetMember>* fleet,
                     const SimClock& clock, int workers) {
  hbold::store::Database db;
  SimClock server_clock = clock;
  hbold::ServerOptions options;
  options.parallelism = workers;
  Server server(&db, &server_clock, options);
  hbold::bench::AttachFleet(fleet, &server);
  return server.RunDailyCycle(workers);
}

bool SameOutcome(const DailyReport& a, const DailyReport& b) {
  if (a.due != b.due || a.succeeded != b.succeeded || a.failed != b.failed ||
      a.reused != b.reused || a.reports.size() != b.reports.size()) {
    return false;
  }
  for (size_t i = 0; i < a.reports.size(); ++i) {
    const hbold::PipelineReport& x = a.reports[i];
    const hbold::PipelineReport& y = b.reports[i];
    if (x.url != y.url || x.classes != y.classes || x.arcs != y.arcs ||
        x.clusters != y.clusters ||
        x.reused_cluster_schema != y.reused_cluster_schema ||
        x.extraction_ms != y.extraction_ms) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  hbold::Logger::set_threshold(hbold::LogLevel::kWarn);

  hbold::bench::FleetOptions fleet_options;
  fleet_options.size = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 50;
  fleet_options.max_classes = 60;
  SimClock clock;
  auto fleet = hbold::bench::BuildFleet(fleet_options, &clock);

  hbold::bench::PrintHeader("parallel daily cycle, " +
                            std::to_string(fleet.size()) + " endpoints");

  DailyReport sequential = RunCycle(&fleet, clock, 1);
  std::printf("%-8s %12s %14s %14s %10s %10s\n", "workers", "wall ms",
              "sim sum ms", "sim makespan", "sim x", "wall x");

  bool all_match = true;
  for (int workers : {1, 2, 4, 8}) {
    DailyReport report = RunCycle(&fleet, clock, workers);
    bool match = SameOutcome(report, sequential);
    all_match = all_match && match;
    double sim_speedup = report.makespan_ms > 0
                             ? sequential.makespan_ms / report.makespan_ms
                             : 1.0;
    double wall_speedup =
        report.wall_ms > 0 ? sequential.wall_ms / report.wall_ms : 1.0;
    std::printf("%-8d %12.1f %14.1f %14.1f %9.2fx %9.2fx%s\n", workers,
                report.wall_ms, report.sum_latency_ms, report.makespan_ms,
                sim_speedup, wall_speedup,
                match ? "" : "  REPORT MISMATCH");
  }

  std::printf(
      "\nreport determinism: parallel cycles %s the sequential outcome\n"
      "(endpoint order, counts, reused flags).\n",
      all_match ? "reproduce" : "DIVERGE FROM");
  std::printf(
      "shape check: simulated speedup approaches the worker count while\n"
      "endpoint latency dominates; wall-clock speedup is bounded by real\n"
      "cores available to the pool.\n");
  return all_match ? 0 : 1;
}
