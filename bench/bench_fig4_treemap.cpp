// E4 — Fig. 4: Treemap of the Cluster Schema. Regenerates the figure's
// layout on the Scholarly LD and checks the visual invariants the paper
// describes (area proportional to instance count within a part-to-whole
// relationship; cluster area = total of its classes), then times the
// layout across schema sizes.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"
#include "cluster/cluster_schema.h"
#include "cluster/louvain.h"
#include "extraction/extractor.h"
#include "viz/render.h"
#include "viz/treemap.h"
#include "workload/ld_generator.h"
#include "workload/scholarly.h"

namespace {

/// Builds the Fig. 4 hierarchy for a synthetic LD with `classes` classes.
hbold::viz::Hierarchy SyntheticHierarchy(size_t classes, uint64_t seed) {
  hbold::rdf::TripleStore store;
  hbold::workload::SyntheticLdConfig config;
  config.num_classes = classes;
  config.max_instances_per_class = 50;
  config.seed = seed;
  hbold::workload::GenerateSyntheticLd(config, &store);
  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep("http://x/sparql", "x", &store,
                                              &clock);
  auto indexes = hbold::extraction::IndexExtractor().Extract(&ep, nullptr);
  auto summary = hbold::schema::SchemaSummary::FromIndexes(*indexes);
  auto partition =
      hbold::cluster::Louvain(hbold::cluster::BuildClassGraph(summary));
  auto clusters =
      hbold::cluster::ClusterSchema::FromPartition(summary, partition);
  return hbold::viz::HierarchyFromClusterSchema(clusters, summary, "synth");
}

void PrintInvariantTable() {
  hbold::bench::PrintHeader("E4: Fig. 4 treemap of the Cluster Schema");
  std::printf("%-10s %9s %9s %16s %14s %12s\n", "classes", "cells",
              "clusters", "area error", "overlaps", "layout ms");
  for (size_t classes : {10, 30, 100, 300}) {
    hbold::viz::Hierarchy h = SyntheticHierarchy(classes, classes);
    hbold::viz::TreemapOptions opt;
    opt.padding = 0;
    opt.header = 0;
    hbold::viz::Rect bounds{0, 0, 1000, 800};
    hbold::Stopwatch sw;
    auto cells = hbold::viz::TreemapLayout(h, bounds, opt);
    double ms = sw.ElapsedMillis();

    // Invariant 1: cluster areas proportional to values (relative error).
    std::vector<double> values = h.ChildValues();
    double total = std::accumulate(values.begin(), values.end(), 0.0);
    double max_rel_error = 0;
    size_t cluster_idx = 0;
    std::vector<const hbold::viz::TreemapCell*> clusters;
    for (const auto& c : cells) {
      if (c.depth == 1) clusters.push_back(&c);
    }
    for (const auto* c : clusters) {
      double expected = values[cluster_idx++] / total * bounds.Area();
      max_rel_error = std::max(
          max_rel_error, std::fabs(c->rect.Area() - expected) / expected);
    }
    // Invariant 2: sibling clusters never overlap.
    size_t overlaps = 0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        if (clusters[i]->rect.Overlaps(clusters[j]->rect, 1e-6)) ++overlaps;
      }
    }
    std::printf("%-10zu %9zu %9zu %15.2e %14zu %12.3f\n", classes,
                cells.size(), clusters.size(), max_rel_error, overlaps, ms);
  }
  std::printf("\nshape check: area error ~ 0 and overlaps == 0 at every "
              "size.\n");
}

void BM_TreemapLayout(benchmark::State& state) {
  hbold::viz::Hierarchy h =
      SyntheticHierarchy(static_cast<size_t>(state.range(0)), 99);
  for (auto _ : state) {
    auto cells =
        hbold::viz::TreemapLayout(h, hbold::viz::Rect{0, 0, 1000, 800}, {});
    benchmark::DoNotOptimize(cells);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TreemapLayout)->Arg(10)->Arg(100)->Arg(1000)->Complexity();

void BM_ScholarlyTreemapEndToEnd(benchmark::State& state) {
  // Full figure regeneration: hierarchy + layout + SVG.
  hbold::rdf::TripleStore store;
  hbold::workload::GenerateScholarly({}, &store);
  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep("u", "n", &store, &clock);
  auto indexes = hbold::extraction::IndexExtractor().Extract(&ep, nullptr);
  auto summary = hbold::schema::SchemaSummary::FromIndexes(*indexes);
  auto clusters = hbold::cluster::ClusterSchema::FromPartition(
      summary, hbold::cluster::Louvain(
                   hbold::cluster::BuildClassGraph(summary)));
  for (auto _ : state) {
    auto h = hbold::viz::HierarchyFromClusterSchema(clusters, summary, "s");
    auto cells =
        hbold::viz::TreemapLayout(h, hbold::viz::Rect{0, 0, 800, 600}, {});
    auto svg = hbold::viz::RenderTreemap(cells, 800, 600);
    benchmark::DoNotOptimize(svg.ToString());
  }
}
BENCHMARK(BM_ScholarlyTreemapEndToEnd);

}  // namespace

int main(int argc, char** argv) {
  PrintInvariantTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
