// E6 — Fig. 6: Circle Packing of the Cluster Schema. Regenerates the
// layout, verifies the containment hierarchy the paper describes (classes
// inside clusters inside the dataset circle, no sibling overlap), and
// times the front-chain packing across sizes.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/cluster_schema.h"
#include "cluster/louvain.h"
#include "extraction/extractor.h"
#include "viz/circle_pack.h"
#include "viz/render.h"
#include "workload/ld_generator.h"

namespace {

hbold::viz::Hierarchy SyntheticHierarchy(size_t classes, uint64_t seed) {
  hbold::rdf::TripleStore store;
  hbold::workload::SyntheticLdConfig config;
  config.num_classes = classes;
  config.max_instances_per_class = 50;
  config.seed = seed;
  hbold::workload::GenerateSyntheticLd(config, &store);
  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep("http://x/sparql", "x", &store,
                                              &clock);
  auto indexes = hbold::extraction::IndexExtractor().Extract(&ep, nullptr);
  auto summary = hbold::schema::SchemaSummary::FromIndexes(*indexes);
  auto clusters = hbold::cluster::ClusterSchema::FromPartition(
      summary,
      hbold::cluster::Louvain(hbold::cluster::BuildClassGraph(summary)));
  return hbold::viz::HierarchyFromClusterSchema(clusters, summary, "synth");
}

void PrintInvariantTable() {
  hbold::bench::PrintHeader("E6: Fig. 6 circle packing of the Cluster Schema");
  std::printf("%-10s %9s %14s %14s %14s %12s\n", "classes", "circles",
              "containment", "overlaps", "packing eff.", "layout ms");
  for (size_t classes : {10, 30, 100, 300}) {
    hbold::viz::Hierarchy h = SyntheticHierarchy(classes, classes + 2);
    hbold::Stopwatch sw;
    auto circles = hbold::viz::CirclePackLayout(h, {});
    double ms = sw.ElapsedMillis();

    std::vector<const hbold::viz::PackedCircle*> clusters, leaves;
    const hbold::viz::PackedCircle* outer = &circles[0];
    for (const auto& c : circles) {
      if (c.depth == 1) clusters.push_back(&c);
      if (c.depth == 2) leaves.push_back(&c);
    }
    size_t containment_violations = 0;
    for (const auto* c : clusters) {
      if (!outer->circle.ContainsCircle(c->circle, 1e-3)) {
        ++containment_violations;
      }
    }
    for (const auto* l : leaves) {
      bool inside = false;
      for (const auto* c : clusters) {
        if (c->group == l->group &&
            c->circle.ContainsCircle(l->circle, 1e-3)) {
          inside = true;
        }
      }
      if (!inside) ++containment_violations;
    }
    size_t overlaps = 0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        if (clusters[i]->circle.Overlaps(clusters[j]->circle, 1e-3)) {
          ++overlaps;
        }
      }
    }
    for (size_t i = 0; i < leaves.size(); ++i) {
      for (size_t j = i + 1; j < leaves.size(); ++j) {
        if (leaves[i]->group != leaves[j]->group) continue;
        if (leaves[i]->circle.Overlaps(leaves[j]->circle, 1e-3)) ++overlaps;
      }
    }
    // Packing efficiency: leaf area / dataset circle area.
    double leaf_area = 0;
    for (const auto* l : leaves) {
      leaf_area += l->circle.r * l->circle.r;
    }
    double efficiency = leaf_area / (outer->circle.r * outer->circle.r);
    std::printf("%-10zu %9zu %14zu %14zu %13.1f%% %12.3f\n", classes,
                circles.size(), containment_violations, overlaps,
                efficiency * 100, ms);
  }
  std::printf("\nshape check: zero containment violations and overlaps; "
              "packing efficiency well above a naive grid.\n");
}

void BM_PackSiblings(benchmark::State& state) {
  hbold::Rng rng(3);
  std::vector<double> radii;
  for (int64_t i = 0; i < state.range(0); ++i) {
    radii.push_back(1.0 + static_cast<double>(rng.Uniform(30)));
  }
  for (auto _ : state) {
    auto pos = hbold::viz::PackSiblings(radii);
    benchmark::DoNotOptimize(pos);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PackSiblings)->Arg(10)->Arg(100)->Arg(1000)->Complexity();

void BM_CirclePackLayout(benchmark::State& state) {
  hbold::viz::Hierarchy h =
      SyntheticHierarchy(static_cast<size_t>(state.range(0)), 9);
  for (auto _ : state) {
    auto circles = hbold::viz::CirclePackLayout(h, {});
    benchmark::DoNotOptimize(circles);
  }
}
BENCHMARK(BM_CirclePackLayout)->Arg(10)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  PrintInvariantTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
