// Query fast-path bench + gate: the aggregate-pushdown planner vs the
// materializing executor on the count-query family at ~100k triples, and
// real wall-clock concurrency of a width-4 QueryBatch against a single
// LocalEndpoint (no big lock on the read path).
//
// Emits machine-readable BENCH_query_fastpath.json and exits nonzero when a
// gate fails:
//   - count-family speedup >= 5x (fast vs materializing, same corpus)
//   - every fast-path result table bit-identical to the materializing one,
//     including charged intermediate_bindings
//   - width-4 batched wall-clock >= 2x sequential (only gated when the
//     machine has >= 4 hardware threads; reported otherwise)
//
//   ./build/bench_query_fastpath [num_triples]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/query_batch.h"
#include "rdf/graph.h"
#include "sparql/executor.h"

namespace {

using hbold::Json;
using hbold::Stopwatch;
using hbold::rdf::Term;
using hbold::rdf::TripleStore;
using hbold::sparql::ExecOptions;
using hbold::sparql::ExecStats;
using hbold::sparql::Executor;
using hbold::sparql::ResultTable;

constexpr size_t kClasses = 40;
constexpr size_t kPredicates = 24;

/// Synthetic LD-shaped store: every subject is typed, subjects carry a few
/// property links to other subjects. Roughly 5 triples per subject.
TripleStore MakeStore(size_t target_triples, uint64_t seed) {
  TripleStore store;
  hbold::Rng rng(seed);
  const size_t subjects = std::max<size_t>(1, target_triples / 5);
  auto subject = [](size_t i) {
    return Term::Iri("http://bench/s" + std::to_string(i));
  };
  for (size_t i = 0; i < subjects; ++i) {
    store.Add(subject(i), Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
              Term::Iri("http://bench/class/C" +
                        std::to_string(rng.Zipf(kClasses, 1.0))));
    size_t links = 3 + rng.Uniform(3);
    for (size_t k = 0; k < links; ++k) {
      store.Add(subject(i),
                Term::Iri("http://bench/p" +
                          std::to_string(rng.Uniform(kPredicates))),
                subject(rng.Uniform(subjects)));
    }
  }
  store.FinalizeIndex();
  return store;
}

bool TablesIdentical(const ResultTable& a, const ResultTable& b) {
  if (a.columns() != b.columns() || a.num_rows() != b.num_rows()) return false;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      const auto& ca = a.rows()[r][c];
      const auto& cb = b.rows()[r][c];
      if (ca.has_value() != cb.has_value()) return false;
      if (ca.has_value() && *ca != *cb) return false;
    }
  }
  return true;
}

std::vector<std::string> CountCorpus() {
  const std::string c0 = "<http://bench/class/C0>";
  const std::string p1 = "<http://bench/p1>";
  return {
      "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }",
      "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a ?c . }",
      "SELECT ?c (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a ?c . } GROUP BY ?c",
      "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a " + c0 + " . }",
      "SELECT (COUNT(DISTINCT ?p) AS ?n) WHERE { ?s ?p ?o . }",
      "SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s a " + c0 +
          " . ?s ?p ?o . } GROUP BY ?p",
      "SELECT (COUNT(?o) AS ?n) WHERE { ?s a " + c0 + " . ?s " + p1 +
          " ?o . }",
  };
}

}  // namespace

int main(int argc, char** argv) {
  size_t target = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 100000;
  TripleStore store = MakeStore(target, 7);
  std::printf("=== query fast-path bench: %zu triples ===\n", store.size());

  Json report = Json::MakeObject();
  report.Set("triples", static_cast<int64_t>(store.size()));
  bool identical_ok = true;

  // ---------------------------------------------- fast vs materializing
  ExecOptions off;
  off.aggregate_pushdown = false;
  off.filter_pushdown = false;
  off.limit_pushdown = false;
  Executor fast(&store);
  Executor slow(&store, off);

  const int kReps = 5;
  double fast_total_ms = 0;
  double slow_total_ms = 0;
  Json per_query = Json::MakeArray();
  std::printf("%-78s %10s %10s %8s\n", "query", "slow ms", "fast ms", "x");
  for (const std::string& q : CountCorpus()) {
    ExecStats fs, ss;
    auto rf = fast.Execute(q, &fs);
    auto rs = slow.Execute(q, &ss);
    if (!rf.ok() || !rs.ok()) {
      std::fprintf(stderr, "query failed: %s\n", q.c_str());
      return 1;
    }
    bool same = TablesIdentical(*rf, *rs) &&
                fs.intermediate_bindings == ss.intermediate_bindings &&
                fs.fast_path_hits > 0;
    identical_ok = identical_ok && same;

    Stopwatch sw_fast;
    for (int i = 0; i < kReps; ++i) {
      ExecStats st;
      auto r = fast.Execute(q, &st);
      (void)r;
    }
    double fast_ms = sw_fast.ElapsedMillis();
    Stopwatch sw_slow;
    for (int i = 0; i < kReps; ++i) {
      ExecStats st;
      auto r = slow.Execute(q, &st);
      (void)r;
    }
    double slow_ms = sw_slow.ElapsedMillis();
    fast_total_ms += fast_ms;
    slow_total_ms += slow_ms;
    double x = fast_ms > 0 ? slow_ms / fast_ms : 0;
    std::printf("%-78.78s %10.3f %10.3f %7.1fx%s\n", q.c_str(),
                slow_ms / kReps, fast_ms / kReps, x, same ? "" : "  MISMATCH");

    Json entry = Json::MakeObject();
    entry.Set("query", q);
    entry.Set("slow_ms", slow_ms / kReps);
    entry.Set("fast_ms", fast_ms / kReps);
    entry.Set("speedup", x);
    entry.Set("identical", same);
    entry.Set("rows_avoided", static_cast<int64_t>(fs.rows_avoided));
    per_query.Append(std::move(entry));
  }
  double corpus_speedup =
      fast_total_ms > 0 ? slow_total_ms / fast_total_ms : 0;
  std::printf("count-family corpus: %.1f ms slow vs %.1f ms fast => %.1fx\n",
              slow_total_ms, fast_total_ms, corpus_speedup);
  report.Set("count_family", std::move(per_query));
  report.Set("corpus_speedup", corpus_speedup);
  report.Set("bit_identical", identical_ok);

  // ------------------------------------- width-4 batch, one local store
  const size_t kWidth = 4;
  const size_t kBatchQueries = 8;
  // Deliberately outside the pushdown family: a two-pattern join with a
  // variable class object materializes ~2x the store in bindings, so the
  // batch measures real CPU overlap, not fast-path arithmetic.
  std::vector<std::string> batch(
      kBatchQueries,
      "SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s ?p ?o . ?s a ?c . } "
      "GROUP BY ?p");
  hbold::endpoint::LocalEndpoint ep("http://bench/sparql", "bench", &store);

  // Best-of-3 on both sides: shared CI runners have noisy neighbors, and a
  // hard wall-clock gate on a single run would flake.
  const int kWallReps = 3;
  double seq_wall_ms = 0;
  for (int rep = 0; rep < kWallReps; ++rep) {
    Stopwatch sw_seq;
    for (const std::string& q : batch) {
      auto r = ep.Query(q);
      if (!r.ok()) {
        std::fprintf(stderr, "batch query failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
    double ms = sw_seq.ElapsedMillis();
    if (rep == 0 || ms < seq_wall_ms) seq_wall_ms = ms;
  }

  hbold::ThreadPool pool(kWidth);
  hbold::endpoint::QueryBatchOptions options;
  options.pool = &pool;
  options.per_endpoint_limit = kWidth;
  double batch_wall_ms = 0;
  for (int rep = 0; rep < kWallReps; ++rep) {
    Stopwatch sw_batch;
    auto outcomes = hbold::endpoint::QueryBatch::RunOnOne(&ep, batch, options);
    double ms = sw_batch.ElapsedMillis();
    for (const auto& o : outcomes) {
      if (!o.ok()) {
        std::fprintf(stderr, "batched query failed\n");
        return 1;
      }
    }
    if (rep == 0 || ms < batch_wall_ms) batch_wall_ms = ms;
  }
  double wall_speedup = batch_wall_ms > 0 ? seq_wall_ms / batch_wall_ms : 0;
  unsigned cores = std::thread::hardware_concurrency();
  bool gate_wallclock = cores >= 4;
  std::printf(
      "width-%zu batch on one LocalEndpoint: %.1f ms sequential vs %.1f ms "
      "batched => %.2fx real wall-clock (%u cores%s)\n",
      kWidth, seq_wall_ms, batch_wall_ms, wall_speedup, cores,
      gate_wallclock ? "" : "; <4 cores, 2x gate reported but not enforced");

  Json batched = Json::MakeObject();
  batched.Set("width", static_cast<int64_t>(kWidth));
  batched.Set("queries", static_cast<int64_t>(kBatchQueries));
  batched.Set("sequential_wall_ms", seq_wall_ms);
  batched.Set("batched_wall_ms", batch_wall_ms);
  batched.Set("speedup", wall_speedup);
  batched.Set("cores", static_cast<int64_t>(cores));
  batched.Set("gate_enforced", gate_wallclock);
  report.Set("batched_local", std::move(batched));

  // ---------------------------------------------------------------- gates
  bool pass_speedup = corpus_speedup >= 5.0;
  bool pass_wall = !gate_wallclock || wall_speedup >= 2.0;
  Json gates = Json::MakeObject();
  gates.Set("count_speedup_5x", pass_speedup);
  gates.Set("bit_identity", identical_ok);
  gates.Set("batched_wallclock_2x", pass_wall);
  report.Set("gates", std::move(gates));

  std::ofstream out("BENCH_query_fastpath.json");
  out << report.Dump(2) << "\n";
  out.close();
  std::printf("wrote BENCH_query_fastpath.json\n");

  if (!identical_ok) {
    std::fprintf(stderr, "GATE FAILED: fast path not bit-identical\n");
    return 1;
  }
  if (!pass_speedup) {
    std::fprintf(stderr, "GATE FAILED: count-family speedup %.1fx < 5x\n",
                 corpus_speedup);
    return 1;
  }
  if (!pass_wall) {
    std::fprintf(stderr, "GATE FAILED: batched wall-clock %.2fx < 2x\n",
                 wall_speedup);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
