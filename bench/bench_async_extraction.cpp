// Intra-pipeline async extraction bench: one *wide* endpoint (>= 100
// classes, per-class-count dialect, so the query set is large) swept
// across batch widths, plus the same sweep under the server's daily
// cycle where inter- and intra-pipeline work share one pool.
//
// Two checks gate the exit code:
//   - sequential equality: every batched run must produce the byte-
//     identical IndexSummary and the identical charged cost as the
//     sequential run (the determinism contract of QueryBatch);
//   - the simulated intra-pipeline makespan at batch width 4 must beat
//     the sequential extraction by >= 2x on the wide endpoint.
//
//   ./build/bench_async_extraction [num_classes]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "extraction/strategies.h"

namespace {

using hbold::ThreadPool;
using hbold::extraction::ExtractionContext;
using hbold::extraction::ExtractionReport;
using hbold::extraction::PerClassCountStrategy;

}  // namespace

int main(int argc, char** argv) {
  hbold::Logger::set_threshold(hbold::LogLevel::kWarn);

  const size_t num_classes =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 120;

  hbold::rdf::TripleStore data;
  hbold::workload::SyntheticLdConfig config;
  config.namespace_iri = "http://wide.example.org/";
  config.num_classes = num_classes;
  config.num_domains = 2 + num_classes / 12;
  config.max_instances_per_class = 30;
  config.seed = 4242;
  hbold::workload::GenerateSyntheticLd(config, &data);

  hbold::SimClock clock;
  // No GROUP BY: the extractor lands on per-class counting, whose query
  // count scales with classes * properties — the widest fan-out surface.
  hbold::endpoint::SimulatedRemoteEndpoint ep(
      "http://wide.example.org/sparql", "wide", &data, &clock,
      hbold::endpoint::Dialect::NoGroupBy());

  hbold::bench::PrintHeader(
      "intra-pipeline async extraction, 1 endpoint x " +
      std::to_string(num_classes) + " classes (per-class-count)");

  PerClassCountStrategy strategy;
  ExtractionReport sequential_report;
  hbold::Stopwatch seq_wall;
  auto sequential = strategy.Extract(&ep, ExtractionContext{},
                                     &sequential_report);
  double seq_wall_ms = seq_wall.ElapsedMillis();
  if (!sequential.ok()) {
    std::fprintf(stderr, "sequential extraction failed: %s\n",
                 sequential.status().ToString().c_str());
    return 1;
  }
  const std::string sequential_dump = sequential->ToJson().Dump();

  std::printf("%zu queries, %.1f ms simulated sequential latency\n\n",
              sequential_report.queries_issued,
              sequential_report.total_latency_ms);
  std::printf("%-8s %-8s %12s %14s %14s %10s\n", "width", "workers",
              "wall ms", "sim cost ms", "sim intra ms", "sim x");

  bool all_match = true;
  double speedup_at_4 = 0;
  for (size_t width : {1, 2, 4, 8}) {
    const size_t workers = width;  // pool sized to the batch width
    ThreadPool pool(workers);
    ExtractionContext ctx;
    ctx.pool = width > 1 ? &pool : nullptr;
    ctx.batch_width = width;
    ExtractionReport report;
    hbold::Stopwatch wall;
    auto result = strategy.Extract(&ep, ctx, &report);
    double wall_ms = width > 1 ? wall.ElapsedMillis() : seq_wall_ms;

    bool match = result.ok() &&
                 result->ToJson().Dump() == sequential_dump &&
                 report.queries_issued == sequential_report.queries_issued &&
                 report.total_latency_ms == sequential_report.total_latency_ms;
    all_match = all_match && match;
    double speedup = report.intra_makespan_ms > 0
                         ? sequential_report.total_latency_ms /
                               report.intra_makespan_ms
                         : 0;
    if (width == 4) speedup_at_4 = speedup;
    std::printf("%-8zu %-8zu %12.1f %14.1f %14.1f %9.2fx%s\n", width,
                workers, wall_ms, report.total_latency_ms,
                report.intra_makespan_ms, speedup,
                match ? "" : "  RESULT MISMATCH");
  }

  // --- The same sweep through the server: one pool drives pipelines AND
  // their nested batches; batched_makespan_ms is the cycle-level figure.
  std::printf("\ndaily cycle over 8 wide endpoints, parallelism=4:\n");
  std::printf("%-8s %14s %14s %16s\n", "width", "sim sum ms",
              "sim makespan", "sim batched mk");
  hbold::bench::FleetOptions fleet_options;
  fleet_options.size = 8;
  fleet_options.min_classes = num_classes;
  fleet_options.max_classes = num_classes + 1;
  fleet_options.no_group_by_fraction = 1.0;  // all per-class-count
  fleet_options.no_aggregates_fraction = 0;
  fleet_options.row_capped_fraction = 0;
  auto fleet = hbold::bench::BuildFleet(fleet_options, &clock);

  double cycle_makespan = 0, cycle_batched_makespan = 0;
  for (int width : {1, 4}) {
    hbold::store::Database db;
    hbold::SimClock cycle_clock;
    hbold::ServerOptions options;
    options.parallelism = 4;
    options.query_batch_width = width;
    hbold::Server server(&db, &cycle_clock, options);
    hbold::bench::AttachFleet(&fleet, &server);
    hbold::DailyReport report = server.RunDailyUpdate();
    std::printf("%-8d %14.1f %14.1f %16.1f\n", width, report.sum_latency_ms,
                report.makespan_ms, report.batched_makespan_ms);
    if (width == 1) cycle_makespan = report.makespan_ms;
    if (width == 4) cycle_batched_makespan = report.batched_makespan_ms;
  }

  bool speedup_ok = speedup_at_4 >= 2.0;
  std::printf(
      "\nsequential equality: batched runs %s the sequential summary and "
      "cost\nwidth-4 intra-pipeline speedup: %.2fx (gate: >= 2x) %s\n"
      "cycle-level: batching compresses the 4-worker makespan %.1f -> %.1f "
      "ms\n",
      all_match ? "reproduce" : "DIVERGE FROM", speedup_at_4,
      speedup_ok ? "PASS" : "FAIL",
      cycle_makespan, cycle_batched_makespan);

  // Machine-readable report for the CI bench-regression harness. Every
  // figure here is *simulated* (deterministic per seed), so baseline
  // comparisons are immune to runner noise.
  hbold::Json json = hbold::Json::MakeObject();
  json.Set("num_classes", static_cast<int64_t>(num_classes));
  json.Set("queries_issued",
           static_cast<int64_t>(sequential_report.queries_issued));
  json.Set("sim_cost_ms", sequential_report.total_latency_ms);
  json.Set("intra_speedup_at_4", speedup_at_4);
  json.Set("cycle_makespan_ms", cycle_makespan);
  json.Set("cycle_batched_makespan_ms", cycle_batched_makespan);
  hbold::Json gates = hbold::Json::MakeObject();
  gates.Set("sequential_equality", all_match);
  gates.Set("intra_speedup_2x", speedup_ok);
  json.Set("gates", std::move(gates));
  std::ofstream out("BENCH_async_extraction.json");
  out << json.Dump(2) << "\n";
  out.close();
  std::printf("wrote BENCH_async_extraction.json\n");

  return all_match && speedup_ok ? 0 : 1;
}
