// Ablation A2 — document-store retrieval path. §2.1 notes the Schema
// Summary and Cluster Schema "can be easily memorized and retrieved on the
// MongoDB improving data recovery performance and graph visualization".
// This bench measures dataset-document lookup by endpoint URL with and
// without the hash index the server creates, across store sizes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "store/collection.h"

namespace {

std::unique_ptr<hbold::store::Collection> BuildCollection(size_t docs,
                                                          bool indexed) {
  auto collection =
      std::make_unique<hbold::store::Collection>("cluster_schemas");
  hbold::store::Collection& c = *collection;
  if (indexed) c.CreateIndex("endpoint_url");
  for (size_t i = 0; i < docs; ++i) {
    hbold::Json doc = hbold::Json::MakeObject();
    doc.Set("endpoint_url",
            "http://ld" + std::to_string(i) + ".example.org/sparql");
    // A plausible payload so scans pay realistic comparison costs.
    hbold::Json clusters = hbold::Json::MakeArray();
    for (int k = 0; k < 8; ++k) {
      hbold::Json cl = hbold::Json::MakeObject();
      cl.Set("label", "cluster" + std::to_string(k));
      cl.Set("total_instances", k * 100);
      clusters.Append(std::move(cl));
    }
    doc.Set("clusters", std::move(clusters));
    if (!c.Insert(std::move(doc)).ok()) break;
  }
  return collection;
}

void PrintTable() {
  hbold::bench::PrintHeader(
      "A2: document retrieval by endpoint URL, hash index vs scan");
  std::printf("%-10s %16s %16s %10s\n", "docs", "scan us/op",
              "indexed us/op", "speedup");
  for (size_t docs : {10, 130, 1000, 5000}) {
    auto plain = BuildCollection(docs, false);
    auto indexed = BuildCollection(docs, true);
    hbold::Json filter = hbold::Json::MakeObject();
    filter.Set("endpoint_url", "http://ld" + std::to_string(docs - 1) +
                                   ".example.org/sparql");  // worst case

    constexpr int kReps = 300;
    hbold::Stopwatch sw;
    for (int r = 0; r < kReps; ++r) {
      auto doc = plain->FindOne(filter);
      benchmark::DoNotOptimize(doc);
    }
    double scan_us = sw.ElapsedMillis() * 1000 / kReps;
    sw.Reset();
    for (int r = 0; r < kReps; ++r) {
      auto doc = indexed->FindOne(filter);
      benchmark::DoNotOptimize(doc);
    }
    double index_us = sw.ElapsedMillis() * 1000 / kReps;
    std::printf("%-10zu %16.2f %16.2f %9.1fx\n", docs, scan_us, index_us,
                scan_us / index_us);
  }
  std::printf("\nshape check: the scan cost grows linearly with the number\n"
              "of stored datasets while the indexed lookup stays flat —\n"
              "at the paper's 130 datasets the index already wins, and the\n"
              "gap widens as H-BOLD's list grows.\n");
}

void BM_FindOneScan(benchmark::State& state) {
  auto c = BuildCollection(static_cast<size_t>(state.range(0)), false);
  hbold::Json filter = hbold::Json::MakeObject();
  filter.Set("endpoint_url",
             "http://ld" + std::to_string(state.range(0) - 1) +
                 ".example.org/sparql");
  for (auto _ : state) {
    benchmark::DoNotOptimize(c->FindOne(filter));
  }
}
BENCHMARK(BM_FindOneScan)->Arg(130)->Arg(1000);

void BM_FindOneIndexed(benchmark::State& state) {
  auto c = BuildCollection(static_cast<size_t>(state.range(0)), true);
  hbold::Json filter = hbold::Json::MakeObject();
  filter.Set("endpoint_url",
             "http://ld" + std::to_string(state.range(0) - 1) +
                 ".example.org/sparql");
  for (auto _ : state) {
    benchmark::DoNotOptimize(c->FindOne(filter));
  }
}
BENCHMARK(BM_FindOneIndexed)->Arg(130)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
