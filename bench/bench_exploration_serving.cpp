// Exploration-serving bench + gate: the concurrent session engine against a
// freshly extracted fleet, across {1,4} serving threads x layout cache
// on/off. The workload is the seeded multi-step session stream
// (workload::exploration_workload): open a dataset, render the four
// high-level views, walk Fig. 2 expansion steps, run effectiveness tasks,
// drill into instances and issue visual queries against the owning shard's
// endpoint.
//
// Emits machine-readable BENCH_exploration_serving.json and exits nonzero
// when a gate fails:
//   - transcript identity: the combined session transcript is byte-identical
//     (same FNV fingerprint) across every (threads, cache) configuration
//   - cache speedup >= 2x sessions/sec at equal thread count
//   - cache determinism: single-flight misses match across thread counts
//
//   ./build/bench_exploration_serving [endpoints] [sessions]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "hbold/exploration_service.h"
#include "hbold/fleet.h"
#include "workload/exploration_workload.h"

namespace {

using hbold::ExplorationService;
using hbold::ExplorationServiceOptions;
using hbold::Fleet;
using hbold::HexU64;
using hbold::Json;
using hbold::SessionResult;
using hbold::SimClock;
using hbold::Stopwatch;
using hbold::ThreadPool;
using hbold::workload::ExplorationWorkloadOptions;
using hbold::workload::SessionPlan;

struct RunFigures {
  double best_ms = 0;
  double sessions_per_sec = 0;
  uint64_t fingerprint = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_hits = 0;
  double p50_interaction_ms = 0;
  double p99_interaction_ms = 0;
};

RunFigures ServeWorkload(Fleet* fleet, const std::vector<SessionPlan>& plans,
                         bool use_cache, size_t threads) {
  RunFigures figures;
  constexpr int kReps = 2;  // best-of, for noisy shared runners
  for (int rep = 0; rep < kReps; ++rep) {
    ExplorationServiceOptions options;
    options.use_layout_cache = use_cache;
    ExplorationService service(fleet, options);
    if (service.RefreshSnapshots() == 0) {
      std::fprintf(stderr, "no datasets extracted\n");
      std::exit(1);
    }
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    Stopwatch sw;
    std::vector<SessionResult> results = service.RunSessions(plans, pool.get());
    double ms = sw.ElapsedMillis();
    if (rep == 0 || ms < figures.best_ms) {
      figures.best_ms = ms;
      std::vector<double> latencies;
      for (const SessionResult& r : results) {
        latencies.insert(latencies.end(), r.interaction_wall_ms.begin(),
                         r.interaction_wall_ms.end());
      }
      figures.p50_interaction_ms = hbold::bench::Percentile(latencies, 50);
      figures.p99_interaction_ms = hbold::bench::Percentile(latencies, 99);
    }
    figures.fingerprint = ExplorationService::CombinedFingerprint(results);
    figures.cache_misses = service.cache_stats().misses;
    figures.cache_hits = service.cache_stats().hits;
  }
  figures.sessions_per_sec =
      figures.best_ms > 0
          ? static_cast<double>(plans.size()) / (figures.best_ms / 1000.0)
          : 0;
  return figures;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_endpoints =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 24;
  const size_t num_sessions =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 64;

  // A 2-shard fleet over the standard bench endpoint mix, extracted once;
  // serving runs against the persisted summaries/cluster schemas.
  SimClock clock;
  hbold::bench::FleetOptions world_options;
  world_options.size = num_endpoints;
  std::vector<hbold::bench::FleetMember> members =
      hbold::bench::BuildFleet(world_options, &clock);
  hbold::FleetOptions fleet_options;
  fleet_options.num_shards = 2;
  fleet_options.fleet_workers = 4;
  Fleet fleet(&clock, fleet_options);
  for (hbold::bench::FleetMember& m : members) {
    hbold::endpoint::EndpointRecord record;
    record.url = m.url;
    record.name = m.endpoint->name();
    fleet.RegisterEndpoint(record);
    fleet.AttachEndpoint(m.url, m.endpoint.get());
  }
  if (fleet.RunSimulation(1).days.empty()) return 1;

  ExplorationWorkloadOptions workload;
  workload.sessions = num_sessions;
  workload.seed = 2020;
  std::vector<SessionPlan> plans =
      hbold::workload::GenerateSessions(workload, num_endpoints);

  std::printf("=== exploration serving: %zu endpoints, %zu sessions ===\n",
              num_endpoints, plans.size());

  RunFigures cached_1 = ServeWorkload(&fleet, plans, true, 1);
  RunFigures cached_4 = ServeWorkload(&fleet, plans, true, 4);
  RunFigures uncached_1 = ServeWorkload(&fleet, plans, false, 1);
  RunFigures uncached_4 = ServeWorkload(&fleet, plans, false, 4);

  auto print_run = [](const char* label, const RunFigures& f) {
    std::printf(
        "%-22s %8.1f ms  %7.1f sessions/s  p50 %6.3f ms  p99 %6.3f ms  "
        "fp %s\n",
        label, f.best_ms, f.sessions_per_sec, f.p50_interaction_ms,
        f.p99_interaction_ms, HexU64(f.fingerprint).c_str());
  };
  print_run("cache on,  1 thread", cached_1);
  print_run("cache on,  4 threads", cached_4);
  print_run("cache off, 1 thread", uncached_1);
  print_run("cache off, 4 threads", uncached_4);

  const bool transcript_identity =
      cached_1.fingerprint == cached_4.fingerprint &&
      cached_1.fingerprint == uncached_1.fingerprint &&
      cached_1.fingerprint == uncached_4.fingerprint;
  const double speedup_1 = cached_1.best_ms > 0
                               ? uncached_1.best_ms / cached_1.best_ms
                               : 0;
  const double speedup_4 = cached_4.best_ms > 0
                               ? uncached_4.best_ms / cached_4.best_ms
                               : 0;
  const bool cache_speedup_2x = speedup_1 >= 2.0;
  const bool deterministic_misses =
      cached_1.cache_misses == cached_4.cache_misses &&
      cached_1.cache_hits == cached_4.cache_hits;

  std::printf("cache speedup: %.2fx (1 thread), %.2fx (4 threads)\n",
              speedup_1, speedup_4);
  std::printf("layout cache: %llu misses, %llu hits (thread-invariant: %s)\n",
              static_cast<unsigned long long>(cached_1.cache_misses),
              static_cast<unsigned long long>(cached_1.cache_hits),
              deterministic_misses ? "yes" : "NO");

  Json report = Json::MakeObject();
  report.Set("endpoints", static_cast<int64_t>(num_endpoints));
  report.Set("sessions", static_cast<int64_t>(plans.size()));
  report.Set("transcript_fingerprint", HexU64(cached_1.fingerprint));
  report.Set("cache_misses", static_cast<int64_t>(cached_1.cache_misses));
  report.Set("cache_hits", static_cast<int64_t>(cached_1.cache_hits));
  report.Set("cached_ms", cached_1.best_ms);
  report.Set("uncached_ms", uncached_1.best_ms);
  report.Set("cached_threads4_ms", cached_4.best_ms);
  report.Set("uncached_threads4_ms", uncached_4.best_ms);
  report.Set("sessions_per_sec_cached", cached_1.sessions_per_sec);
  report.Set("sessions_per_sec_uncached", uncached_1.sessions_per_sec);
  report.Set("speedup", speedup_1);
  report.Set("speedup_threads4", speedup_4);
  report.Set("p50_interaction_ms", cached_4.p50_interaction_ms);
  report.Set("p99_interaction_ms", cached_4.p99_interaction_ms);
  Json gates = Json::MakeObject();
  gates.Set("transcript_identity", transcript_identity);
  gates.Set("cache_speedup_2x", cache_speedup_2x);
  gates.Set("deterministic_misses", deterministic_misses);
  report.Set("gates", std::move(gates));

  std::ofstream out("BENCH_exploration_serving.json");
  out << report.Dump(2) << "\n";
  out.close();
  std::printf("wrote BENCH_exploration_serving.json\n");

  if (!transcript_identity) {
    std::fprintf(stderr,
                 "GATE FAILED: transcripts differ across configurations\n");
    return 1;
  }
  if (!deterministic_misses) {
    std::fprintf(stderr,
                 "GATE FAILED: cache misses vary with thread count\n");
    return 1;
  }
  if (!cache_speedup_2x) {
    std::fprintf(stderr, "GATE FAILED: cache speedup %.2fx < 2x\n", speedup_1);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
