#ifndef HBOLD_BENCH_BENCH_UTIL_H_
#define HBOLD_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment-reproduction benchmarks: a fleet of
// simulated endpoints with H-BOLD-like size/dialect diversity, simple
// percentile math, and table printing.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "common/random.h"
#include "endpoint/simulated_endpoint.h"
#include "hbold/server.h"
#include "rdf/graph.h"
#include "workload/ld_generator.h"

namespace hbold::bench {

/// One simulated Linked Data source behind an endpoint.
struct FleetMember {
  std::string url;
  std::unique_ptr<rdf::TripleStore> store;
  std::unique_ptr<endpoint::SimulatedRemoteEndpoint> endpoint;
  size_t classes = 0;
};

/// Options for BuildFleet.
struct FleetOptions {
  size_t size = 130;  // the paper: "tested on 130 Big LD"
  size_t min_classes = 5;
  size_t max_classes = 120;
  size_t max_instances_per_class = 40;
  /// Fraction of endpoints per dialect family (rest are full-featured).
  double no_group_by_fraction = 0.15;
  double no_aggregates_fraction = 0.10;
  double row_capped_fraction = 0.10;
  uint64_t seed = 1234;
  /// Per-endpoint mutation model (default: static data). The per-endpoint
  /// seed is derived from this plus the endpoint index, so the fleet's
  /// churn history is a pure function of the options.
  endpoint::MutationModel mutation;
  /// Fraction of endpoints whose data never changes even when `mutation`
  /// enables churn — real LD fleets are mostly quiet. Selection is by
  /// stable URL hash, so it is independent of fleet size and of the rng
  /// stream the dialect mix consumes.
  double quiet_fraction = 0.0;
};

/// Builds `options.size` endpoints with Zipf-distributed schema sizes and a
/// dialect mix. Endpoint i's URL is "http://ld<i>.example.org/sparql".
inline std::vector<FleetMember> BuildFleet(const FleetOptions& options,
                                           const SimClock* clock) {
  std::vector<FleetMember> fleet;
  fleet.reserve(options.size);
  Rng rng(options.seed);
  for (size_t i = 0; i < options.size; ++i) {
    FleetMember member;
    member.url = "http://ld" + std::to_string(i) + ".example.org/sparql";
    member.store = std::make_unique<rdf::TripleStore>();

    workload::SyntheticLdConfig config;
    config.namespace_iri = "http://ld" + std::to_string(i) + ".example.org/";
    // Zipf-shaped schema sizes: a few big sources, many small ones.
    size_t span = options.max_classes - options.min_classes;
    size_t rank = rng.Zipf(span + 1, 1.0);
    config.num_classes = options.min_classes + (span - rank);
    config.num_domains = 2 + config.num_classes / 12;
    config.max_instances_per_class = options.max_instances_per_class;
    config.seed = options.seed + i * 7919;
    workload::GenerateSyntheticLd(config, member.store.get());
    member.classes = config.num_classes;

    endpoint::Dialect dialect = endpoint::Dialect::Full();
    double mix = rng.NextDouble();
    if (mix < options.no_aggregates_fraction) {
      dialect = endpoint::Dialect::NoAggregates();
    } else if (mix < options.no_aggregates_fraction +
                         options.no_group_by_fraction) {
      dialect = endpoint::Dialect::NoGroupBy();
    } else if (mix < options.no_aggregates_fraction +
                         options.no_group_by_fraction +
                         options.row_capped_fraction) {
      dialect = endpoint::Dialect::RowCapped(5000);
    }
    endpoint::MutationModel mutation = options.mutation;
    if (mutation.daily_churn_fraction > 0) {
      mutation.seed += i * 104729;
      if (static_cast<double>(Fnv64(member.url) % 1000) <
          options.quiet_fraction * 1000) {
        mutation.daily_churn_fraction = 0;
      }
    }
    member.endpoint = std::make_unique<endpoint::SimulatedRemoteEndpoint>(
        member.url, "LD " + std::to_string(i), member.store.get(), clock,
        dialect, endpoint::AvailabilityModel{}, endpoint::LatencyModel{},
        mutation);
    fleet.push_back(std::move(member));
  }
  return fleet;
}

/// Registers and attaches a fleet to a server.
inline void AttachFleet(std::vector<FleetMember>* fleet, Server* server) {
  for (FleetMember& member : *fleet) {
    server->AttachEndpoint(member.url, member.endpoint.get());
    endpoint::EndpointRecord record;
    record.url = member.url;
    record.name = member.endpoint->name();
    server->RegisterEndpoint(record);
  }
}

/// p in [0,100]; v is copied and sorted.
inline double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::string& label, const std::string& paper,
                     const std::string& measured) {
  std::printf("%-46s %-22s %s\n", label.c_str(), paper.c_str(),
              measured.c_str());
}

}  // namespace hbold::bench

#endif  // HBOLD_BENCH_BENCH_UTIL_H_
