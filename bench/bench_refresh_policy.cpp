// E11 — §3.1 refresh policy over a simulated month: endpoints flap
// day-to-day, LD content changes rarely, and the scheduler re-extracts
// weekly when healthy and daily after a failure. Reports the per-day
// schedule and verifies the policy's two invariants.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "hbold/hbold.h"
#include "workload/ld_generator.h"

int main() {
  hbold::SimClock clock;
  hbold::store::Database db;
  hbold::Server server(&db, &clock);

  // 40 endpoints with 90% daily uptime (the paper: endpoints are "often
  // not available [but] might work again after 1 or 2 days").
  constexpr size_t kEndpoints = 40;
  constexpr int64_t kDays = 30;
  std::vector<std::unique_ptr<hbold::rdf::TripleStore>> stores;
  std::vector<std::unique_ptr<hbold::endpoint::SimulatedRemoteEndpoint>> eps;
  for (size_t i = 0; i < kEndpoints; ++i) {
    auto store = std::make_unique<hbold::rdf::TripleStore>();
    hbold::workload::SyntheticLdConfig config;
    config.num_classes = 6 + i % 20;
    config.max_instances_per_class = 20;
    config.seed = 1000 + i;
    hbold::workload::GenerateSyntheticLd(config, store.get());

    hbold::endpoint::AvailabilityModel avail;
    avail.uptime = 0.9;
    avail.seed = 50 + i;
    std::string url = "http://flaky" + std::to_string(i) +
                      ".example.org/sparql";
    auto ep = std::make_unique<hbold::endpoint::SimulatedRemoteEndpoint>(
        url, "Flaky " + std::to_string(i), store.get(), &clock,
        hbold::endpoint::Dialect::Full(), avail);
    server.AttachEndpoint(url, ep.get());
    hbold::endpoint::EndpointRecord record;
    record.url = url;
    server.RegisterEndpoint(record);
    stores.push_back(std::move(store));
    eps.push_back(std::move(ep));
  }

  hbold::bench::PrintHeader("E11: §3.1 refresh policy over 30 simulated days");
  std::printf("%-6s %6s %6s %8s %8s\n", "day", "due", "ok", "failed",
              "reused");
  size_t total_attempts = 0, total_ok = 0, total_reused = 0;
  std::map<std::string, int64_t> last_success;
  bool policy_violation = false;
  for (int64_t day = 0; day < kDays; ++day) {
    // Policy invariant 1: a healthy endpoint is never re-extracted before
    // 7 days have passed.
    for (const auto* record : server.registry().All()) {
      auto it = last_success.find(record->url);
      if (it != last_success.end() && !record->last_attempt_failed) {
        hbold::extraction::RefreshScheduler scheduler(7);
        if (scheduler.IsDue(*record, day) && day - it->second < 7) {
          policy_violation = true;
        }
      }
    }
    hbold::DailyReport report = server.RunDailyUpdate();
    total_attempts += report.due;
    total_ok += report.succeeded;
    total_reused += report.reused;
    for (const auto& r : report.reports) last_success[r.url] = day;
    std::printf("%-6lld %6zu %6zu %8zu %8zu\n", static_cast<long long>(day),
                report.due, report.succeeded, report.failed, report.reused);
    clock.AdvanceDays(1);
  }

  // With weekly refresh and 90% uptime, each endpoint is attempted roughly
  // 30/7 times plus a retry per failure: far fewer than daily extraction
  // (30 per endpoint) — the §3.1 point ("it is useless to run the index
  // extraction over all the datasets daily").
  double attempts_per_endpoint =
      static_cast<double>(total_attempts) / kEndpoints;
  std::printf("\nattempts per endpoint over %lld days: %.1f (daily policy "
              "would be %lld)\n",
              static_cast<long long>(kDays), attempts_per_endpoint,
              static_cast<long long>(kDays));
  std::printf("successful extractions: %zu; endpoints indexed: %zu/%zu\n",
              total_ok, server.registry().IndexedCount(), kEndpoints);
  std::printf("clustering runs avoided (unchanged Schema Summary, §3.2): "
              "%zu of %zu successes\n",
              total_reused, total_ok);
  bool ok = !policy_violation && attempts_per_endpoint < 10 &&
            server.registry().IndexedCount() == kEndpoints;
  std::printf("\npolicy invariants hold (weekly refresh, daily retry after "
              "failure): %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
