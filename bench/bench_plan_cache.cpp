// Plan-cache bench + gate: the cross-query plan cache against the
// repeated-query corpus an H-BOLD server actually generates — the same
// profiling family re-issued cycle after cycle against an unchanged
// endpoint. Planner-bound shapes (multi-pattern anchored stars/chains,
// 3-pattern range-class queries on small classes, count family) are where
// planning dominates execution, which is precisely the daily-refresh
// steady state the cache targets.
//
// Emits machine-readable BENCH_plan_cache.json and exits nonzero when a
// gate fails:
//   - repeated-corpus speedup >= 2x (cache on vs off, identical queries)
//   - every result table bit-identical cache on vs off
//   - steady state (rounds >= 2) serves hits only
//
//   ./build/bench_plan_cache [num_triples] [rounds]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/random.h"
#include "rdf/graph.h"
#include "sparql/executor.h"
#include "sparql/planner.h"

namespace {

using hbold::Json;
using hbold::Stopwatch;
using hbold::rdf::Term;
using hbold::rdf::TripleStore;
using hbold::sparql::ExecOptions;
using hbold::sparql::ExecStats;
using hbold::sparql::Executor;
using hbold::sparql::PlanCache;
using hbold::sparql::PlanCacheStats;
using hbold::sparql::ResultTable;

constexpr size_t kClasses = 40;
constexpr size_t kPredicates = 24;

TripleStore MakeStore(size_t target_triples, uint64_t seed) {
  TripleStore store;
  hbold::Rng rng(seed);
  const size_t subjects = std::max<size_t>(1, target_triples / 5);
  auto subject = [](size_t i) {
    return Term::Iri("http://bench/s" + std::to_string(i));
  };
  for (size_t i = 0; i < subjects; ++i) {
    store.Add(subject(i),
              Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
              Term::Iri("http://bench/class/C" +
                        std::to_string(rng.Zipf(kClasses, 1.0))));
    size_t links = 3 + rng.Uniform(3);
    for (size_t k = 0; k < links; ++k) {
      store.Add(subject(i),
                Term::Iri("http://bench/p" +
                          std::to_string(rng.Uniform(kPredicates))),
                subject(rng.Uniform(subjects)));
    }
  }
  store.FinalizeIndex();
  return store;
}

/// The repeated profiling corpus: what a server re-issues every refresh
/// cycle. Deliberately planner-bound — selective anchors, many patterns —
/// plus the star/range and count families for realism.
std::vector<std::string> RepeatedCorpus(size_t subjects) {
  std::vector<std::string> corpus;
  auto p = [](size_t i) {
    return "<http://bench/p" + std::to_string(i % kPredicates) + ">";
  };
  auto cls = [](size_t i) {
    return "<http://bench/class/C" + std::to_string(i % kClasses) + ">";
  };
  auto subj = [&](size_t i) {
    return "<http://bench/s" + std::to_string(i % subjects) + ">";
  };

  // Subject-profile stars: 8 patterns anchored on one subject. Execution
  // is a handful of index probes; parsing is linear and planning is
  // O(k^2) estimate probes — exactly what the prepared/plan tiers skip.
  for (size_t i = 0; i < 14; ++i) {
    std::string q = "SELECT ?v0 ?v1 ?v2 ?v3 ?v4 ?v5 ?v6 ?v7 WHERE {\n";
    for (int k = 0; k < 8; ++k) {
      q += "  " + subj(i * 997 + 13) + " " + p(i + static_cast<size_t>(k)) +
           " ?v" + std::to_string(k) + " .\n";
    }
    q += "}";
    corpus.push_back(q);
  }
  // Anchored chains: join planning across 5 patterns, selective heads.
  for (size_t i = 0; i < 10; ++i) {
    corpus.push_back("SELECT ?c WHERE {\n  " + subj(i * 577 + 7) + " " + p(i) +
                     " ?a .\n  ?a " + p(i + 3) + " ?b .\n  ?b " + p(i + 7) +
                     " ?c .\n  ?c " + p(i + 11) + " ?d .\n  ?d " + p(i + 13) +
                     " ?e .\n}");
  }
  // Count family (pure index arithmetic; cache still skips parse+plan).
  for (size_t i = 0; i < 6; ++i) {
    corpus.push_back("SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a " +
                     cls(20 + i) + " . }");
  }
  // One execution-bound grouped count for realism: the cache cannot help
  // it (the boundary-jump walk dominates), it keeps the gate honest.
  corpus.push_back(
      "SELECT ?c (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a ?c . } GROUP BY ?c");
  return corpus;
}

bool TablesIdentical(const ResultTable& a, const ResultTable& b) {
  if (a.columns() != b.columns() || a.num_rows() != b.num_rows()) return false;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      const auto& ca = a.rows()[r][c];
      const auto& cb = b.rows()[r][c];
      if (ca.has_value() != cb.has_value()) return false;
      if (ca.has_value() && *ca != *cb) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t target =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 50000;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 40;
  TripleStore store = MakeStore(target, 7);
  const size_t subjects = std::max<size_t>(1, target / 5);
  std::vector<std::string> corpus = RepeatedCorpus(subjects);
  std::printf("=== plan-cache bench: %zu triples, %zu queries x %d rounds ===\n",
              store.size(), corpus.size(), rounds);

  Executor uncached(&store);
  PlanCache cache;
  Executor cached(&store, ExecOptions{}, &cache);

  // Bit-identity first (also warms nothing: each side runs once).
  bool identical = true;
  for (const std::string& q : corpus) {
    auto ru = uncached.Execute(q);
    ExecStats cs;
    auto rc = cached.Execute(q, &cs);
    if (!ru.ok() || !rc.ok() || !TablesIdentical(*ru, *rc)) {
      std::fprintf(stderr, "MISMATCH: %s\n", q.c_str());
      identical = false;
    }
  }
  // The check above also served as the cache's warm-up round; clear the
  // timing slate by measuring fresh executors below (cache kept warm on
  // purpose for the cached side: the corpus is *repeated*, that is the
  // steady state being measured — the uncached side has no state at all).

  const int kReps = 3;  // best-of, for noisy shared runners
  double uncached_ms = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch sw;
    for (int r = 0; r < rounds; ++r) {
      for (const std::string& q : corpus) {
        auto res = uncached.Execute(q);
        if (!res.ok()) return 1;
      }
    }
    double ms = sw.ElapsedMillis();
    if (rep == 0 || ms < uncached_ms) uncached_ms = ms;
  }

  PlanCacheStats before = cache.stats();
  double cached_ms = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch sw;
    for (int r = 0; r < rounds; ++r) {
      for (const std::string& q : corpus) {
        auto res = cached.Execute(q);
        if (!res.ok()) return 1;
      }
    }
    double ms = sw.ElapsedMillis();
    if (rep == 0 || ms < cached_ms) cached_ms = ms;
  }
  PlanCacheStats after = cache.stats();
  const uint64_t steady_misses = after.misses - before.misses;
  const uint64_t steady_hits = after.hits - before.hits;
  const double speedup = cached_ms > 0 ? uncached_ms / cached_ms : 0;

  std::printf(
      "repeated corpus: %.1f ms uncached vs %.1f ms cached => %.2fx "
      "(steady state: %llu hits, %llu misses)\n",
      uncached_ms, cached_ms, speedup,
      static_cast<unsigned long long>(steady_hits),
      static_cast<unsigned long long>(steady_misses));

  const bool pass_speedup = speedup >= 2.0;
  const bool pass_steady = steady_misses == 0;

  Json report = Json::MakeObject();
  report.Set("triples", static_cast<int64_t>(store.size()));
  report.Set("corpus_queries", static_cast<int64_t>(corpus.size()));
  report.Set("rounds", static_cast<int64_t>(rounds));
  report.Set("uncached_ms", uncached_ms);
  report.Set("cached_ms", cached_ms);
  report.Set("speedup", speedup);
  report.Set("steady_hits", static_cast<int64_t>(steady_hits));
  report.Set("steady_misses", static_cast<int64_t>(steady_misses));
  report.Set("cache_entries", static_cast<int64_t>(after.entries));
  Json gates = Json::MakeObject();
  gates.Set("plan_cache_speedup_2x", pass_speedup);
  gates.Set("bit_identity", identical);
  gates.Set("steady_state_all_hits", pass_steady);
  report.Set("gates", std::move(gates));

  std::ofstream out("BENCH_plan_cache.json");
  out << report.Dump(2) << "\n";
  out.close();
  std::printf("wrote BENCH_plan_cache.json\n");

  if (!identical) {
    std::fprintf(stderr, "GATE FAILED: cached results not bit-identical\n");
    return 1;
  }
  if (!pass_steady) {
    std::fprintf(stderr, "GATE FAILED: steady state saw %llu misses\n",
                 static_cast<unsigned long long>(steady_misses));
    return 1;
  }
  if (!pass_speedup) {
    std::fprintf(stderr, "GATE FAILED: repeated-corpus speedup %.2fx < 2x\n",
                 speedup);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
