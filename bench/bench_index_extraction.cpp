// E8 — §2.1/§3.1 index extraction with pattern strategies across the
// endpoint-dialect grid (the reason H-BOLD's extraction "is able to deal
// with the performance issues of the different implementations of SPARQL
// endpoints by using pattern strategies" [1]).
//
// For every (dialect, size) pair we run the full extractor and report the
// strategy that ended up being used, how many queries it issued, and the
// simulated endpoint time it consumed.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "bench/bench_util.h"
#include "common/json.h"
#include "extraction/extractor.h"
#include "workload/ld_generator.h"

namespace {

using hbold::Json;
using hbold::endpoint::Dialect;

struct DialectSpec {
  const char* name;
  Dialect dialect;
};

std::vector<DialectSpec> DialectGrid() {
  return {
      {"full (Virtuoso-class)", Dialect::Full()},
      {"no GROUP BY", Dialect::NoGroupBy()},
      {"no aggregates", Dialect::NoAggregates()},
      {"row cap 500", Dialect::RowCapped(500)},
  };
}

std::unique_ptr<hbold::rdf::TripleStore> MakeStore(size_t classes,
                                                   uint64_t seed) {
  auto store = std::make_unique<hbold::rdf::TripleStore>();
  hbold::workload::SyntheticLdConfig config;
  config.num_classes = classes;
  config.max_instances_per_class = 40;
  config.seed = seed;
  hbold::workload::GenerateSyntheticLd(config, store.get());
  return store;
}

void PrintGrid() {
  hbold::bench::PrintHeader(
      "E8: index extraction pattern strategies across endpoint dialects");
  std::printf("%-24s %8s %-20s %9s %10s %12s %10s\n", "dialect", "classes",
              "strategy used", "queries", "rows", "endpoint ms", "fallbacks");
  Json grid = Json::MakeArray();
  for (const DialectSpec& spec : DialectGrid()) {
    for (size_t classes : {10, 30, 60}) {
      auto store = MakeStore(classes, classes * 31);
      hbold::SimClock clock;
      hbold::endpoint::SimulatedRemoteEndpoint ep(
          "http://grid/sparql", "grid", store.get(), &clock, spec.dialect);
      hbold::extraction::ExtractionReport report;
      auto summary = hbold::extraction::IndexExtractor().Extract(&ep, &report);
      Json entry = Json::MakeObject();
      entry.Set("dialect", spec.name);
      entry.Set("classes", static_cast<int64_t>(classes));
      if (!summary.ok()) {
        std::printf("%-24s %8zu %-20s %9s %10s %12s %10s\n", spec.name,
                    classes, "FAILED", "-", "-", "-", "-");
        entry.Set("failed", true);
        grid.Append(std::move(entry));
        continue;
      }
      std::printf("%-24s %8zu %-20s %9zu %10zu %12.1f %10zu\n", spec.name,
                  classes, report.strategy_used.c_str(),
                  report.queries_issued, report.rows_transferred,
                  report.total_latency_ms, report.fallbacks.size());
      entry.Set("strategy", report.strategy_used);
      entry.Set("queries", static_cast<int64_t>(report.queries_issued));
      entry.Set("rows", static_cast<int64_t>(report.rows_transferred));
      entry.Set("endpoint_ms", report.total_latency_ms);
      entry.Set("intra_makespan_ms", report.intra_makespan_ms);
      entry.Set("fallbacks", static_cast<int64_t>(report.fallbacks.size()));
      grid.Append(std::move(entry));
    }
  }
  Json out = Json::MakeObject();
  out.Set("extraction_grid", std::move(grid));
  std::ofstream file("BENCH_index_extraction.json");
  file << out.Dump(2) << "\n";
  std::printf("wrote BENCH_index_extraction.json\n");
  std::printf(
      "\nshape check: the fallback chain always lands on a strategy the\n"
      "endpoint can answer, and all strategies extract identical summaries\n"
      "(tests/extraction_test.cc). Aggregation pushdown (direct) transfers\n"
      "the fewest rows; losing GROUP BY multiplies the query count; losing\n"
      "aggregates entirely forces the paginated scan, which transfers the\n"
      "whole dataset — few queries here only because the simulated network\n"
      "is free per row.\n");
}

void BM_ExtractFullDialect(benchmark::State& state) {
  auto store = MakeStore(static_cast<size_t>(state.range(0)), 5);
  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep("u", "n", store.get(), &clock);
  hbold::extraction::IndexExtractor extractor;
  for (auto _ : state) {
    auto summary = extractor.Extract(&ep, nullptr);
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_ExtractFullDialect)->Arg(10)->Arg(30)->Arg(60);

void BM_ExtractPaginated(benchmark::State& state) {
  auto store = MakeStore(static_cast<size_t>(state.range(0)), 6);
  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep(
      "u", "n", store.get(), &clock, Dialect::NoAggregates());
  hbold::extraction::IndexExtractor extractor;
  for (auto _ : state) {
    auto summary = extractor.Extract(&ep, nullptr);
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_ExtractPaginated)->Arg(10)->Arg(30);

}  // namespace

int main(int argc, char** argv) {
  PrintGrid();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
