// E8 — §2.1/§3.1 index extraction with pattern strategies across the
// endpoint-dialect grid (the reason H-BOLD's extraction "is able to deal
// with the performance issues of the different implementations of SPARQL
// endpoints by using pattern strategies" [1]).
//
// For every (dialect, size) pair we run the full extractor and report the
// strategy that ended up being used, how many queries it issued, and the
// simulated endpoint time it consumed.

#include <benchmark/benchmark.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "extraction/extractor.h"
#include "rdf/graph.h"
#include "rdf/vocab.h"
#include "workload/ld_generator.h"

namespace {

using hbold::Json;
using hbold::endpoint::Dialect;

struct DialectSpec {
  const char* name;
  Dialect dialect;
};

std::vector<DialectSpec> DialectGrid() {
  return {
      {"full (Virtuoso-class)", Dialect::Full()},
      {"no GROUP BY", Dialect::NoGroupBy()},
      {"no aggregates", Dialect::NoAggregates()},
      {"row cap 500", Dialect::RowCapped(500)},
  };
}

std::unique_ptr<hbold::rdf::TripleStore> MakeStore(size_t classes,
                                                   uint64_t seed) {
  auto store = std::make_unique<hbold::rdf::TripleStore>();
  hbold::workload::SyntheticLdConfig config;
  config.num_classes = classes;
  config.max_instances_per_class = 40;
  config.seed = seed;
  hbold::workload::GenerateSyntheticLd(config, store.get());
  return store;
}

Json PrintGrid() {
  hbold::bench::PrintHeader(
      "E8: index extraction pattern strategies across endpoint dialects");
  std::printf("%-24s %8s %-20s %9s %10s %12s %10s\n", "dialect", "classes",
              "strategy used", "queries", "rows", "endpoint ms", "fallbacks");
  Json grid = Json::MakeArray();
  for (const DialectSpec& spec : DialectGrid()) {
    for (size_t classes : {10, 30, 60}) {
      auto store = MakeStore(classes, classes * 31);
      hbold::SimClock clock;
      hbold::endpoint::SimulatedRemoteEndpoint ep(
          "http://grid/sparql", "grid", store.get(), &clock, spec.dialect);
      hbold::extraction::ExtractionReport report;
      auto summary = hbold::extraction::IndexExtractor().Extract(&ep, &report);
      Json entry = Json::MakeObject();
      entry.Set("dialect", spec.name);
      entry.Set("classes", static_cast<int64_t>(classes));
      if (!summary.ok()) {
        std::printf("%-24s %8zu %-20s %9s %10s %12s %10s\n", spec.name,
                    classes, "FAILED", "-", "-", "-", "-");
        entry.Set("failed", true);
        grid.Append(std::move(entry));
        continue;
      }
      std::printf("%-24s %8zu %-20s %9zu %10zu %12.1f %10zu\n", spec.name,
                  classes, report.strategy_used.c_str(),
                  report.queries_issued, report.rows_transferred,
                  report.total_latency_ms, report.fallbacks.size());
      entry.Set("strategy", report.strategy_used);
      entry.Set("queries", static_cast<int64_t>(report.queries_issued));
      entry.Set("rows", static_cast<int64_t>(report.rows_transferred));
      entry.Set("endpoint_ms", report.total_latency_ms);
      entry.Set("intra_makespan_ms", report.intra_makespan_ms);
      entry.Set("fallbacks", static_cast<int64_t>(report.fallbacks.size()));
      grid.Append(std::move(entry));
    }
  }
  std::printf(
      "\nshape check: the fallback chain always lands on a strategy the\n"
      "endpoint can answer, and all strategies extract identical summaries\n"
      "(tests/extraction_test.cc). Aggregation pushdown (direct) transfers\n"
      "the fewest rows; losing GROUP BY multiplies the query count; losing\n"
      "aggregates entirely forces the paginated scan, which transfers the\n"
      "whole dataset — few queries here only because the simulated network\n"
      "is free per row.\n");
  return grid;
}

// ---------------------------------------------------------------------------
// Out-of-core leg (--ooc=N): the same extraction over an N-triple corpus,
// run twice in forked children under an RLIMIT_AS cap that three raw
// in-RAM index vectors (plus the staging vector's doubling slack) cannot
// fit but the mmap-backed disk store can. Gates: the disk child must
// complete the full extraction, the in-RAM child must die trying.

/// VmPeak from /proc/self/status, in KiB (0 if unreadable).
uint64_t VmPeakKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmPeak:", 0) == 0) {
      return std::strtoull(line.c_str() + 7, nullptr, 10);
    }
  }
  return 0;
}

/// Deterministic ~N-triple corpus shaped like the synthetic LD workload
/// but sized for out-of-core runs: ~N/170 typed subjects over 200 classes,
/// 12 value predicates into a 20k-IRI object pool. Duplicates are possible
/// (the store dedups on rebuild), so the final size is slightly below N.
void GenerateOocTriples(size_t n, hbold::rdf::TripleStore* store) {
  using hbold::rdf::TermId;
  auto& dict = store->dict();
  const TermId type_p = dict.InternIri(hbold::rdf::vocab::kRdfType);
  std::vector<TermId> classes, preds, objects;
  for (size_t i = 0; i < 200; ++i) {
    classes.push_back(dict.InternIri("http://ooc/class/" + std::to_string(i)));
  }
  for (size_t i = 0; i < 12; ++i) {
    preds.push_back(dict.InternIri("http://ooc/p/" + std::to_string(i)));
  }
  for (size_t i = 0; i < 20000; ++i) {
    objects.push_back(dict.InternIri("http://ooc/obj/" + std::to_string(i)));
  }
  const size_t per_subject = 170;
  const size_t num_subjects = (n + per_subject - 1) / per_subject;
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  size_t added = 0;
  for (size_t i = 0; i < num_subjects && added < n; ++i) {
    const TermId s = dict.InternIri("http://ooc/s/" + std::to_string(i));
    store->AddIds(s, type_p, classes[i % classes.size()]);
    ++added;
    for (size_t k = 1; k < per_subject && added < n; ++k, ++added) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      store->AddIds(s, preds[(rng >> 33) % preds.size()],
                    objects[(rng >> 13) % objects.size()]);
    }
  }
}

/// Body of one forked child: cap the address space, build the corpus over
/// the chosen backend, run the full extraction, and leave the outcome as
/// JSON at `out_path`. Exit code 0 = completed; anything else (including
/// death by signal) = did not fit / did not finish.
int OocChildMain(bool use_disk, size_t n, size_t cap_bytes,
                 const std::string& scratch, const std::string& out_path) try {
  struct rlimit rl;
  rl.rlim_cur = rl.rlim_max = cap_bytes;
  if (setrlimit(RLIMIT_AS, &rl) != 0) return 2;
  // Keep executor hash-join builds bounded too: over-budget builds go to
  // spilled sorted runs instead of in-RAM tables.
  setenv("HBOLD_HASH_SPILL_BUDGET", "67108864", 1);
  hbold::rdf::TripleStore store;
  if (use_disk) {
    hbold::rdf::DiskBackendOptions options;
    options.directory = scratch;
    options.memory_budget_bytes = size_t{64} << 20;
    if (!store.EnableDiskBackend(options).ok()) return 2;
  }
  const auto t0 = std::chrono::steady_clock::now();
  GenerateOocTriples(n, &store);
  store.FinalizeIndex();
  // A failed disk rebuild keeps the previous (empty) generation and only
  // logs; an extraction over that would pass the gate vacuously. The
  // corpus dedups away well under 2% of n, so anything below that is a
  // rebuild that did not land.
  if (store.size() < n - n / 50) return 5;
  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep("http://ooc/sparql", "ooc",
                                              &store, &clock,
                                              Dialect::Full());
  hbold::extraction::ExtractionReport report;
  auto summary = hbold::extraction::IndexExtractor().Extract(&ep, &report);
  if (!summary.ok()) return 3;
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  Json out = Json::MakeObject();
  out.Set("triples", static_cast<int64_t>(store.size()));
  out.Set("classes", static_cast<int64_t>(summary->classes.size()));
  out.Set("strategy", report.strategy_used);
  out.Set("queries", static_cast<int64_t>(report.queries_issued));
  out.Set("endpoint_ms", report.total_latency_ms);
  out.Set("wall_s", wall_s);
  out.Set("vm_peak_mb", static_cast<int64_t>(VmPeakKb() >> 10));
  std::ofstream file(out_path);
  file << out.Dump(2) << "\n";
  file.flush();
  return file.good() ? 0 : 4;
} catch (const std::exception&) {
  // Typically std::bad_alloc from the in-RAM child hitting the cap.
  return 9;
}

struct OocOutcome {
  bool completed = false;
  Json detail = Json::MakeObject();
};

OocOutcome RunOocChild(bool use_disk, size_t n, size_t cap_bytes) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path base =
      fs::temp_directory_path() /
      ("hbold-ooc-" + std::to_string(static_cast<long>(::getpid())) +
       (use_disk ? "-disk" : "-ram"));
  fs::remove_all(base, ec);
  fs::create_directories(base, ec);
  const std::string out_path = (base / "result.json").string();
  const std::string scratch = (base / "store").string();
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::_exit(OocChildMain(use_disk, n, cap_bytes, scratch, out_path));
  }
  OocOutcome outcome;
  int status = 0;
  if (pid > 0 && ::waitpid(pid, &status, 0) == pid && WIFEXITED(status) &&
      WEXITSTATUS(status) == 0) {
    std::ifstream file(out_path);
    std::string text((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
    auto parsed = Json::Parse(text);
    if (parsed.ok()) {
      outcome.completed = true;
      outcome.detail = std::move(*parsed);
    }
  }
  fs::remove_all(base, ec);
  return outcome;
}

Json RunOocLeg(size_t n, size_t cap_mb) {
  hbold::bench::PrintHeader(
      "out-of-core extraction: mmap-backed store vs in-RAM under RLIMIT_AS");
  const size_t cap_bytes = cap_mb << 20;
  std::printf("corpus %zu triples, address-space cap %zu MiB\n", n, cap_mb);
  std::printf("disk-backed child: building + extracting...\n");
  OocOutcome disk = RunOocChild(/*use_disk=*/true, n, cap_bytes);
  if (disk.completed) {
    std::printf(
        "  completed: %lld triples, strategy %s, %lld queries, "
        "%.1fs wall, VmPeak %lld MiB\n",
        static_cast<long long>(disk.detail.GetInt("triples")),
        disk.detail.GetString("strategy").c_str(),
        static_cast<long long>(disk.detail.GetInt("queries")),
        disk.detail.GetNumber("wall_s"),
        static_cast<long long>(disk.detail.GetInt("vm_peak_mb")));
  } else {
    std::printf("  FAILED under the cap (gate broken)\n");
  }
  std::printf(
      "in-RAM child: same corpus, same cap (expected to die — the three\n"
      "index vectors plus staging slack do not fit)...\n");
  OocOutcome ram = RunOocChild(/*use_disk=*/false, n, cap_bytes);
  std::printf(ram.completed
                  ? "  completed (gate broken: cap is too loose)\n"
                  : "  died under the cap, as expected\n");
  Json gates = Json::MakeObject();
  gates.Set("disk_completed_under_cap", disk.completed);
  gates.Set("in_ram_exceeds_cap", !ram.completed);
  Json ooc = Json::MakeObject();
  ooc.Set("triples_requested", static_cast<int64_t>(n));
  ooc.Set("cap_mb", static_cast<int64_t>(cap_mb));
  if (disk.completed) {
    ooc.Set("triples", disk.detail.GetInt("triples"));
    ooc.Set("strategy", disk.detail.GetString("strategy"));
    ooc.Set("queries", disk.detail.GetInt("queries"));
    ooc.Set("endpoint_ms", disk.detail.GetNumber("endpoint_ms"));
    ooc.Set("disk_wall_s", disk.detail.GetNumber("wall_s"));
    ooc.Set("disk_vm_peak_mb", disk.detail.GetInt("vm_peak_mb"));
  }
  ooc.Set("gates", std::move(gates));
  return ooc;
}

void BM_ExtractFullDialect(benchmark::State& state) {
  auto store = MakeStore(static_cast<size_t>(state.range(0)), 5);
  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep("u", "n", store.get(), &clock);
  hbold::extraction::IndexExtractor extractor;
  for (auto _ : state) {
    auto summary = extractor.Extract(&ep, nullptr);
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_ExtractFullDialect)->Arg(10)->Arg(30)->Arg(60);

void BM_ExtractPaginated(benchmark::State& state) {
  auto store = MakeStore(static_cast<size_t>(state.range(0)), 6);
  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep(
      "u", "n", store.get(), &clock, Dialect::NoAggregates());
  hbold::extraction::IndexExtractor extractor;
  for (auto _ : state) {
    auto summary = extractor.Extract(&ep, nullptr);
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_ExtractPaginated)->Arg(10)->Arg(30);

}  // namespace

int main(int argc, char** argv) {
  // --ooc=N [--ooc-cap-mb=M]: run the memory-capped out-of-core leg and
  // add an "ooc" section to the report. Stripped before gbench sees argv.
  size_t ooc_n = 0;
  size_t ooc_cap_mb = 0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ooc=", 6) == 0) {
      ooc_n = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--ooc-cap-mb=", 13) == 0) {
      ooc_cap_mb = std::strtoull(argv[i] + 13, nullptr, 10);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  Json out = Json::MakeObject();
  out.Set("extraction_grid", PrintGrid());
  if (ooc_n > 0) {
    if (ooc_cap_mb == 0) {
      // Three mmap-backed runs cost 36 B/triple of address space; 48 B
      // per triple plus fixed slack clears the disk backend comfortably
      // while staying far below what the in-RAM vectors need (~60 B of
      // live data per triple plus doubling slack). Meaningful from ~8M
      // triples up — below that the fixed slack dominates both sides.
      ooc_cap_mb = ((ooc_n * 48) >> 20) + 64;
    }
    out.Set("ooc", RunOocLeg(ooc_n, ooc_cap_mb));
  }
  std::ofstream file("BENCH_index_extraction.json");
  file << out.Dump(2) << "\n";
  std::printf("wrote BENCH_index_extraction.json\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
