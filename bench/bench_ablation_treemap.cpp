// Ablation A3 — treemap tiling. Fig. 4 uses a squarified treemap; the
// classic slice-and-dice baseline keeps area proportionality but produces
// sliver cells on skewed (Zipf) class-size distributions — exactly what
// Linked Data looks like. This bench quantifies the readability gap via
// the mean leaf aspect ratio.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "viz/treemap.h"

namespace {

/// Cluster-shaped hierarchy with Zipf leaf values.
hbold::viz::Hierarchy ZipfHierarchy(size_t clusters, size_t leaves_per,
                                    double skew, uint64_t seed) {
  hbold::Rng rng(seed);
  hbold::viz::Hierarchy root{"root", 0, {}};
  for (size_t c = 0; c < clusters; ++c) {
    hbold::viz::Hierarchy cluster{"c" + std::to_string(c), 0, {}};
    for (size_t l = 0; l < leaves_per; ++l) {
      double value = 1000.0 / std::pow(static_cast<double>(l + 1), skew) +
                     static_cast<double>(rng.Uniform(5));
      cluster.children.push_back(
          hbold::viz::Hierarchy{"l" + std::to_string(l), value, {}});
    }
    root.children.push_back(std::move(cluster));
  }
  return root;
}

void PrintTable() {
  hbold::bench::PrintHeader(
      "A3: treemap tiling ablation — squarified vs slice-and-dice");
  std::printf("%-8s %8s %8s %18s %18s\n", "skew", "clusters", "leaves",
              "squarified ratio", "slice-dice ratio");
  for (double skew : {0.5, 1.0, 1.5}) {
    for (size_t clusters : {4, 12}) {
      hbold::viz::Hierarchy h = ZipfHierarchy(clusters, 20, skew, 7);
      hbold::viz::TreemapOptions sq;
      sq.padding = 0;
      sq.header = 0;
      hbold::viz::TreemapOptions sd = sq;
      sd.algorithm = hbold::viz::TreemapAlgorithm::kSliceDice;
      hbold::viz::Rect bounds{0, 0, 1200, 800};
      double sq_ratio = hbold::viz::MeanLeafAspectRatio(
          hbold::viz::TreemapLayout(h, bounds, sq));
      double sd_ratio = hbold::viz::MeanLeafAspectRatio(
          hbold::viz::TreemapLayout(h, bounds, sd));
      std::printf("%-8.1f %8zu %8zu %18.2f %18.2f\n", skew, clusters,
                  20ul, sq_ratio, sd_ratio);
    }
  }
  std::printf("\nshape check: squarified keeps the mean aspect ratio a small\n"
              "constant regardless of skew; slice-and-dice degrades with\n"
              "skew and cluster count — why Fig. 4 squarifies.\n");
}

void BM_Squarified(benchmark::State& state) {
  hbold::viz::Hierarchy h =
      ZipfHierarchy(static_cast<size_t>(state.range(0)), 20, 1.2, 3);
  hbold::viz::TreemapOptions opt;
  for (auto _ : state) {
    auto cells =
        hbold::viz::TreemapLayout(h, hbold::viz::Rect{0, 0, 1200, 800}, opt);
    benchmark::DoNotOptimize(cells);
  }
}
BENCHMARK(BM_Squarified)->Arg(4)->Arg(16)->Arg(64);

void BM_SliceDice(benchmark::State& state) {
  hbold::viz::Hierarchy h =
      ZipfHierarchy(static_cast<size_t>(state.range(0)), 20, 1.2, 3);
  hbold::viz::TreemapOptions opt;
  opt.algorithm = hbold::viz::TreemapAlgorithm::kSliceDice;
  for (auto _ : state) {
    auto cells =
        hbold::viz::TreemapLayout(h, hbold::viz::Rect{0, 0, 1200, 800}, opt);
    benchmark::DoNotOptimize(cells);
  }
}
BENCHMARK(BM_SliceDice)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
