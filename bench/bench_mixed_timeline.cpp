// Mixed-timeline bench + gate: extraction and serving traffic on ONE
// sim::EventLoop. Eight scheduled daily cycles (one deliberately heavy
// enough that its canonical makespan overruns the day and forces a
// catch-up cycle) interleave with a seeded ArrivalProcess stream of user
// sessions; every cycle completion refreshes the serving snapshots, so
// later arrivals explore fresher data — the full event taxonomy on one
// timeline.
//
// Emits machine-readable BENCH_mixed_timeline.json and exits nonzero when
// a gate fails:
//   - history invariance: the loop's event history (times, sequence,
//     kinds, labels) is byte-identical across deployment shapes
//     ({1,1,1}, {2,2,2}, {4,4,4} shards/workers/parallelism);
//   - transcript identity: the combined session transcript fingerprint
//     matches across the same shapes;
//   - overrun present: at least one simulated day overran its boundary
//     and was followed by a catch-up cycle;
//   - sessions served: the arrival stream actually dispatched sessions.
//
//   ./build/bench_mixed_timeline [endpoints] [days] [sessions]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "endpoint/simulated_endpoint.h"
#include "hbold/exploration_service.h"
#include "hbold/fleet.h"
#include "hbold/sim_options.h"
#include "sim/event_loop.h"
#include "workload/exploration_workload.h"
#include "workload/ld_generator.h"

namespace {

using hbold::ExplorationService;
using hbold::Fleet;
using hbold::FleetReport;
using hbold::HexU64;
using hbold::Json;
using hbold::SessionResult;
using hbold::SimClock;
using hbold::SimulationOptions;
using hbold::Stopwatch;
using hbold::workload::SessionPlan;
namespace sim = hbold::sim;

constexpr uint64_t kArrivalSeed = 2468;
constexpr uint64_t kChurnSeed = 55;

std::string UrlOf(size_t i) {
  return "http://mixed" + std::to_string(i) + ".example.org/sparql";
}

std::vector<std::unique_ptr<hbold::rdf::TripleStore>> BuildStores(
    size_t count) {
  std::vector<std::unique_ptr<hbold::rdf::TripleStore>> stores;
  stores.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto store = std::make_unique<hbold::rdf::TripleStore>();
    hbold::workload::SyntheticLdConfig config;
    config.namespace_iri =
        "http://mixed" + std::to_string(i) + ".example.org/";
    config.num_classes = 4 + (i * 13) % 18;
    config.num_domains = 2 + config.num_classes / 10;
    config.max_instances_per_class = 20;
    config.seed = 7000 + i;
    hbold::workload::GenerateSyntheticLd(config, store.get());
    stores.push_back(std::move(store));
  }
  return stores;
}

struct RunOutcome {
  FleetReport report;
  std::vector<SessionResult> sessions;
  std::string history;
  std::string history_fingerprint;
  uint64_t transcript_fingerprint = 0;
  double wall_ms = 0;
};

RunOutcome RunWorld(
    const std::vector<std::unique_ptr<hbold::rdf::TripleStore>>& stores,
    const std::vector<SessionPlan>& plans, int shards, int fleet_workers,
    int parallelism, int64_t days) {
  sim::EventLoop loop;

  std::vector<std::unique_ptr<hbold::endpoint::SimulatedRemoteEndpoint>>
      endpoints;
  endpoints.reserve(stores.size());
  for (size_t i = 0; i < stores.size(); ++i) {
    hbold::endpoint::Dialect dialect = hbold::endpoint::Dialect::Full();
    if (i % 5 == 1) dialect = hbold::endpoint::Dialect::NoGroupBy();
    if (i % 5 == 2) dialect = hbold::endpoint::Dialect::RowCapped(2000);
    hbold::endpoint::LatencyModel latency;
    if (i % 8 == 3) {
      // Heavy remote stores: each charged query costs simulated minutes,
      // so a full-extraction cycle's canonical makespan blows past the
      // day boundary (overrun + catch-up cycle) while the in-between
      // incremental-age days stay cheap and boundary-aligned — the bench
      // exercises both scheduling regimes on one timeline.
      latency.base_ms = 5e5;
    }
    endpoints.push_back(
        std::make_unique<hbold::endpoint::SimulatedRemoteEndpoint>(
            UrlOf(i), "Mixed " + std::to_string(i), stores[i].get(),
            loop.clock(), dialect, hbold::endpoint::AvailabilityModel{},
            latency));
  }

  SimulationOptions sim;
  sim.num_shards = shards;
  sim.parallelism = parallelism;
  sim.fleet_workers = static_cast<size_t>(fleet_workers);
  sim.churn.death_probability = 0.02;
  sim.churn.seed = kChurnSeed;
  Fleet fleet(&loop, sim.ToFleetOptions());
  for (size_t i = 0; i < stores.size(); ++i) {
    hbold::endpoint::EndpointRecord record;
    record.url = UrlOf(i);
    record.name = endpoints[i]->name();
    fleet.RegisterEndpoint(record);
    fleet.AttachEndpoint(UrlOf(i), endpoints[i].get());
  }

  ExplorationService service(&fleet);
  fleet.SetCycleCompleteHandler([&](const hbold::FleetDayReport&) {
    // Sessions arriving after this instant explore the fresh extraction.
    service.RefreshSnapshots();
  });

  // The session stream: seeded exponential-ish arrivals poured over the
  // whole simulated horizon. Scheduled before the cycles so arrival
  // events take the low sequence numbers in every deployment shape.
  sim::ArrivalProcess arrivals(
      kArrivalSeed, static_cast<double>(days * SimClock::kMillisPerDay) /
                        static_cast<double>(plans.size() + 1));
  service.ScheduleSessions(
      &loop, plans, arrivals.ArrivalsIn(0, days * SimClock::kMillisPerDay));
  fleet.ScheduleCycles(days);

  RunOutcome outcome;
  Stopwatch wall;
  loop.RunUntilIdle();
  outcome.wall_ms = wall.ElapsedMillis();
  outcome.report = fleet.TakeReport();
  outcome.sessions = service.TakeScheduledResults();
  outcome.history = loop.HistoryDump();
  outcome.history_fingerprint = loop.HistoryFingerprint();
  outcome.transcript_fingerprint =
      ExplorationService::CombinedFingerprint(outcome.sessions);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  hbold::Logger::set_threshold(hbold::LogLevel::kError);
  const size_t num_endpoints =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 16;
  const int64_t days = argc > 2 ? std::atoll(argv[2]) : 8;
  const size_t num_sessions =
      argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 48;

  auto stores = BuildStores(num_endpoints);
  hbold::workload::ExplorationWorkloadOptions workload;
  workload.sessions = num_sessions;
  workload.seed = 3030;
  std::vector<SessionPlan> plans =
      hbold::workload::GenerateSessions(workload, num_endpoints);

  std::printf(
      "=== mixed timeline: %zu endpoints, %lld days, %zu session plans ===\n",
      num_endpoints, static_cast<long long>(days), plans.size());

  RunOutcome base = RunWorld(stores, plans, 1, 1, 1, days);
  RunOutcome two = RunWorld(stores, plans, 2, 2, 2, days);
  RunOutcome four = RunWorld(stores, plans, 4, 4, 4, days);

  const bool history_invariance =
      base.history == two.history && base.history == four.history;
  const bool transcript_identity =
      base.transcript_fingerprint == two.transcript_fingerprint &&
      base.transcript_fingerprint == four.transcript_fingerprint &&
      base.report.CanonicalDump() == two.report.CanonicalDump() &&
      base.report.CanonicalDump() == four.report.CanonicalDump();

  size_t overran_days = 0;
  double total_sim_makespan = 0;
  for (const hbold::FleetDayReport& day : base.report.days) {
    if (day.overran_day) ++overran_days;
    total_sim_makespan += day.sim_makespan_ms;
  }
  // A catch-up cycle exists when some cycle started past its nominal
  // boundary: with at least one overrun the recorded day indices skip.
  const bool overrun_present = overran_days >= 1;
  const size_t sessions_served = base.sessions.size();

  std::printf("%-10s %8s %8s %10s %14s %8s\n", "day", "due", "ok", "overran",
              "sim makespan", "events");
  for (const hbold::FleetDayReport& day : base.report.days) {
    std::printf("%-10lld %8zu %8zu %10s %12.1f ms\n",
                static_cast<long long>(day.day), day.due, day.succeeded,
                day.overran_day ? "YES" : "no", day.sim_makespan_ms);
  }
  std::printf(
      "\n%zu sessions served on the shared loop; event history %s across "
      "deployments (fingerprint %s)\n",
      sessions_served, history_invariance ? "IDENTICAL" : "DIVERGED",
      base.history_fingerprint.c_str());
  std::printf("wall: %.1f ms (1 shard) / %.1f ms (4 shards)\n", base.wall_ms,
              four.wall_ms);

  Json report = Json::MakeObject();
  report.Set("endpoints", static_cast<int64_t>(num_endpoints));
  report.Set("days", static_cast<int64_t>(days));
  report.Set("cycles_run", static_cast<int64_t>(base.report.days.size()));
  report.Set("overran_days", static_cast<int64_t>(overran_days));
  report.Set("sessions_served", static_cast<int64_t>(sessions_served));
  report.Set("fingerprint", base.report.Fingerprint());
  report.Set("history_fingerprint", base.history_fingerprint);
  report.Set("transcript_fingerprint",
             HexU64(base.transcript_fingerprint));
  report.Set("total_sim_makespan_ms", total_sim_makespan);
  report.Set("wall_ms_sequential", base.wall_ms);
  report.Set("wall_ms_sharded", four.wall_ms);
  Json gates = Json::MakeObject();
  gates.Set("history_invariance", history_invariance);
  gates.Set("transcript_identity", transcript_identity);
  gates.Set("overrun_present", overrun_present);
  gates.Set("sessions_served_nonzero", sessions_served > 0);
  report.Set("gates", std::move(gates));

  std::ofstream out("BENCH_mixed_timeline.json");
  out << report.Dump(2) << "\n";
  out.close();
  std::printf("wrote BENCH_mixed_timeline.json\n");

  if (!history_invariance) {
    std::fprintf(stderr,
                 "GATE FAILED: event histories diverged across deployment "
                 "shapes\n");
    return 1;
  }
  if (!transcript_identity) {
    std::fprintf(stderr,
                 "GATE FAILED: session transcripts or fleet reports "
                 "diverged\n");
    return 1;
  }
  if (!overrun_present) {
    std::fprintf(stderr, "GATE FAILED: no day overran its boundary\n");
    return 1;
  }
  if (sessions_served == 0) {
    std::fprintf(stderr, "GATE FAILED: no sessions dispatched\n");
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
