// E3 — Fig. 2: the four-step interactive exploration of the Scholarly LD.
// Reproduces the step sequence (Cluster Schema -> class focus -> expansion
// -> full Schema Summary), reporting the node counts and instance-coverage
// percentages each partial view shows to the user, plus per-step layout
// latency (what the browser would spend before painting).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "hbold/hbold.h"
#include "workload/scholarly.h"

namespace {

struct Fixture {
  hbold::rdf::TripleStore store;
  hbold::SimClock clock;
  hbold::store::Database db;
  std::unique_ptr<hbold::endpoint::SimulatedRemoteEndpoint> ep;
  std::unique_ptr<hbold::Server> server;
  hbold::schema::SchemaSummary summary;
  hbold::cluster::ClusterSchema clusters;

  static Fixture& Get() {
    static Fixture* fixture = [] {
      auto* f = new Fixture();
      hbold::workload::ScholarlyConfig config;
      hbold::workload::GenerateScholarly(config, &f->store);
      f->ep = std::make_unique<hbold::endpoint::SimulatedRemoteEndpoint>(
          "http://www.scholarlydata.org/sparql", "ScholarlyData", &f->store,
          &f->clock);
      f->server = std::make_unique<hbold::Server>(&f->db, &f->clock);
      f->server->AttachEndpoint(f->ep->url(), f->ep.get());
      hbold::endpoint::EndpointRecord record;
      record.url = f->ep->url();
      f->server->RegisterEndpoint(record);
      auto report = f->server->ProcessEndpoint(f->ep->url());
      if (!report.ok()) {
        std::fprintf(stderr, "pipeline failed\n");
        std::exit(1);
      }
      hbold::Presentation presentation(&f->db);
      f->summary = *presentation.LoadSchemaSummary(f->ep->url());
      f->clusters = *presentation.LoadClusterSchema(f->ep->url());
      return f;
    }();
    return *fixture;
  }
};

void PrintStepTable() {
  Fixture& f = Fixture::Get();
  hbold::ExplorationSession session(f.summary, f.clusters);
  int event = f.summary.FindNode(
      std::string(hbold::workload::kScholarlyNs) + "Event");

  hbold::bench::PrintHeader(
      "E3: Fig. 2 exploration walk over the Scholarly LD");
  std::printf("%-34s %8s %10s %12s\n", "step", "nodes", "coverage",
              "layout ms");
  auto report = [&](const char* name, size_t nodes, double coverage,
                    double ms) {
    std::printf("%-34s %8zu %9.1f%% %12.3f\n", name, nodes, coverage, ms);
  };

  // Step 1: Cluster Schema (force layout over cluster nodes).
  {
    hbold::Stopwatch sw;
    std::vector<hbold::viz::ForceEdge> edges;
    for (const auto& arc : f.clusters.arcs()) {
      edges.push_back({arc.src, arc.dst, 1.0});
    }
    auto pos = hbold::viz::ForceLayout(f.clusters.ClusterCount(), edges, {});
    benchmark::DoNotOptimize(pos);
    report("1: cluster schema", f.clusters.ClusterCount(), 0.0,
           sw.ElapsedMillis());
  }
  // Steps 2-4 over the Schema Summary subgraph.
  struct Step {
    const char* name;
    int kind;  // 1=focus 2=expand 3=all
  };
  for (const Step& step : {Step{"2: select Event", 1},
                           Step{"3: expand Event", 2},
                           Step{"4: full schema summary", 3}}) {
    hbold::Stopwatch sw;
    if (step.kind == 1) session.FocusClass(static_cast<size_t>(event));
    if (step.kind == 2) session.ExpandClass(static_cast<size_t>(event));
    if (step.kind == 3) session.ExpandAll();
    auto edges = session.VisibleEdges();
    auto pos = hbold::viz::ForceLayout(session.VisibleNodeCount(), edges, {});
    benchmark::DoNotOptimize(pos);
    report(step.name, session.VisibleNodeCount(), session.CoveragePercent(),
           sw.ElapsedMillis());
  }
  std::printf(
      "\nshape check: coverage grows monotonically to 100%% and the node\n"
      "count reaches the full Schema Summary, as in Fig. 2.\n");
}

void BM_FocusAndExpand(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  int event = f.summary.FindNode(
      std::string(hbold::workload::kScholarlyNs) + "Event");
  for (auto _ : state) {
    hbold::ExplorationSession session(f.summary, f.clusters);
    session.FocusClass(static_cast<size_t>(event));
    session.ExpandClass(static_cast<size_t>(event));
    benchmark::DoNotOptimize(session.CoveragePercent());
  }
}
BENCHMARK(BM_FocusAndExpand);

void BM_ExpandAllAndLayout(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    hbold::ExplorationSession session(f.summary, f.clusters);
    session.ExpandAll();
    auto pos = hbold::viz::ForceLayout(session.VisibleNodeCount(),
                                       session.VisibleEdges(), {});
    benchmark::DoNotOptimize(pos);
  }
}
BENCHMARK(BM_ExpandAllAndLayout);

}  // namespace

int main(int argc, char** argv) {
  PrintStepTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
