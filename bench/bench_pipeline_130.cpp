// E10 — §5: "H-BOLD has been tested on 130 Big LD showing good
// performances." Runs the complete server pipeline (index extraction with
// pattern strategies -> Schema Summary -> Louvain -> Cluster Schema ->
// document-store persist) over a 130-endpoint fleet with realistic
// size/dialect diversity, and reports per-stage latency percentiles and
// fleet-level throughput.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "hbold/hbold.h"

int main() {
  using hbold::bench::Percentile;

  hbold::SimClock clock;
  hbold::store::Database db;
  hbold::Server server(&db, &clock);

  hbold::bench::FleetOptions options;
  options.size = 130;
  options.min_classes = 5;
  options.max_classes = 120;
  options.max_instances_per_class = 30;
  auto fleet = hbold::bench::BuildFleet(options, &clock);
  hbold::bench::AttachFleet(&fleet, &server);

  hbold::bench::PrintHeader("E10: full pipeline over the 130-endpoint fleet");
  hbold::Stopwatch wall;
  std::vector<double> extract_ms, summary_ms, cluster_ms, persist_ms;
  std::vector<double> classes, clusters;
  size_t ok = 0, failed = 0;
  size_t by_strategy[3] = {0, 0, 0};
  for (const auto& member : fleet) {
    auto report = server.ProcessEndpoint(member.url);
    if (!report.ok()) {
      ++failed;
      continue;
    }
    ++ok;
    extract_ms.push_back(report->extraction_ms);
    summary_ms.push_back(report->summary_ms);
    cluster_ms.push_back(report->cluster_ms);
    persist_ms.push_back(report->persist_ms);
    classes.push_back(static_cast<double>(report->classes));
    clusters.push_back(static_cast<double>(report->clusters));
    if (report->extraction.strategy_used == "direct-aggregation") {
      ++by_strategy[0];
    } else if (report->extraction.strategy_used == "per-class-count") {
      ++by_strategy[1];
    } else {
      ++by_strategy[2];
    }
  }
  double total_s = wall.ElapsedMillis() / 1000.0;

  std::printf("endpoints: %zu ok, %zu failed; wall time %.1f s (%.1f "
              "endpoints/s)\n\n",
              ok, failed, total_s, static_cast<double>(ok) / total_s);
  std::printf("strategy mix: direct-aggregation=%zu per-class-count=%zu "
              "paginated-scan=%zu\n\n",
              by_strategy[0], by_strategy[1], by_strategy[2]);
  std::printf("%-28s %10s %10s %10s\n", "stage", "p50", "p95", "max");
  auto row = [](const char* name, std::vector<double> v) {
    std::printf("%-28s %10.2f %10.2f %10.2f\n", name, Percentile(v, 50),
                Percentile(v, 95), Percentile(v, 100));
  };
  row("extraction (simulated ms)", extract_ms);
  row("schema summary (ms)", summary_ms);
  row("community detection (ms)", cluster_ms);
  row("persist (ms)", persist_ms);
  std::printf("\nschema sizes: p50=%.0f p95=%.0f classes; cluster schemas: "
              "p50=%.0f p95=%.0f clusters\n",
              Percentile(classes, 50), Percentile(classes, 95),
              Percentile(clusters, 50), Percentile(clusters, 95));
  std::printf(
      "\nshape check: all reachable endpoints index successfully (\"good\n"
      "performances\" on 130 LD); extraction dominates the pipeline, which\n"
      "is why §3.2 moves everything else server-side and precomputes.\n");
  return ok > 0 && failed == 0 ? 0 : 1;
}
