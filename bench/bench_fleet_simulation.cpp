// Fleet simulation bench + gate: a multi-day, multi-server H-BOLD fleet
// (sharded registry, shared pool, daily cycles chained as events on one
// sim::EventLoop, seeded churn, availability flapping) versus the 1-shard
// sequential run of the same seeded world.
//
// Emits machine-readable BENCH_fleet_simulation.json and exits nonzero
// when a gate fails:
//   - shard-count invariance: the merged FleetReport's canonical history
//     is byte-identical across {1, 2, 4} shards (always enforced);
//   - wall-clock: the 4-shard fleet beats the sequential run >= 3x (only
//     enforced when the machine has >= 4 hardware threads, like
//     bench_query_fastpath's wall gate).
//
//   ./build/bench_fleet_simulation [num_endpoints] [days]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/logging.h"
#include "endpoint/simulated_endpoint.h"
#include "hbold/fleet.h"
#include "hbold/sim_options.h"
#include "sim/event_loop.h"
#include "workload/ld_generator.h"

namespace {

using hbold::Fleet;
using hbold::FleetReport;
using hbold::Json;
using hbold::SimulationOptions;
using hbold::Stopwatch;

constexpr size_t kLatentEndpoints = 4;
constexpr uint64_t kChurnSeed = 99;
constexpr double kDeathProbability = 0.02;

std::string UrlOf(size_t i) {
  return "http://fleet" + std::to_string(i) + ".example.org/sparql";
}

/// Immutable per-endpoint data, shared by every configuration's run.
std::vector<std::unique_ptr<hbold::rdf::TripleStore>> BuildStores(
    size_t count) {
  std::vector<std::unique_ptr<hbold::rdf::TripleStore>> stores;
  stores.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    auto store = std::make_unique<hbold::rdf::TripleStore>();
    hbold::workload::SyntheticLdConfig config;
    config.namespace_iri =
        "http://fleet" + std::to_string(i) + ".example.org/";
    config.num_classes = 5 + (i * 37) % 56;  // deterministic size spread
    config.num_domains = 2 + config.num_classes / 12;
    config.max_instances_per_class = 25;
    config.seed = 5000 + i;
    hbold::workload::GenerateSyntheticLd(config, store.get());
    stores.push_back(std::move(store));
  }
  return stores;
}

/// One full simulation of the seeded world under a deployment shape.
/// Endpoints are rebuilt per run because they bind to the run's clock.
struct RunResult {
  FleetReport report;
  double wall_ms = 0;
};

RunResult RunWorld(
    const std::vector<std::unique_ptr<hbold::rdf::TripleStore>>& stores,
    int shards, int fleet_workers, int parallelism, int64_t days) {
  // The primary time API: an explicit event loop owning the run's clock.
  hbold::sim::EventLoop loop;
  const hbold::SimClock* clock = loop.clock();
  const size_t base = stores.size() - kLatentEndpoints;
  std::vector<std::unique_ptr<hbold::endpoint::SimulatedRemoteEndpoint>>
      endpoints;
  endpoints.reserve(stores.size());
  for (size_t i = 0; i < stores.size(); ++i) {
    hbold::endpoint::Dialect dialect = hbold::endpoint::Dialect::Full();
    switch (i % 5) {
      case 1:
        dialect = hbold::endpoint::Dialect::NoGroupBy();
        break;
      case 2:
        dialect = hbold::endpoint::Dialect::NoAggregates();
        break;
      case 3:
        dialect = hbold::endpoint::Dialect::RowCapped(2000);
        break;
      default:
        break;
    }
    hbold::endpoint::AvailabilityModel availability;
    if (i % 6 == 5) {
      // Flappers: §3.1's "might work again after 1 or 2 days", seeded so
      // every deployment sees the same outage calendar.
      availability.uptime = 0.7;
      availability.seed = 31 + i;
    }
    endpoints.push_back(
        std::make_unique<hbold::endpoint::SimulatedRemoteEndpoint>(
            UrlOf(i), "Fleet " + std::to_string(i), stores[i].get(), clock,
            dialect, availability));
  }

  SimulationOptions options;
  options.num_shards = shards;
  // Per-shard pipeline fan-out rides the same shared pool the shard
  // cycles run on, so real scheduling is work-conserving at pipeline
  // granularity — an unlucky shard-hash imbalance cannot serialize the
  // wall clock behind one overloaded shard.
  options.parallelism = parallelism;
  options.query_batch_width = 1;
  options.fleet_workers = static_cast<size_t>(fleet_workers);
  options.churn.death_probability = kDeathProbability;
  options.churn.seed = kChurnSeed;
  Fleet fleet(&loop, options.ToFleetOptions());

  for (size_t i = 0; i < base; ++i) {
    hbold::endpoint::EndpointRecord record;
    record.url = UrlOf(i);
    record.name = endpoints[i]->name();
    fleet.RegisterEndpoint(record);
    if (i + 1 < base) {  // the last base endpoint has no route
      fleet.AttachEndpoint(UrlOf(i), endpoints[i].get());
    }
  }
  for (size_t i = base; i < stores.size(); ++i) {
    hbold::endpoint::EndpointRecord record;
    record.url = UrlOf(i);
    record.name = endpoints[i]->name();
    int64_t day = fleet.churn().ArrivalDayFor(UrlOf(i), 1,
                                              std::max<int64_t>(1, days - 2));
    fleet.churn().ScheduleArrival(day, std::move(record), endpoints[i].get());
  }

  RunResult result;
  Stopwatch wall;
  result.report = fleet.RunSimulation(days);
  result.wall_ms = wall.ElapsedMillis();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  hbold::Logger::set_threshold(hbold::LogLevel::kWarn);
  const size_t num_endpoints =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 48;
  const int64_t days = argc > 2 ? std::atoll(argv[2]) : 8;

  auto stores = BuildStores(num_endpoints + kLatentEndpoints);
  std::printf("=== fleet simulation: %zu endpoints (+%zu churned in), "
              "%lld days ===\n",
              num_endpoints, kLatentEndpoints,
              static_cast<long long>(days));

  // Sequential anchor: 1 shard, 1 worker, fully inline.
  RunResult seq = RunWorld(stores, /*shards=*/1, /*fleet_workers=*/1,
                           /*parallelism=*/1, days);
  const std::string canonical = seq.report.CanonicalDump();

  // Shard-count invariance (the determinism gate) and the 4-shard
  // wall-clock measurement. Best-of-2 on the timed configs: shared CI
  // runners have noisy neighbors.
  RunResult two = RunWorld(stores, 2, 2, 2, days);
  bool invariant = two.report.CanonicalDump() == canonical;
  RunResult sharded = RunWorld(stores, 4, 4, 4, days);
  invariant = invariant && sharded.report.CanonicalDump() == canonical;
  double seq_wall = seq.wall_ms;
  double sharded_wall = sharded.wall_ms;
  {
    RunResult seq2 = RunWorld(stores, 1, 1, 1, days);
    seq_wall = std::min(seq_wall, seq2.wall_ms);
    RunResult sharded2 = RunWorld(stores, 4, 4, 4, days);
    invariant = invariant && sharded2.report.CanonicalDump() == canonical;
    sharded_wall = std::min(sharded_wall, sharded2.wall_ms);
  }

  std::printf("%-10s %10s %10s %10s %10s %12s %14s\n", "day", "due", "ok",
              "failed", "arrived", "died", "sim makespan");
  double total_makespan = 0;
  size_t total_due = 0, total_failed = 0, arrivals = 0, deaths = 0;
  for (const hbold::FleetDayReport& day : seq.report.days) {
    std::printf("%-10lld %10zu %10zu %10zu %10zu %12zu %12.1f ms\n",
                static_cast<long long>(day.day), day.due, day.succeeded,
                day.failed, day.arrivals, day.deaths, day.fleet_makespan_ms);
    total_makespan += day.fleet_makespan_ms;
    total_due += day.due;
    total_failed += day.failed;
    arrivals += day.arrivals;
    deaths += day.deaths;
  }

  double speedup = sharded_wall > 0 ? seq_wall / sharded_wall : 0;
  unsigned cores = std::thread::hardware_concurrency();
  bool gate_wallclock = cores >= 4;
  std::printf(
      "\nsequential %.1f ms vs 4-shard fleet %.1f ms => %.2fx real "
      "wall-clock (%u cores%s)\n",
      seq_wall, sharded_wall, speedup, cores,
      gate_wallclock ? "" : "; <4 cores, 3x gate reported but not enforced");
  std::printf("canonical history %s across {1,2,4} shards (fingerprint %s)\n",
              invariant ? "IDENTICAL" : "DIVERGED",
              seq.report.Fingerprint().c_str());

  Json report = Json::MakeObject();
  report.Set("endpoints", static_cast<int64_t>(num_endpoints));
  report.Set("churned_in", static_cast<int64_t>(arrivals));
  report.Set("deaths", static_cast<int64_t>(deaths));
  report.Set("days", static_cast<int64_t>(days));
  report.Set("total_due", static_cast<int64_t>(total_due));
  report.Set("total_failed", static_cast<int64_t>(total_failed));
  report.Set("fingerprint", seq.report.Fingerprint());
  report.Set("sim_total_makespan_ms", total_makespan);
  report.Set("sequential_wall_ms", seq_wall);
  report.Set("sharded_wall_ms", sharded_wall);
  report.Set("speedup", speedup);
  report.Set("cores", static_cast<int64_t>(cores));
  report.Set("gate_enforced", gate_wallclock);
  Json gates = Json::MakeObject();
  gates.Set("shard_count_invariance", invariant);
  gates.Set("speedup_3x", !gate_wallclock || speedup >= 3.0);
  report.Set("gates", std::move(gates));
  report.Set("fleet", sharded.report.ToJson());

  std::ofstream out("BENCH_fleet_simulation.json");
  out << report.Dump(2) << "\n";
  out.close();
  std::printf("wrote BENCH_fleet_simulation.json\n");

  if (!invariant) {
    std::fprintf(stderr,
                 "GATE FAILED: canonical history diverged across shard "
                 "counts\n");
    return 1;
  }
  if (gate_wallclock && speedup < 3.0) {
    std::fprintf(stderr, "GATE FAILED: 4-shard speedup %.2fx < 3x\n",
                 speedup);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
