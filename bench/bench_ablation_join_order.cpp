// Ablation A1 — SPARQL join ordering. The executor reorders triple
// patterns greedily by bound-position selectivity before evaluating a
// basic graph pattern; this bench quantifies what that buys on the
// H-BOLD extraction workload (per-class property queries) and on
// hand-written worst-case orders.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "sparql/executor.h"
#include "workload/ld_generator.h"
#include "workload/scholarly.h"

namespace {

struct Fixture {
  hbold::rdf::TripleStore store;
  std::string ns;

  static Fixture& Get() {
    static Fixture* fixture = [] {
      auto* f = new Fixture();
      hbold::workload::SyntheticLdConfig config;
      config.num_classes = 20;
      config.max_instances_per_class = 120;
      config.seed = 21;
      hbold::workload::GenerateSyntheticLd(config, &f->store);
      f->ns = config.namespace_iri;
      return f;
    }();
    return *fixture;
  }
};

/// Queries written selective-pattern-last, the shape users (and query
/// generators) produce all the time.
std::vector<std::pair<const char*, std::string>> WorstCaseQueries() {
  const std::string& ns = Fixture::Get().ns;
  return {
      {"property scan then class",
       "SELECT ?s WHERE { ?s ?p ?o . ?s a <" + ns + "class/C0> . }"},
      {"triangle join",
       "SELECT ?a ?b WHERE { ?a ?p ?b . ?b a <" + ns + "class/C1> . ?a a <" +
           ns + "class/C0> . }"},
      {"chain with late anchors",
       "SELECT ?a WHERE { ?a ?p ?b . ?b ?q ?c . ?c a <" + ns +
           "class/C2> . ?a a <" + ns + "class/C0> . }"},
  };
}

void PrintTable() {
  Fixture& f = Fixture::Get();
  hbold::sparql::Executor greedy(&f.store);
  hbold::sparql::ExecOptions naive_opt;
  naive_opt.greedy_join_order = false;
  hbold::sparql::Executor naive(&f.store, naive_opt);

  hbold::bench::PrintHeader(
      "A1: BGP join ordering ablation (greedy selectivity vs written order)");
  std::printf("%-28s %16s %16s %9s\n", "query", "greedy bindings",
              "naive bindings", "ratio");
  for (const auto& [name, q] : WorstCaseQueries()) {
    hbold::sparql::ExecStats gs, ns_;
    auto a = greedy.Execute(q, &gs);
    auto b = naive.Execute(q, &ns_);
    if (!a.ok() || !b.ok()) {
      std::printf("%-28s FAILED\n", name);
      continue;
    }
    std::printf("%-28s %16zu %16zu %8.1fx\n", name, gs.intermediate_bindings,
                ns_.intermediate_bindings,
                static_cast<double>(ns_.intermediate_bindings) /
                    static_cast<double>(gs.intermediate_bindings));
  }
  std::printf("\nshape check: both orders return identical rows (tested);\n"
              "greedy ordering cuts intermediate bindings by an order of\n"
              "magnitude on selective-pattern-last queries, which is what\n"
              "keeps index extraction affordable on big sources.\n");
}

void BM_GreedyOrder(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  hbold::sparql::Executor executor(&f.store);
  const std::string q = WorstCaseQueries()[static_cast<size_t>(
                            state.range(0))].second;
  for (auto _ : state) {
    auto r = executor.Execute(q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GreedyOrder)->Arg(0)->Arg(1)->Arg(2);

void BM_NaiveOrder(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  hbold::sparql::ExecOptions opt;
  opt.greedy_join_order = false;
  hbold::sparql::Executor executor(&f.store, opt);
  const std::string q = WorstCaseQueries()[static_cast<size_t>(
                            state.range(0))].second;
  for (auto _ : state) {
    auto r = executor.Execute(q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NaiveOrder)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
