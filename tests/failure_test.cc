// Failure-injection tests: corrupt persisted data, unreachable/flapping
// endpoints mid-pipeline, degenerate layout inputs, and recovery behavior.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "hbold/hbold.h"
#include "viz/circle_pack.h"
#include "viz/sunburst.h"
#include "viz/treemap.h"
#include "workload/ld_generator.h"

namespace hbold {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- store

TEST(StoreFailureTest, CorruptJsonlFileFailsLoad) {
  fs::path dir = fs::temp_directory_path() / "hbold_failure_corrupt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "broken.jsonl");
    out << "{\"_id\":1,\"ok\":true}\n";
    out << "{{{{ not json\n";
  }
  store::Database db;
  auto st = db.LoadFromDirectory(dir.string());
  EXPECT_FALSE(st.ok());
  fs::remove_all(dir);
}

TEST(StoreFailureTest, SaveToUnwritablePathFails) {
  store::Database db;
  db.GetCollection("x");
  EXPECT_FALSE(db.SaveToDirectory("/proc/definitely/not/writable").ok());
}

TEST(StoreFailureTest, LoadedCollectionKeepsWorkingAfterFailedLoad) {
  store::Collection c("x");
  ASSERT_TRUE(c.Insert(*Json::Parse(R"({"k":1})")).ok());
  // Failed reload leaves the collection in a defined (replaced or
  // unchanged) state; inserts must still work.
  (void)c.LoadJsonl("garbage\n");
  EXPECT_TRUE(c.Insert(*Json::Parse(R"({"k":2})")).ok());
}

// ---------------------------------------------------------------- presentation

TEST(PresentationFailureTest, MalformedStoredDocumentFailsDecode) {
  store::Database db;
  store::Collection* summaries = db.GetCollection(kSummariesCollection);
  Json bad = Json::MakeObject();
  bad.Set("endpoint_url", "http://broken/sparql");
  // Arc references a node that does not exist.
  Json nodes = Json::MakeArray();
  bad.Set("nodes", std::move(nodes));
  Json arcs = Json::MakeArray();
  Json arc = Json::MakeObject();
  arc.Set("src", 3);
  arc.Set("dst", 1);
  arc.Set("iri", "http://x/p");
  arc.Set("count", 1);
  arcs.Append(std::move(arc));
  bad.Set("arcs", std::move(arcs));
  ASSERT_TRUE(summaries->Insert(std::move(bad)).ok());

  Presentation pres(&db);
  auto summary = pres.LoadSchemaSummary("http://broken/sparql");
  EXPECT_FALSE(summary.ok());
}

// ---------------------------------------------------------------- pipeline

class PipelineFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SyntheticLdConfig config;
    config.num_classes = 6;
    config.max_instances_per_class = 20;
    workload::GenerateSyntheticLd(config, &data_);
    server_ = std::make_unique<Server>(&db_, &clock_);
  }
  rdf::TripleStore data_;
  SimClock clock_;
  store::Database db_;
  std::unique_ptr<Server> server_;
};

TEST_F(PipelineFailureTest, EndpointDownOnProcessingDayRecoversNextDay) {
  endpoint::AvailabilityModel avail;
  avail.forced_outage_days = {0};
  auto ep = std::make_unique<endpoint::SimulatedRemoteEndpoint>(
      "http://x/sparql", "x", &data_, &clock_, endpoint::Dialect::Full(),
      avail);
  server_->AttachEndpoint(ep->url(), ep.get());
  endpoint::EndpointRecord record;
  record.url = ep->url();
  server_->RegisterEndpoint(record);

  auto day0 = server_->ProcessEndpoint(ep->url());
  EXPECT_FALSE(day0.ok());
  EXPECT_TRUE(day0.status().IsUnavailable());
  // Nothing was persisted for the failed endpoint.
  EXPECT_EQ(db_.GetCollection(kSummariesCollection)->size(), 0u);

  clock_.AdvanceDays(1);
  auto day1 = server_->ProcessEndpoint(ep->url());
  ASSERT_TRUE(day1.ok()) << day1.status();
  EXPECT_EQ(db_.GetCollection(kSummariesCollection)->size(), 1u);
}

TEST_F(PipelineFailureTest, FailureDoesNotClobberPreviousGoodArtifacts) {
  endpoint::AvailabilityModel avail;
  avail.forced_outage_days = {7};
  auto ep = std::make_unique<endpoint::SimulatedRemoteEndpoint>(
      "http://x/sparql", "x", &data_, &clock_, endpoint::Dialect::Full(),
      avail);
  server_->AttachEndpoint(ep->url(), ep.get());
  endpoint::EndpointRecord record;
  record.url = ep->url();
  server_->RegisterEndpoint(record);

  ASSERT_TRUE(server_->ProcessEndpoint(ep->url()).ok());
  clock_.AdvanceDays(7);
  EXPECT_FALSE(server_->ProcessEndpoint(ep->url()).ok());
  // The day-0 artifacts are still served.
  Presentation pres(&db_);
  EXPECT_TRUE(pres.LoadSchemaSummary(ep->url()).ok());
  EXPECT_TRUE(pres.LoadClusterSchema(ep->url()).ok());
  // And the registry reflects both the old success and the new failure.
  const endpoint::EndpointRecord* rec = server_->registry().Find(ep->url());
  EXPECT_EQ(rec->last_success_day, 0);
  EXPECT_EQ(rec->last_attempt_day, 7);
  EXPECT_TRUE(rec->last_attempt_failed);
}

TEST_F(PipelineFailureTest, DailyUpdateIsolatesPerEndpointFailures) {
  // One good endpoint, one with no route: the good one must still index.
  auto good = std::make_unique<endpoint::SimulatedRemoteEndpoint>(
      "http://good/sparql", "good", &data_, &clock_);
  server_->AttachEndpoint(good->url(), good.get());
  endpoint::EndpointRecord g;
  g.url = good->url();
  server_->RegisterEndpoint(g);
  endpoint::EndpointRecord dead;
  dead.url = "http://dead/sparql";
  server_->RegisterEndpoint(dead);

  DailyReport report = server_->RunDailyUpdate();
  EXPECT_EQ(report.due, 2u);
  EXPECT_EQ(report.succeeded, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(server_->registry().IndexedCount(), 1u);
}

// ---------------------------------------------------------------- layouts

TEST(LayoutDegenerateTest, TreemapZeroAreaBounds) {
  viz::Hierarchy h{"r", 0, {{"a", 5, {}}, {"b", 3, {}}}};
  auto cells = viz::TreemapLayout(h, viz::Rect{0, 0, 0, 0}, {});
  // Root cell emitted; no crash, no NaN rects.
  ASSERT_FALSE(cells.empty());
  for (const auto& c : cells) {
    EXPECT_EQ(c.rect.w, c.rect.w);  // not NaN
    EXPECT_EQ(c.rect.h, c.rect.h);
  }
}

TEST(LayoutDegenerateTest, TreemapPaddingLargerThanRect) {
  viz::Hierarchy h{"r", 0, {{"a", 5, {}}}};
  viz::TreemapOptions opt;
  opt.padding = 500;
  auto cells = viz::TreemapLayout(h, viz::Rect{0, 0, 100, 100}, opt);
  ASSERT_FALSE(cells.empty());
}

TEST(LayoutDegenerateTest, SunburstSingleLevel) {
  viz::Hierarchy h{"r", 0, {{"a", 5, {}}, {"b", 5, {}}}};
  auto slices = viz::SunburstLayout(h, {});
  EXPECT_EQ(slices.size(), 2u);
}

TEST(LayoutDegenerateTest, CirclePackSingleLeaf) {
  viz::Hierarchy h{"solo", 9, {}};
  viz::CirclePackOptions opt;
  opt.radius = 100;
  auto circles = viz::CirclePackLayout(h, opt);
  ASSERT_EQ(circles.size(), 1u);
  EXPECT_NEAR(circles[0].circle.r, 100, 1e-6);
}

TEST(LayoutDegenerateTest, PackSiblingsHandlesEqualRadii) {
  std::vector<double> radii(20, 5.0);
  auto pos = viz::PackSiblings(radii);
  ASSERT_EQ(pos.size(), 20u);
  for (size_t i = 0; i < pos.size(); ++i) {
    for (size_t j = i + 1; j < pos.size(); ++j) {
      EXPECT_GE(viz::Distance(pos[i], pos[j]), 10.0 - 1e-6);
    }
  }
}

// ---------------------------------------------------------------- registry

TEST(RegistryFailureTest, LoadJsonResetsPreviousContent) {
  endpoint::EndpointRegistry reg;
  endpoint::EndpointRecord r;
  r.url = "http://old";
  reg.Add(r);
  Json fresh = Json::MakeArray();
  Json rec = Json::MakeObject();
  rec.Set("url", "http://new");
  fresh.Append(std::move(rec));
  ASSERT_TRUE(reg.LoadJson(fresh).ok());
  EXPECT_FALSE(reg.Contains("http://old"));
  EXPECT_TRUE(reg.Contains("http://new"));
}

TEST(RegistryFailureTest, GarbledIncrementalFieldsDegradeInsteadOfFailing) {
  // A hand-edited (or bit-rotted) registry file with unparseable probe
  // state must still load: the endpoint degrades to full refresh, and
  // fields this build does not know about survive a round trip.
  const char* kCorrupt = R"([{
    "url": "http://corrupt.example.org/sparql",
    "name": "corrupt",
    "indexed": true,
    "probed_generation": "0xNOPE",
    "class_fingerprints": {
      "http://corrupt.example.org/C0": "zz-not-hex",
      "http://corrupt.example.org/C1": 7
    },
    "trust_state": "weird-state",
    "future_field": {"keep": ["me"]}
  }])";
  auto parsed = Json::Parse(kCorrupt);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  endpoint::EndpointRegistry reg;
  ASSERT_TRUE(reg.LoadJson(*parsed).ok());
  auto rec = reg.GetRecord("http://corrupt.example.org/sparql");
  ASSERT_TRUE(rec.has_value());
  // Garbled probe state is dropped wholesale, never half-trusted.
  EXPECT_TRUE(rec->probed_generation.empty());
  EXPECT_TRUE(rec->class_fingerprints.empty());
  EXPECT_EQ(rec->trust_state, endpoint::TrustState::kTrusted);
  EXPECT_EQ(rec->unknown_fields.count("future_field"), 1u);
  EXPECT_NE(reg.ToJson().Dump().find("future_field"), std::string::npos);
}

TEST(RegistryFailureTest, HandCorruptedRecordFallsBackToFullRefresh) {
  const std::string url = "http://corrupt.example.org/sparql";
  SimClock clock;
  store::Database db;
  ServerOptions options;
  options.refresh_age_days = 1;
  options.incremental.mode = IncrementalMode::kDelta;
  Server server(&db, &clock, options);

  rdf::TripleStore data;
  workload::SyntheticLdConfig config;
  config.namespace_iri = "http://corrupt.example.org/";
  config.num_classes = 6;
  config.max_instances_per_class = 20;
  workload::GenerateSyntheticLd(config, &data);
  endpoint::SimulatedRemoteEndpoint ep(url, "corrupt", &data, &clock);
  server.AttachEndpoint(url, &ep);
  endpoint::EndpointRecord record;
  record.url = url;
  server.RegisterEndpoint(record);

  ASSERT_TRUE(server.ProcessEndpoint(url).ok());
  clock.AdvanceDays(1);
  auto day1 = server.ProcessEndpoint(url);
  ASSERT_TRUE(day1.ok()) << day1.status();
  ASSERT_TRUE(day1->probe_skipped);  // quiet store: probe-skip works

  // An operator hand-edits the persisted registry and garbles the probe
  // state for this endpoint.
  auto corrupted = Json::Parse(R"([{
    "url": "http://corrupt.example.org/sparql",
    "name": "corrupt",
    "indexed": true,
    "probed_generation": "not-hex-at-all",
    "class_fingerprints": {"http://corrupt.example.org/C0": false}
  }])");
  ASSERT_TRUE(corrupted.ok());
  ASSERT_TRUE(server.registry().LoadJson(*corrupted).ok());

  // Next cycle: the degraded record forces a clean full refresh rather
  // than trusting (or crashing on) the corrupt fingerprints.
  clock.AdvanceDays(1);
  auto day2 = server.ProcessEndpoint(url);
  ASSERT_TRUE(day2.ok()) << day2.status();
  EXPECT_FALSE(day2->probe_skipped);
  EXPECT_FALSE(day2->delta_extracted);
  // The rebuilt probe state is trusted again afterwards.
  auto rec = server.registry().GetRecord(url);
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(rec->class_fingerprints.empty());
}

// ------------------------------------------------------- adversarial probes

TEST(ProbeRetryTest, TransientProbeFlapRetriesThenDegradesToFull) {
  const std::string url = "http://flap.example.org/sparql";
  SimClock clock;
  store::Database db;
  ServerOptions options;
  options.refresh_age_days = 1;
  options.incremental.mode = IncrementalMode::kDelta;
  Server server(&db, &clock, options);

  rdf::TripleStore data;
  workload::SyntheticLdConfig config;
  config.namespace_iri = "http://flap.example.org/";
  config.num_classes = 6;
  config.max_instances_per_class = 20;
  workload::GenerateSyntheticLd(config, &data);
  endpoint::ProbeFaultModel faults;
  faults.transient_failure_probability = 1.0;  // every attempt times out
  faults.seed = 5;
  endpoint::SimulatedRemoteEndpoint ep(url, "flap", &data, &clock,
                                       endpoint::Dialect::Full(), {}, {}, {},
                                       faults);
  server.AttachEndpoint(url, &ep);
  endpoint::EndpointRecord record;
  record.url = url;
  server.RegisterEndpoint(record);

  for (int64_t day = 0; day < 2; ++day) {
    if (day > 0) clock.AdvanceDays(1);
    auto r = server.ProcessEndpoint(url);
    ASSERT_TRUE(r.ok()) << "day " << day << ": " << r.status();
    // The probe was retried up to the cap, then the day degraded to a
    // probe-less full extraction instead of failing outright.
    EXPECT_FALSE(r->probed);
    EXPECT_EQ(r->probe_retries,
              static_cast<size_t>(options.incremental.max_probe_retries));
    EXPECT_FALSE(r->probe_skipped);
    EXPECT_FALSE(r->delta_extracted);
  }
  auto rec = server.registry().GetRecord(url);
  ASSERT_TRUE(rec.has_value());
  // Flaky probes are tracked but are not treated as lying: no strikes.
  EXPECT_EQ(rec->probe_failure_streak, 2);
  EXPECT_EQ(rec->trust_state, endpoint::TrustState::kTrusted);
}

/// Forwards everything to a real simulated endpoint but can replay its last
/// honest probe verbatim — the fully deterministic "quiet liar" the trust
/// state machine is exercised against below.
class ScriptedLiarEndpoint : public endpoint::SparqlEndpoint {
 public:
  explicit ScriptedLiarEndpoint(endpoint::SimulatedRemoteEndpoint* inner)
      : inner_(inner) {}
  void set_lying(bool lying) { lying_ = lying; }

  Result<endpoint::QueryOutcome> Query(const std::string& query) override {
    return inner_->Query(query);
  }
  const std::string& url() const override { return inner_->url(); }
  const std::string& name() const override { return inner_->name(); }
  size_t queries_served() const override { return inner_->queries_served(); }
  endpoint::QueryEngineStats engine_stats() const override {
    return inner_->engine_stats();
  }
  void AdvanceDataDay(int64_t day) override { inner_->AdvanceDataDay(day); }
  Result<endpoint::ChangeProbe> ProbeChanges() override {
    auto probe = inner_->ProbeChanges();  // keeps accounting + catch-up
    if (!probe.ok()) return probe;
    if (lying_) return last_honest_;  // "nothing changed since last time"
    last_honest_ = *probe;
    return probe;
  }

 private:
  endpoint::SimulatedRemoteEndpoint* inner_;
  bool lying_ = false;
  endpoint::ChangeProbe last_honest_;
};

TEST(QuarantineLifecycleTest, LyingQuietEndpointIsStruckQuarantinedParoled) {
  const std::string url = "http://liar.example.org/sparql";
  SimClock clock;
  store::Database db;
  ServerOptions options;
  options.refresh_age_days = 1;
  options.incremental.mode = IncrementalMode::kBounded;
  options.incremental.staleness_budget_days = 2;
  options.incremental.quarantine_strikes = 2;
  options.incremental.quarantine_days = 2;
  options.incremental.parole_clean_cycles = 2;
  Server server(&db, &clock, options);

  rdf::TripleStore data;
  workload::SyntheticLdConfig config;
  config.namespace_iri = "http://liar.example.org/";
  config.num_classes = 6;
  config.max_instances_per_class = 20;
  config.seed = 1234;
  workload::GenerateSyntheticLd(config, &data);
  endpoint::MutationModel mutation;
  mutation.daily_churn_fraction = 0.5;  // heavy churn: every day differs
  mutation.hot_class_fraction = 1.0;
  mutation.seed = 887;
  endpoint::SimulatedRemoteEndpoint inner(url, "liar", &data, &clock,
                                          endpoint::Dialect::Full(), {}, {},
                                          mutation);
  ScriptedLiarEndpoint ep(&inner);
  server.AttachEndpoint(url, &ep);
  endpoint::EndpointRecord record;
  record.url = url;
  server.RegisterEndpoint(record);

  auto process = [&](int64_t day) {
    if (day > 0) clock.AdvanceDays(1);
    inner.AdvanceDataDay(day);
    auto r = server.ProcessEndpoint(url);
    EXPECT_TRUE(r.ok()) << "day " << day << ": " << r.status();
    return r.ok() ? *r : PipelineReport{};
  };
  auto trust = [&] { return server.registry().GetRecord(url)->trust_state; };

  // Day 0: honest first contact — full extraction, fingerprints stored.
  PipelineReport d0 = process(0);
  EXPECT_FALSE(d0.probe_skipped);
  EXPECT_EQ(trust(), endpoint::TrustState::kTrusted);
  EXPECT_EQ(server.registry().GetRecord(url)->last_full_refresh_day, 0);

  ep.set_lying(true);
  // Day 1: the probe replays day 0. Inside the staleness budget the lie
  // buys a (wrong) probe-skip — exactly the drift window kBounded bounds.
  PipelineReport d1 = process(1);
  EXPECT_TRUE(d1.probe_skipped);
  EXPECT_EQ(d1.staleness_days, 1);

  // Day 2: budget exhausted -> forced refresh finds the content changed
  // behind the quiet probe -> strike one, trusted -> suspect.
  PipelineReport d2 = process(2);
  EXPECT_TRUE(d2.forced_refresh);
  EXPECT_TRUE(d2.probe_mismatch);
  EXPECT_EQ(d2.staleness_days, 2);
  EXPECT_EQ(trust(), endpoint::TrustState::kSuspect);
  EXPECT_EQ(server.registry().GetRecord(url)->suspect_strikes, 1);
  // The strike voids the (lying) probe state.
  EXPECT_TRUE(server.registry().GetRecord(url)->class_fingerprints.empty());

  // Day 3: no stored fingerprints, so everything is dirty -> plain full
  // refresh; the lie is indistinguishable from churn, no new strike.
  PipelineReport d3 = process(3);
  EXPECT_FALSE(d3.probe_mismatch);
  EXPECT_EQ(trust(), endpoint::TrustState::kSuspect);

  // Day 4: the replayed probe matches the fingerprints it planted on day
  // 3; a suspect endpoint never probe-skips, so the full extraction
  // catches the quiet lie again -> strike two -> quarantined.
  PipelineReport d4 = process(4);
  EXPECT_FALSE(d4.probe_skipped);
  EXPECT_TRUE(d4.probe_mismatch);
  EXPECT_TRUE(d4.quarantine_entered);
  EXPECT_EQ(trust(), endpoint::TrustState::kQuarantined);
  EXPECT_EQ(server.registry().GetRecord(url)->quarantine_until_day, 6);

  ep.set_lying(false);  // the endpoint comes clean
  // Day 5: still quarantined -> unconditional forced full refresh.
  PipelineReport d5 = process(5);
  EXPECT_TRUE(d5.quarantined);
  EXPECT_TRUE(d5.forced_refresh);
  EXPECT_EQ(trust(), endpoint::TrustState::kQuarantined);

  // Day 6: quarantine served and a clean full refresh landed -> paroled
  // back to suspect.
  PipelineReport d6 = process(6);
  EXPECT_TRUE(d6.quarantine_exited);
  EXPECT_EQ(trust(), endpoint::TrustState::kSuspect);

  // Days 7-8: two divergence-free cycles walk suspect back to trusted.
  process(7);
  EXPECT_EQ(trust(), endpoint::TrustState::kSuspect);
  process(8);
  EXPECT_EQ(trust(), endpoint::TrustState::kTrusted);
  EXPECT_EQ(server.registry().GetRecord(url)->suspect_strikes, 0);
}

TEST(AdaptiveStalenessTest, LifetimeStrikesTightenTheBudget) {
  const std::string url = "http://repeat-liar.example.org/sparql";
  SimClock clock;
  store::Database db;
  ServerOptions options;
  options.refresh_age_days = 1;
  options.incremental.mode = IncrementalMode::kBounded;
  options.incremental.staleness_budget_days = 3;
  options.incremental.strike_budget_penalty_days = 1;
  options.incremental.min_staleness_budget_days = 1;
  options.incremental.quarantine_strikes = 10;  // stay out of quarantine
  options.incremental.parole_clean_cycles = 1;
  Server server(&db, &clock, options);

  rdf::TripleStore data;
  workload::SyntheticLdConfig config;
  config.namespace_iri = "http://repeat-liar.example.org/";
  config.num_classes = 6;
  config.max_instances_per_class = 20;
  config.seed = 4321;
  workload::GenerateSyntheticLd(config, &data);
  endpoint::MutationModel mutation;
  mutation.daily_churn_fraction = 0.5;
  mutation.hot_class_fraction = 1.0;
  mutation.seed = 119;
  endpoint::SimulatedRemoteEndpoint inner(url, "repeat-liar", &data, &clock,
                                          endpoint::Dialect::Full(), {}, {},
                                          mutation);
  ScriptedLiarEndpoint ep(&inner);
  server.AttachEndpoint(url, &ep);
  endpoint::EndpointRecord record;
  record.url = url;
  server.RegisterEndpoint(record);

  auto process = [&](int64_t day) {
    if (day > 0) clock.AdvanceDays(1);
    inner.AdvanceDataDay(day);
    auto r = server.ProcessEndpoint(url);
    EXPECT_TRUE(r.ok()) << "day " << day << ": " << r.status();
    return r.ok() ? *r : PipelineReport{};
  };
  auto lifetime = [&] {
    return server.registry().GetRecord(url)->lifetime_strikes;
  };

  // First offense: quiet lies ride the FULL configured budget — the
  // forced re-verification lands at staleness 3.
  process(0);
  ep.set_lying(true);
  PipelineReport first_forced;
  int64_t day = 1;
  for (; day <= 4; ++day) {
    PipelineReport r = process(day);
    if (r.forced_refresh) {
      first_forced = r;
      break;
    }
  }
  EXPECT_EQ(first_forced.staleness_days, 3) << "clean history, full budget";
  EXPECT_TRUE(first_forced.probe_mismatch);
  EXPECT_EQ(lifetime(), 1);

  // Walk back to trusted on honest cycles (parole resets suspect strikes
  // but the lifetime strike survives), then re-arm the quiet lie.
  ep.set_lying(false);
  process(++day);
  process(++day);
  EXPECT_EQ(server.registry().GetRecord(url)->trust_state,
            endpoint::TrustState::kTrusted);
  EXPECT_EQ(lifetime(), 1) << "lifetime strikes survive parole";

  // Second offense: the carried strike tightened the effective budget to
  // max(1, 3 - 1*1) = 2 — the forced refresh now lands at staleness 2.
  ep.set_lying(true);
  PipelineReport second_forced;
  const int64_t last_honest_day = day;
  for (day = last_honest_day + 1; day <= last_honest_day + 4; ++day) {
    PipelineReport r = process(day);
    if (r.forced_refresh) {
      second_forced = r;
      break;
    }
  }
  EXPECT_EQ(second_forced.staleness_days, 2)
      << "one lifetime strike must shave one day off the budget";
  EXPECT_TRUE(second_forced.probe_mismatch);
  EXPECT_EQ(lifetime(), 2);
}

TEST(AdaptiveStalenessTest, CleanStreaksDecayLifetimeStrikes) {
  const std::string url = "http://reformed.example.org/sparql";
  SimClock clock;
  store::Database db;
  ServerOptions options;
  options.refresh_age_days = 1;
  options.incremental.mode = IncrementalMode::kBounded;
  options.incremental.staleness_budget_days = 2;
  options.incremental.strike_budget_penalty_days = 1;
  options.incremental.quarantine_strikes = 10;
  options.incremental.parole_clean_cycles = 8;  // stay suspect throughout
  options.incremental.strike_decay_clean_cycles = 2;
  Server server(&db, &clock, options);

  rdf::TripleStore data;
  workload::SyntheticLdConfig config;
  config.namespace_iri = "http://reformed.example.org/";
  config.num_classes = 6;
  config.max_instances_per_class = 20;
  config.seed = 777;
  workload::GenerateSyntheticLd(config, &data);
  endpoint::MutationModel mutation;
  mutation.daily_churn_fraction = 0.5;
  mutation.hot_class_fraction = 1.0;
  mutation.seed = 333;
  endpoint::SimulatedRemoteEndpoint inner(url, "reformed", &data, &clock,
                                          endpoint::Dialect::Full(), {}, {},
                                          mutation);
  ScriptedLiarEndpoint ep(&inner);
  server.AttachEndpoint(url, &ep);
  endpoint::EndpointRecord record;
  record.url = url;
  server.RegisterEndpoint(record);

  auto process = [&](int64_t day) {
    if (day > 0) clock.AdvanceDays(1);
    inner.AdvanceDataDay(day);
    auto r = server.ProcessEndpoint(url);
    EXPECT_TRUE(r.ok()) << "day " << day << ": " << r.status();
    return r.ok() ? *r : PipelineReport{};
  };
  auto rec = [&] { return *server.registry().GetRecord(url); };

  // Earn one strike: honest first contact, then quiet lies until the
  // budget forces a re-verification that catches the divergence.
  process(0);
  ep.set_lying(true);
  int64_t day = 1;
  for (; day <= 3; ++day) {
    if (process(day).forced_refresh) break;
  }
  ASSERT_EQ(rec().lifetime_strikes, 1);
  ASSERT_EQ(rec().clean_streak, 0) << "the strike resets the streak";

  // Come clean: every divergence-free cycle grows the streak, and each
  // full decay interval (2 cycles) forgives one lifetime strike.
  ep.set_lying(false);
  process(++day);
  EXPECT_EQ(rec().lifetime_strikes, 1) << "streak 1: no decay yet";
  process(++day);
  EXPECT_EQ(rec().lifetime_strikes, 0) << "streak 2: one strike forgiven";
  EXPECT_EQ(rec().trust_state, endpoint::TrustState::kSuspect)
      << "decay forgives budget pressure, not parole";
}

TEST(RegistryFailureTest, LifetimeStrikesRoundTripThroughJson) {
  endpoint::EndpointRecord r;
  r.url = "http://strikes.example.org/sparql";
  r.lifetime_strikes = 3;
  endpoint::EndpointRecord back = endpoint::EndpointRecord::FromJson(r.ToJson());
  EXPECT_EQ(back.lifetime_strikes, 3);

  // A zero count is elided from the JSON so pre-existing registry dumps
  // (and their fingerprints) are byte-identical.
  endpoint::EndpointRecord clean;
  clean.url = "http://clean.example.org/sparql";
  EXPECT_EQ(clean.ToJson().Dump().find("lifetime_strikes"), std::string::npos);
  EXPECT_EQ(endpoint::EndpointRecord::FromJson(clean.ToJson()).lifetime_strikes,
            0);
}

}  // namespace
}  // namespace hbold
