// Failure-injection tests: corrupt persisted data, unreachable/flapping
// endpoints mid-pipeline, degenerate layout inputs, and recovery behavior.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "hbold/hbold.h"
#include "viz/circle_pack.h"
#include "viz/sunburst.h"
#include "viz/treemap.h"
#include "workload/ld_generator.h"

namespace hbold {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- store

TEST(StoreFailureTest, CorruptJsonlFileFailsLoad) {
  fs::path dir = fs::temp_directory_path() / "hbold_failure_corrupt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "broken.jsonl");
    out << "{\"_id\":1,\"ok\":true}\n";
    out << "{{{{ not json\n";
  }
  store::Database db;
  auto st = db.LoadFromDirectory(dir.string());
  EXPECT_FALSE(st.ok());
  fs::remove_all(dir);
}

TEST(StoreFailureTest, SaveToUnwritablePathFails) {
  store::Database db;
  db.GetCollection("x");
  EXPECT_FALSE(db.SaveToDirectory("/proc/definitely/not/writable").ok());
}

TEST(StoreFailureTest, LoadedCollectionKeepsWorkingAfterFailedLoad) {
  store::Collection c("x");
  ASSERT_TRUE(c.Insert(*Json::Parse(R"({"k":1})")).ok());
  // Failed reload leaves the collection in a defined (replaced or
  // unchanged) state; inserts must still work.
  (void)c.LoadJsonl("garbage\n");
  EXPECT_TRUE(c.Insert(*Json::Parse(R"({"k":2})")).ok());
}

// ---------------------------------------------------------------- presentation

TEST(PresentationFailureTest, MalformedStoredDocumentFailsDecode) {
  store::Database db;
  store::Collection* summaries = db.GetCollection(kSummariesCollection);
  Json bad = Json::MakeObject();
  bad.Set("endpoint_url", "http://broken/sparql");
  // Arc references a node that does not exist.
  Json nodes = Json::MakeArray();
  bad.Set("nodes", std::move(nodes));
  Json arcs = Json::MakeArray();
  Json arc = Json::MakeObject();
  arc.Set("src", 3);
  arc.Set("dst", 1);
  arc.Set("iri", "http://x/p");
  arc.Set("count", 1);
  arcs.Append(std::move(arc));
  bad.Set("arcs", std::move(arcs));
  ASSERT_TRUE(summaries->Insert(std::move(bad)).ok());

  Presentation pres(&db);
  auto summary = pres.LoadSchemaSummary("http://broken/sparql");
  EXPECT_FALSE(summary.ok());
}

// ---------------------------------------------------------------- pipeline

class PipelineFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SyntheticLdConfig config;
    config.num_classes = 6;
    config.max_instances_per_class = 20;
    workload::GenerateSyntheticLd(config, &data_);
    server_ = std::make_unique<Server>(&db_, &clock_);
  }
  rdf::TripleStore data_;
  SimClock clock_;
  store::Database db_;
  std::unique_ptr<Server> server_;
};

TEST_F(PipelineFailureTest, EndpointDownOnProcessingDayRecoversNextDay) {
  endpoint::AvailabilityModel avail;
  avail.forced_outage_days = {0};
  auto ep = std::make_unique<endpoint::SimulatedRemoteEndpoint>(
      "http://x/sparql", "x", &data_, &clock_, endpoint::Dialect::Full(),
      avail);
  server_->AttachEndpoint(ep->url(), ep.get());
  endpoint::EndpointRecord record;
  record.url = ep->url();
  server_->RegisterEndpoint(record);

  auto day0 = server_->ProcessEndpoint(ep->url());
  EXPECT_FALSE(day0.ok());
  EXPECT_TRUE(day0.status().IsUnavailable());
  // Nothing was persisted for the failed endpoint.
  EXPECT_EQ(db_.GetCollection(kSummariesCollection)->size(), 0u);

  clock_.AdvanceDays(1);
  auto day1 = server_->ProcessEndpoint(ep->url());
  ASSERT_TRUE(day1.ok()) << day1.status();
  EXPECT_EQ(db_.GetCollection(kSummariesCollection)->size(), 1u);
}

TEST_F(PipelineFailureTest, FailureDoesNotClobberPreviousGoodArtifacts) {
  endpoint::AvailabilityModel avail;
  avail.forced_outage_days = {7};
  auto ep = std::make_unique<endpoint::SimulatedRemoteEndpoint>(
      "http://x/sparql", "x", &data_, &clock_, endpoint::Dialect::Full(),
      avail);
  server_->AttachEndpoint(ep->url(), ep.get());
  endpoint::EndpointRecord record;
  record.url = ep->url();
  server_->RegisterEndpoint(record);

  ASSERT_TRUE(server_->ProcessEndpoint(ep->url()).ok());
  clock_.AdvanceDays(7);
  EXPECT_FALSE(server_->ProcessEndpoint(ep->url()).ok());
  // The day-0 artifacts are still served.
  Presentation pres(&db_);
  EXPECT_TRUE(pres.LoadSchemaSummary(ep->url()).ok());
  EXPECT_TRUE(pres.LoadClusterSchema(ep->url()).ok());
  // And the registry reflects both the old success and the new failure.
  const endpoint::EndpointRecord* rec = server_->registry().Find(ep->url());
  EXPECT_EQ(rec->last_success_day, 0);
  EXPECT_EQ(rec->last_attempt_day, 7);
  EXPECT_TRUE(rec->last_attempt_failed);
}

TEST_F(PipelineFailureTest, DailyUpdateIsolatesPerEndpointFailures) {
  // One good endpoint, one with no route: the good one must still index.
  auto good = std::make_unique<endpoint::SimulatedRemoteEndpoint>(
      "http://good/sparql", "good", &data_, &clock_);
  server_->AttachEndpoint(good->url(), good.get());
  endpoint::EndpointRecord g;
  g.url = good->url();
  server_->RegisterEndpoint(g);
  endpoint::EndpointRecord dead;
  dead.url = "http://dead/sparql";
  server_->RegisterEndpoint(dead);

  DailyReport report = server_->RunDailyUpdate();
  EXPECT_EQ(report.due, 2u);
  EXPECT_EQ(report.succeeded, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(server_->registry().IndexedCount(), 1u);
}

// ---------------------------------------------------------------- layouts

TEST(LayoutDegenerateTest, TreemapZeroAreaBounds) {
  viz::Hierarchy h{"r", 0, {{"a", 5, {}}, {"b", 3, {}}}};
  auto cells = viz::TreemapLayout(h, viz::Rect{0, 0, 0, 0}, {});
  // Root cell emitted; no crash, no NaN rects.
  ASSERT_FALSE(cells.empty());
  for (const auto& c : cells) {
    EXPECT_EQ(c.rect.w, c.rect.w);  // not NaN
    EXPECT_EQ(c.rect.h, c.rect.h);
  }
}

TEST(LayoutDegenerateTest, TreemapPaddingLargerThanRect) {
  viz::Hierarchy h{"r", 0, {{"a", 5, {}}}};
  viz::TreemapOptions opt;
  opt.padding = 500;
  auto cells = viz::TreemapLayout(h, viz::Rect{0, 0, 100, 100}, opt);
  ASSERT_FALSE(cells.empty());
}

TEST(LayoutDegenerateTest, SunburstSingleLevel) {
  viz::Hierarchy h{"r", 0, {{"a", 5, {}}, {"b", 5, {}}}};
  auto slices = viz::SunburstLayout(h, {});
  EXPECT_EQ(slices.size(), 2u);
}

TEST(LayoutDegenerateTest, CirclePackSingleLeaf) {
  viz::Hierarchy h{"solo", 9, {}};
  viz::CirclePackOptions opt;
  opt.radius = 100;
  auto circles = viz::CirclePackLayout(h, opt);
  ASSERT_EQ(circles.size(), 1u);
  EXPECT_NEAR(circles[0].circle.r, 100, 1e-6);
}

TEST(LayoutDegenerateTest, PackSiblingsHandlesEqualRadii) {
  std::vector<double> radii(20, 5.0);
  auto pos = viz::PackSiblings(radii);
  ASSERT_EQ(pos.size(), 20u);
  for (size_t i = 0; i < pos.size(); ++i) {
    for (size_t j = i + 1; j < pos.size(); ++j) {
      EXPECT_GE(viz::Distance(pos[i], pos[j]), 10.0 - 1e-6);
    }
  }
}

// ---------------------------------------------------------------- registry

TEST(RegistryFailureTest, LoadJsonResetsPreviousContent) {
  endpoint::EndpointRegistry reg;
  endpoint::EndpointRecord r;
  r.url = "http://old";
  reg.Add(r);
  Json fresh = Json::MakeArray();
  Json rec = Json::MakeObject();
  rec.Set("url", "http://new");
  fresh.Append(std::move(rec));
  ASSERT_TRUE(reg.LoadJson(fresh).ok());
  EXPECT_FALSE(reg.Contains("http://old"));
  EXPECT_TRUE(reg.Contains("http://new"));
}

}  // namespace
}  // namespace hbold
