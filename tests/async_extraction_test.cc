// Differential concurrency suite for the intra-pipeline async query
// layer: QueryBatch semantics (order, politeness, nesting, abort),
// bit-identical daily-cycle reports and store contents across parallelism
// and batching settings, speculative pagination equivalence, mid-batch
// failure injection, and batched crawls.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "extraction/strategies.h"
#include "hbold/hbold.h"
#include "workload/ld_generator.h"
#include "workload/metadata_repo.h"
#include "workload/portal_generator.h"

namespace hbold {
namespace {

using endpoint::ProbeBatch;
using endpoint::QueryBatch;
using endpoint::QueryBatchOptions;
using endpoint::QueryJob;
using endpoint::QueryOutcome;
using endpoint::SimulatedRemoteEndpoint;
using extraction::ExtractionContext;
using extraction::ExtractionReport;

// ------------------------------------------------------------ helpers

/// Delegating endpoint that tracks the number of in-flight queries, for
/// asserting the politeness cap.
class InFlightCountingEndpoint : public endpoint::SparqlEndpoint {
 public:
  explicit InFlightCountingEndpoint(endpoint::SparqlEndpoint* inner)
      : inner_(inner) {}

  Result<QueryOutcome> Query(const std::string& query_text) override {
    int now = ++in_flight_;
    int seen = max_in_flight_.load();
    while (now > seen && !max_in_flight_.compare_exchange_weak(seen, now)) {
    }
    auto outcome = inner_->Query(query_text);
    --in_flight_;
    return outcome;
  }

  const std::string& url() const override { return inner_->url(); }
  const std::string& name() const override { return inner_->name(); }
  size_t queries_served() const override { return inner_->queries_served(); }

  int max_in_flight() const { return max_in_flight_.load(); }

 private:
  endpoint::SparqlEndpoint* inner_;
  std::atomic<int> in_flight_{0};
  std::atomic<int> max_in_flight_{0};
};

/// Delegating endpoint that fails every query containing `marker` — a
/// *content*-keyed failure, so which batch job fails (and therefore the
/// deterministic-accounting prefix) does not depend on thread timing.
class PoisonedEndpoint : public endpoint::SparqlEndpoint {
 public:
  PoisonedEndpoint(endpoint::SparqlEndpoint* inner, std::string marker,
                   Status failure)
      : inner_(inner), marker_(std::move(marker)), failure_(failure) {}

  Result<QueryOutcome> Query(const std::string& query_text) override {
    if (query_text.find(marker_) != std::string::npos) return failure_;
    return inner_->Query(query_text);
  }

  const std::string& url() const override { return inner_->url(); }
  const std::string& name() const override { return inner_->name(); }
  size_t queries_served() const override { return inner_->queries_served(); }

 private:
  endpoint::SparqlEndpoint* inner_;
  std::string marker_;
  Status failure_;
};

/// Canonical view of one collection's persisted content: endpoint_url ->
/// document dump with the insertion-order-dependent _id normalized away.
/// Parallel cycles insert in nondeterministic order, so _id is the one
/// field allowed to differ between bit-identical runs.
std::map<std::string, std::string> CanonicalCollection(
    const store::Database& db, const std::string& collection) {
  std::map<std::string, std::string> canonical;
  const store::Collection* c = db.FindCollection(collection);
  if (c == nullptr) return canonical;
  for (store::Document doc : c->Snapshot()) {
    std::string url = doc.GetString("endpoint_url");
    doc.Set("_id", 0);
    canonical[url] = doc.Dump();
  }
  return canonical;
}

// ------------------------------------------------------------ QueryBatch

class QueryBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SyntheticLdConfig config;
    config.num_classes = 8;
    config.max_instances_per_class = 20;
    config.seed = 42;
    workload::GenerateSyntheticLd(config, &data_);
    ep_ = std::make_unique<SimulatedRemoteEndpoint>("http://x/sparql", "x",
                                                    &data_, &clock_);
  }

  rdf::TripleStore data_;
  SimClock clock_;
  std::unique_ptr<SimulatedRemoteEndpoint> ep_;
};

TEST_F(QueryBatchTest, OutcomesInSubmissionOrder) {
  // Each query's answer identifies it (COUNT with a distinguishing LIMIT
  // shape would be fragile; use per-class counts which differ per IRI).
  std::vector<std::string> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back("SELECT ?s ?p ?o WHERE { ?s ?p ?o . } LIMIT " +
                      std::to_string(i + 1));
  }
  ThreadPool pool(4);
  QueryBatchOptions options;
  options.pool = &pool;
  options.per_endpoint_limit = 4;
  auto outcomes = QueryBatch::RunOnOne(ep_.get(), queries, options);
  ASSERT_EQ(outcomes.size(), queries.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << i << ": " << outcomes[i].status();
    EXPECT_EQ(outcomes[i]->table.num_rows(), i + 1) << i;
  }
}

TEST_F(QueryBatchTest, WorksWithoutPool) {
  std::vector<std::string> queries(5, "ASK { ?s ?p ?o . }");
  auto outcomes = QueryBatch::RunOnOne(ep_.get(), queries, QueryBatchOptions{});
  ASSERT_EQ(outcomes.size(), 5u);
  for (const auto& outcome : outcomes) EXPECT_TRUE(outcome.ok());
}

TEST_F(QueryBatchTest, PolitenessCapBoundsInFlightQueries) {
  InFlightCountingEndpoint counted(ep_.get());
  std::vector<std::string> queries(32, "SELECT ?s WHERE { ?s a ?c . }");
  ThreadPool pool(8);
  QueryBatchOptions options;
  options.pool = &pool;
  options.per_endpoint_limit = 2;
  auto outcomes = QueryBatch::RunOnOne(&counted, queries, options);
  for (const auto& outcome : outcomes) EXPECT_TRUE(outcome.ok());
  EXPECT_LE(counted.max_in_flight(), 2);
}

TEST_F(QueryBatchTest, NestedSubmissionFromPoolWorkerDoesNotDeadlock) {
  // One worker: the outer task occupies the whole pool, so the inner
  // batch can only finish because the submitting thread runs jobs itself.
  ThreadPool pool(1);
  auto done = pool.Submit([&] {
    std::vector<std::string> queries(6, "ASK { ?s ?p ?o . }");
    QueryBatchOptions options;
    options.pool = &pool;
    options.per_endpoint_limit = 4;
    auto outcomes = QueryBatch::RunOnOne(ep_.get(), queries, options);
    size_t ok = 0;
    for (const auto& outcome : outcomes) ok += outcome.ok() ? 1 : 0;
    return ok;
  });
  EXPECT_EQ(done.get(), 6u);
}

TEST_F(QueryBatchTest, AbortOnFailureKeepsPreFailurePrefixReal) {
  // Poison one known query; everything before it in submission order
  // must carry a real outcome, everything cancelled must come after it.
  PoisonedEndpoint poisoned(ep_.get(), "POISON",
                            Status::Unavailable("injected"));
  std::vector<std::string> queries(24, "ASK { ?s ?p ?o . }");
  const size_t kFail = 9;
  queries[kFail] = "ASK { ?s ?p ?o . } # POISON";
  ThreadPool pool(4);
  QueryBatchOptions options;
  options.pool = &pool;
  options.per_endpoint_limit = 4;
  auto outcomes = QueryBatch::RunOnOne(&poisoned, queries, options);
  ASSERT_EQ(outcomes.size(), queries.size());
  for (size_t i = 0; i < kFail; ++i) {
    EXPECT_TRUE(outcomes[i].ok()) << i << ": " << outcomes[i].status();
  }
  EXPECT_TRUE(outcomes[kFail].status().IsUnavailable());
  for (size_t i = kFail + 1; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].ok() || outcomes[i].status().IsCancelled()) << i;
  }
}

TEST_F(QueryBatchTest, ProbeBatchMixesAnswersAndErrors) {
  endpoint::AvailabilityModel down;
  down.forced_outage_days = {0};
  SimulatedRemoteEndpoint dead("http://dead/sparql", "dead", &data_, &clock_,
                               endpoint::Dialect::Full(), down);
  rdf::TripleStore empty;
  SimulatedRemoteEndpoint hollow("http://empty/sparql", "empty", &empty,
                                 &clock_);
  ThreadPool pool(2);
  QueryBatchOptions options;
  options.pool = &pool;
  auto probes = ProbeBatch({ep_.get(), &dead, &hollow, nullptr}, options);
  ASSERT_EQ(probes.size(), 4u);
  ASSERT_TRUE(probes[0].ok());
  EXPECT_TRUE(*probes[0]);
  EXPECT_TRUE(probes[1].status().IsUnavailable());
  ASSERT_TRUE(probes[2].ok());
  EXPECT_FALSE(*probes[2]);
  EXPECT_TRUE(probes[3].status().IsUnavailable());
}

// ------------------------------------------------- differential cycles

/// A fleet with dialect diversity (every strategy family exercised), one
/// dead member, behind fresh per-test servers.
class AsyncCycleTest : public ::testing::Test {
 protected:
  static constexpr size_t kEndpoints = 8;

  void SetUp() override {
    for (size_t i = 0; i < kEndpoints; ++i) {
      auto store = std::make_unique<rdf::TripleStore>();
      workload::SyntheticLdConfig config;
      config.namespace_iri =
          "http://ld" + std::to_string(i) + ".example.org/";
      config.num_classes = 6 + i * 4;
      config.max_instances_per_class = 25;
      config.seed = 900 + i;
      workload::GenerateSyntheticLd(config, store.get());

      endpoint::Dialect dialect = endpoint::Dialect::Full();
      if (i % 4 == 1) dialect = endpoint::Dialect::NoGroupBy();
      if (i % 4 == 2) dialect = endpoint::Dialect::NoAggregates();
      if (i % 4 == 3) dialect = endpoint::Dialect::RowCapped(64);

      std::string url = config.namespace_iri + "sparql";
      endpoints_.push_back(std::make_unique<SimulatedRemoteEndpoint>(
          url, "LD " + std::to_string(i), store.get(), &clock_, dialect));
      stores_.push_back(std::move(store));
      urls_.push_back(std::move(url));
    }
  }

  /// Server over the fleet; the last endpoint stays unreachable so every
  /// cycle also sees a failure.
  std::unique_ptr<Server> MakeServer(store::Database* db, int parallelism,
                                     int batch_width) {
    ServerOptions options;
    options.parallelism = parallelism;
    options.query_batch_width = batch_width;
    auto server = std::make_unique<Server>(db, &clock_, options);
    for (size_t i = 0; i < kEndpoints; ++i) {
      if (i + 1 < kEndpoints) {
        server->AttachEndpoint(urls_[i], endpoints_[i].get());
      }
      endpoint::EndpointRecord record;
      record.url = urls_[i];
      record.name = endpoints_[i]->name();
      server->RegisterEndpoint(record);
    }
    return server;
  }

  /// Everything that must be bit-identical regardless of parallelism.
  /// makespan_ms is deliberately excluded here: it is a deterministic
  /// function *of* the worker count (2 workers finish the same work
  /// sooner than 1), so it is compared only between runs that share a
  /// parallelism — see ExpectBitIdentical.
  static void ExpectSameWork(const DailyReport& a, const DailyReport& b) {
    EXPECT_EQ(a.due, b.due);
    EXPECT_EQ(a.succeeded, b.succeeded);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.reused, b.reused);
    // Bit-identical, not almost-equal: both runs charge the same
    // per-query latencies in the same submission order.
    EXPECT_EQ(a.sum_latency_ms, b.sum_latency_ms);
    ASSERT_EQ(a.reports.size(), b.reports.size());
    for (size_t i = 0; i < a.reports.size(); ++i) {
      EXPECT_EQ(a.reports[i].url, b.reports[i].url) << i;
      EXPECT_EQ(a.reports[i].classes, b.reports[i].classes) << i;
      EXPECT_EQ(a.reports[i].arcs, b.reports[i].arcs) << i;
      EXPECT_EQ(a.reports[i].clusters, b.reports[i].clusters) << i;
      EXPECT_EQ(a.reports[i].extraction_ms, b.reports[i].extraction_ms) << i;
      EXPECT_EQ(a.reports[i].extraction.queries_issued,
                b.reports[i].extraction.queries_issued)
          << i;
      EXPECT_EQ(a.reports[i].extraction.rows_transferred,
                b.reports[i].extraction.rows_transferred)
          << i;
      EXPECT_EQ(a.reports[i].extraction.strategy_used,
                b.reports[i].extraction.strategy_used)
          << i;
    }
  }

  /// Full bit-identity, duration figures included — for runs that share
  /// a parallelism (batching on/off, repeated runs).
  static void ExpectBitIdentical(const DailyReport& a, const DailyReport& b) {
    ExpectSameWork(a, b);
    EXPECT_EQ(a.parallelism, b.parallelism);
    EXPECT_EQ(a.makespan_ms, b.makespan_ms);
  }

  SimClock clock_;
  std::vector<std::string> urls_;
  std::vector<std::unique_ptr<rdf::TripleStore>> stores_;
  std::vector<std::unique_ptr<SimulatedRemoteEndpoint>> endpoints_;
};

TEST_F(AsyncCycleTest, ReportsBitIdenticalAcrossParallelismAndBatching) {
  store::Database baseline_db;
  DailyReport baseline = MakeServer(&baseline_db, 1, 1)->RunDailyCycle(1);
  EXPECT_EQ(baseline.due, kEndpoints);
  EXPECT_EQ(baseline.failed, 1u);
  EXPECT_EQ(baseline.batched_makespan_ms, baseline.makespan_ms);
  auto baseline_summaries =
      CanonicalCollection(baseline_db, kSummariesCollection);
  auto baseline_clusters =
      CanonicalCollection(baseline_db, kClustersCollection);
  ASSERT_EQ(baseline_summaries.size(), kEndpoints - 1);

  for (int parallelism : {1, 2, 8}) {
    // Per-parallelism reference: batching off at this worker count.
    std::optional<DailyReport> reference;
    for (int width : {1, 4}) {
      SCOPED_TRACE("parallelism=" + std::to_string(parallelism) +
                   " width=" + std::to_string(width));
      store::Database db;
      auto server = MakeServer(&db, parallelism, width);
      DailyReport report = server->RunDailyCycle(parallelism);
      // Work, cost, and artifacts identical across every setting...
      ExpectSameWork(baseline, report);
      EXPECT_EQ(CanonicalCollection(db, kSummariesCollection),
                baseline_summaries);
      EXPECT_EQ(CanonicalCollection(db, kClustersCollection),
                baseline_clusters);
      // ...duration figures identical across batching on/off at a given
      // worker count (makespan_ms is charged from the sequential query
      // stream, so batching must not move it by a single bit).
      if (!reference.has_value()) {
        reference = report;
      } else {
        ExpectBitIdentical(*reference, report);
      }
      // Batching compresses the duration figure, never the cost figure.
      if (width == 1) {
        EXPECT_EQ(report.batched_makespan_ms, report.makespan_ms);
      } else {
        EXPECT_LE(report.batched_makespan_ms, report.makespan_ms);
        EXPECT_GT(report.batched_makespan_ms, 0);
      }
      EXPECT_LE(report.makespan_ms, baseline.makespan_ms);
    }
  }
}

TEST_F(AsyncCycleTest, BatchedCycleDeterministicAcrossRuns) {
  store::Database db_a;
  DailyReport a = MakeServer(&db_a, 8, 4)->RunDailyCycle(8);
  store::Database db_b;
  DailyReport b = MakeServer(&db_b, 8, 4)->RunDailyCycle(8);
  ExpectBitIdentical(a, b);
  EXPECT_EQ(a.batched_makespan_ms, b.batched_makespan_ms);
}

TEST_F(AsyncCycleTest, ReuseDetectionSurvivesBatchedSecondCycle) {
  store::Database db;
  auto server = MakeServer(&db, 4, 4);
  DailyReport first = server->RunDailyCycle(4);
  EXPECT_EQ(first.reused, 0u);
  clock_.AdvanceDays(7);
  DailyReport second = server->RunDailyCycle(4);
  EXPECT_EQ(second.succeeded, kEndpoints - 1);
  EXPECT_EQ(second.reused, kEndpoints - 1);
}

// ------------------------------------------------- strategy-level waves

class StrategyBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SyntheticLdConfig config;
    config.num_classes = 12;
    config.max_instances_per_class = 40;
    config.seed = 7;
    workload::GenerateSyntheticLd(config, &data_);
  }

  /// Extracts with and without batching and asserts summaries and charged
  /// costs are bit-identical; returns the two reports for extra checks.
  template <typename Strategy>
  std::pair<ExtractionReport, ExtractionReport> ExpectEquivalent(
      const Strategy& strategy, endpoint::SparqlEndpoint* ep) {
    ExtractionReport seq_report;
    auto seq = strategy.Extract(ep, ExtractionContext{}, &seq_report);

    ThreadPool pool(4);
    ExtractionContext ctx;
    ctx.pool = &pool;
    ctx.batch_width = 4;
    ExtractionReport batch_report;
    auto batched = strategy.Extract(ep, ctx, &batch_report);

    EXPECT_EQ(seq.ok(), batched.ok());
    if (seq.ok() && batched.ok()) {
      EXPECT_EQ(seq->ToJson().Dump(), batched->ToJson().Dump());
    }
    EXPECT_EQ(seq_report.queries_issued, batch_report.queries_issued);
    EXPECT_EQ(seq_report.rows_transferred, batch_report.rows_transferred);
    EXPECT_EQ(seq_report.total_latency_ms, batch_report.total_latency_ms);
    // Sequential mode reports no overlap at all.
    EXPECT_EQ(seq_report.intra_makespan_ms, seq_report.total_latency_ms);
    EXPECT_LE(batch_report.intra_makespan_ms, batch_report.total_latency_ms);
    return {seq_report, batch_report};
  }

  rdf::TripleStore data_;
  SimClock clock_;
};

TEST_F(StrategyBatchTest, PerClassCountWavesMatchSequential) {
  SimulatedRemoteEndpoint ep("http://x/sparql", "x", &data_, &clock_,
                             endpoint::Dialect::NoGroupBy());
  auto [seq, batched] =
      ExpectEquivalent(extraction::PerClassCountStrategy(), &ep);
  EXPECT_GE(batched.batches_issued, 2u);  // waves 1+2 at least
  // The whole point: overlapping the per-class queries compresses the
  // simulated duration well below the sequential sum.
  EXPECT_LT(batched.intra_makespan_ms, seq.total_latency_ms);
}

TEST_F(StrategyBatchTest, DirectAggregationBatchMatchesSequential) {
  SimulatedRemoteEndpoint ep("http://x/sparql", "x", &data_, &clock_);
  auto [seq, batched] =
      ExpectEquivalent(extraction::DirectAggregationStrategy(), &ep);
  EXPECT_GE(batched.batches_issued, 1u);
  EXPECT_LT(batched.intra_makespan_ms, seq.total_latency_ms);
}

TEST_F(StrategyBatchTest, SpeculativePaginationMatchesSequential) {
  // Page size far below the data volume: both passes page many times, so
  // the speculative waves (and their discard-at-terminal logic) run.
  SimulatedRemoteEndpoint ep("http://x/sparql", "x", &data_, &clock_,
                             endpoint::Dialect::NoAggregates());
  auto [seq, batched] =
      ExpectEquivalent(extraction::PaginatedScanStrategy(32), &ep);
  EXPECT_GE(batched.batches_issued, 2u);
  EXPECT_LT(batched.intra_makespan_ms, seq.total_latency_ms);
}

TEST_F(StrategyBatchTest, RowCappedPaginationFallsBackIdentically) {
  // Every page comes back truncated below the LIMIT: the speculative
  // walk must drop to sequential paging and still charge the identical
  // logical stream.
  SimulatedRemoteEndpoint ep("http://x/sparql", "x", &data_, &clock_,
                             endpoint::Dialect::RowCapped(20));
  ExpectEquivalent(extraction::PaginatedScanStrategy(32), &ep);
}

// ------------------------------------------------- failure injection

class BatchFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SyntheticLdConfig config;
    config.num_classes = 10;
    config.max_instances_per_class = 20;
    config.seed = 11;
    workload::GenerateSyntheticLd(config, &data_);
    ep_ = std::make_unique<SimulatedRemoteEndpoint>(
        "http://x/sparql", "x", &data_, &clock_,
        endpoint::Dialect::NoGroupBy());
    // A marker class from the middle of the canonical class list, so the
    // poison lands mid-batch rather than on the head queries.
    extraction::ExtractionReport report;
    auto clean = extraction::PerClassCountStrategy().Extract(
        ep_.get(), extraction::ExtractionContext{}, &report);
    ASSERT_TRUE(clean.ok()) << clean.status();
    ASSERT_GE(clean->classes.size(), 4u);
    marker_ = clean->classes[clean->classes.size() / 2].iri;
  }

  rdf::TripleStore data_;
  SimClock clock_;
  std::unique_ptr<SimulatedRemoteEndpoint> ep_;
  std::string marker_;
};

TEST_F(BatchFailureTest, MidBatchTimeoutAbortsCleanlyAndDeterministically) {
  PoisonedEndpoint poisoned(ep_.get(), marker_, Status::Timeout("injected"));
  ThreadPool pool(4);
  ExtractionContext ctx;
  ctx.pool = &pool;
  ctx.batch_width = 4;

  ExtractionReport first;
  auto a = extraction::PerClassCountStrategy().Extract(&poisoned, ctx,
                                                       &first);
  ASSERT_FALSE(a.ok());
  EXPECT_TRUE(a.status().IsTimeout());
  // The batch spent real (simulated) money before aborting, and the
  // charge is reproducible run over run.
  EXPECT_GT(first.total_latency_ms, 0);
  ExtractionReport second;
  auto b = extraction::PerClassCountStrategy().Extract(&poisoned, ctx,
                                                       &second);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(first.total_latency_ms, second.total_latency_ms);
  EXPECT_EQ(first.queries_issued, second.queries_issued);
  EXPECT_EQ(first.intra_makespan_ms, second.intra_makespan_ms);

  // And matches what the sequential abort would have charged.
  ExtractionReport sequential;
  auto c = extraction::PerClassCountStrategy().Extract(
      &poisoned, ExtractionContext{}, &sequential);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(first.total_latency_ms, sequential.total_latency_ms);
  EXPECT_EQ(first.queries_issued, sequential.queries_issued);
}

TEST_F(BatchFailureTest, MidBatchFailureLeavesNoPartialSummary) {
  // Unavailable (unlike Timeout) does not fall through to the next
  // strategy, so the pipeline fails outright mid-extraction.
  PoisonedEndpoint poisoned(ep_.get(), marker_,
                            Status::Unavailable("injected"));
  store::Database db;
  ServerOptions options;
  options.parallelism = 2;
  options.query_batch_width = 4;
  Server server(&db, &clock_, options);
  server.AttachEndpoint(poisoned.url(), &poisoned);
  endpoint::EndpointRecord record;
  record.url = poisoned.url();
  server.RegisterEndpoint(record);

  DailyReport report = server.RunDailyUpdate();
  EXPECT_EQ(report.due, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.succeeded, 0u);
  // Accrued latency of the aborted attempt is still charged to the
  // cycle's ledger...
  EXPECT_GT(report.sum_latency_ms, 0);
  EXPECT_GT(report.makespan_ms, 0);
  // ...but nothing partial was persisted.
  const store::Collection* summaries = db.FindCollection(kSummariesCollection);
  EXPECT_TRUE(summaries == nullptr || summaries->size() == 0);
  const store::Collection* clusters = db.FindCollection(kClustersCollection);
  EXPECT_TRUE(clusters == nullptr || clusters->size() == 0);
  // Registry bookkeeping recorded the failed attempt.
  const endpoint::EndpointRecord* rec = server.registry().Find(poisoned.url());
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->last_attempt_failed);
}

// ------------------------------------------------- batched crawls

TEST(BatchedCrawlTest, CrawlAllMatchesSequentialCrawls) {
  SimClock clock;
  constexpr size_t kPortals = 3;
  std::vector<rdf::TripleStore> catalogs(kPortals);
  std::vector<std::unique_ptr<SimulatedRemoteEndpoint>> portals;
  std::vector<PortalTarget> targets;
  for (size_t p = 0; p < kPortals; ++p) {
    workload::PortalConfig config;
    config.portal_name = "portal" + std::to_string(p);
    config.namespace_iri =
        "http://portal" + std::to_string(p) + ".example.org/";
    config.total_datasets = 40;
    for (size_t i = 0; i < 5 + p; ++i) {
      config.sparql_urls.push_back("http://p" + std::to_string(p) + "-ld" +
                                   std::to_string(i) + ".example.org/sparql");
    }
    // One URL shared across all portals, to exercise dedup order.
    config.sparql_urls.push_back("http://shared.example.org/sparql");
    workload::GeneratePortalCatalog(config, &catalogs[p]);
    portals.push_back(std::make_unique<SimulatedRemoteEndpoint>(
        config.namespace_iri + "sparql", config.portal_name, &catalogs[p],
        &clock));
    targets.push_back(PortalTarget{config.portal_name, portals.back().get()});
  }

  endpoint::EndpointRegistry sequential_registry;
  PortalCrawler sequential(&sequential_registry);
  std::vector<PortalCrawlResult> expected;
  for (const PortalTarget& target : targets) {
    auto result = sequential.Crawl(target.name, target.endpoint, 0);
    ASSERT_TRUE(result.ok()) << result.status();
    expected.push_back(*result);
  }

  endpoint::EndpointRegistry batched_registry;
  PortalCrawler batched(&batched_registry);
  ThreadPool pool(4);
  QueryBatchOptions options;
  options.pool = &pool;
  options.per_endpoint_limit = 2;
  auto results = batched.CrawlAll(targets, 0, options);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t p = 0; p < results.size(); ++p) {
    ASSERT_TRUE(results[p].ok()) << results[p].status();
    EXPECT_EQ(results[p]->portal_name, expected[p].portal_name);
    EXPECT_EQ(results[p]->datasets_matched, expected[p].datasets_matched);
    EXPECT_EQ(results[p]->distinct_urls, expected[p].distinct_urls);
    EXPECT_EQ(results[p]->already_known, expected[p].already_known);
    EXPECT_EQ(results[p]->newly_added, expected[p].newly_added);
  }
  // Same records, same insertion order.
  auto seq_records = sequential_registry.Snapshot();
  auto batch_records = batched_registry.Snapshot();
  ASSERT_EQ(seq_records.size(), batch_records.size());
  for (size_t i = 0; i < seq_records.size(); ++i) {
    EXPECT_EQ(seq_records[i].url, batch_records[i].url) << i;
  }
}

TEST(BatchedCrawlTest, CrawlAllIsolatesDeadPortal) {
  SimClock clock;
  rdf::TripleStore catalog;
  workload::PortalConfig config;
  config.namespace_iri = "http://alive.example.org/";
  config.total_datasets = 10;
  config.sparql_urls.push_back("http://found.example.org/sparql");
  workload::GeneratePortalCatalog(config, &catalog);
  SimulatedRemoteEndpoint alive("http://alive.example.org/sparql", "alive",
                                &catalog, &clock);
  endpoint::AvailabilityModel outage;
  outage.forced_outage_days = {0};
  SimulatedRemoteEndpoint dead("http://dead.example.org/sparql", "dead",
                               &catalog, &clock, endpoint::Dialect::Full(),
                               outage);

  endpoint::EndpointRegistry registry;
  PortalCrawler crawler(&registry);
  ThreadPool pool(2);
  QueryBatchOptions options;
  options.pool = &pool;
  auto results = crawler.CrawlAll(
      {PortalTarget{"dead", &dead}, PortalTarget{"alive", &alive}}, 0,
      options);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status().IsUnavailable());
  ASSERT_TRUE(results[1].ok()) << results[1].status();
  EXPECT_EQ(results[1]->newly_added, 1u);
  EXPECT_TRUE(registry.Contains("http://found.example.org/sparql"));
}

TEST(BatchedCrawlTest, MetadataCrawlAllMatchesSequential) {
  SimClock clock;
  constexpr size_t kRepos = 2;
  std::vector<rdf::TripleStore> stores(kRepos);
  std::vector<std::unique_ptr<SimulatedRemoteEndpoint>> repos;
  std::vector<MetadataRepositoryTarget> targets;
  for (size_t r = 0; r < kRepos; ++r) {
    std::vector<workload::MetadataEntry> entries;
    for (size_t i = 0; i < 8; ++i) {
      entries.push_back(workload::MetadataEntry{
          "http://meta" + std::to_string(r) + "-" + std::to_string(i) +
              ".example.org/sparql",
          i % 2 == 0 ? 0.95 : 0.40});
    }
    workload::GenerateMetadataRepository(
        entries, "http://repo" + std::to_string(r) + ".example.org/",
        &stores[r]);
    repos.push_back(std::make_unique<SimulatedRemoteEndpoint>(
        "http://repo" + std::to_string(r) + ".example.org/sparql",
        "repo" + std::to_string(r), &stores[r], &clock));
    targets.push_back(
        MetadataRepositoryTarget{repos.back()->name(), repos.back().get()});
  }

  endpoint::EndpointRegistry seq_registry;
  MetadataRepositoryCrawler sequential(&seq_registry);
  std::vector<MetadataCrawlResult> expected;
  for (const MetadataRepositoryTarget& target : targets) {
    auto result = sequential.Crawl(target.name, target.endpoint, 0.5, 0);
    ASSERT_TRUE(result.ok()) << result.status();
    expected.push_back(*result);
  }

  endpoint::EndpointRegistry batch_registry;
  MetadataRepositoryCrawler batched(&batch_registry);
  ThreadPool pool(4);
  QueryBatchOptions options;
  options.pool = &pool;
  options.per_endpoint_limit = 2;
  auto results = batched.CrawlAll(targets, 0.5, 0, options);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t r = 0; r < results.size(); ++r) {
    ASSERT_TRUE(results[r].ok()) << results[r].status();
    EXPECT_EQ(results[r]->endpoints_listed, expected[r].endpoints_listed);
    EXPECT_EQ(results[r]->above_threshold, expected[r].above_threshold);
    EXPECT_EQ(results[r]->newly_added, expected[r].newly_added);
  }
  EXPECT_EQ(seq_registry.size(), batch_registry.size());
}

}  // namespace
}  // namespace hbold
