// Integration tests for src/hbold: server pipeline, presentation layer,
// exploration sessions (Fig. 2), visual querying, portal crawler (§3.3),
// manual insertion (§3.4), and the daily update cycle (§3.1).

#include <gtest/gtest.h>

#include <memory>

#include "hbold/hbold.h"
#include "sparql/parser.h"
#include "workload/ld_generator.h"
#include "workload/portal_generator.h"
#include "workload/scholarly.h"

namespace hbold {
namespace {

using endpoint::Dialect;
using endpoint::EndpointRecord;
using endpoint::EndpointSource;
using endpoint::SimulatedRemoteEndpoint;

/// Fixture: one scholarly endpoint attached to a server.
class HboldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::ScholarlyConfig config;
    config.conferences = 2;
    config.people = 60;
    config.organisations = 10;
    workload::GenerateScholarly(config, &scholarly_store_);
    scholarly_ep_ = std::make_unique<SimulatedRemoteEndpoint>(
        kUrl, "ScholarlyData", &scholarly_store_, &clock_);
    server_ = std::make_unique<Server>(&db_, &clock_);
    server_->AttachEndpoint(kUrl, scholarly_ep_.get());
    EndpointRecord record;
    record.url = kUrl;
    record.name = "ScholarlyData";
    server_->RegisterEndpoint(record);
  }

  static constexpr const char* kUrl = "http://scholarly.example.org/sparql";

  rdf::TripleStore scholarly_store_;
  SimClock clock_;
  store::Database db_;
  std::unique_ptr<SimulatedRemoteEndpoint> scholarly_ep_;
  std::unique_ptr<Server> server_;
};

// ---------------------------------------------------------------- Server

TEST_F(HboldTest, PipelinePersistsBothArtifacts) {
  auto report = server_->ProcessEndpoint(kUrl);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->extraction.strategy_used, "direct-aggregation");
  EXPECT_GT(report->classes, 8u);
  EXPECT_GT(report->arcs, 5u);
  EXPECT_GT(report->clusters, 1u);
  EXPECT_LT(report->clusters, report->classes);
  EXPECT_GT(report->extraction_ms, 0);

  EXPECT_EQ(db_.FindCollection(kSummariesCollection)->size(), 1u);
  EXPECT_EQ(db_.FindCollection(kClustersCollection)->size(), 1u);
  // Registry bookkeeping updated.
  const EndpointRecord* rec = server_->registry().Find(kUrl);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->indexed);
  EXPECT_EQ(rec->last_success_day, 0);
}

TEST_F(HboldTest, ReprocessingReplacesStoredDocuments) {
  ASSERT_TRUE(server_->ProcessEndpoint(kUrl).ok());
  clock_.AdvanceDays(8);
  ASSERT_TRUE(server_->ProcessEndpoint(kUrl).ok());
  EXPECT_EQ(db_.FindCollection(kSummariesCollection)->size(), 1u);
  EXPECT_EQ(db_.FindCollection(kClustersCollection)->size(), 1u);
  const EndpointRecord* rec = server_->registry().Find(kUrl);
  EXPECT_EQ(rec->last_success_day, 8);
}

TEST_F(HboldTest, UnknownUrlIsUnavailableAndRecorded) {
  EndpointRecord record;
  record.url = "http://nowhere/sparql";
  server_->RegisterEndpoint(record);
  auto report = server_->ProcessEndpoint("http://nowhere/sparql");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsUnavailable());
  const EndpointRecord* rec = server_->registry().Find("http://nowhere/sparql");
  EXPECT_TRUE(rec->last_attempt_failed);
  EXPECT_FALSE(rec->indexed);
}

TEST_F(HboldTest, DailyUpdateFollowsScheduler) {
  DailyReport day0 = server_->RunDailyUpdate();
  EXPECT_EQ(day0.due, 1u);
  EXPECT_EQ(day0.succeeded, 1u);
  // Nothing due tomorrow (fresh success).
  clock_.AdvanceDays(1);
  DailyReport day1 = server_->RunDailyUpdate();
  EXPECT_EQ(day1.due, 0u);
  // Due again after the 7-day refresh age.
  clock_.AdvanceDays(6);
  DailyReport day7 = server_->RunDailyUpdate();
  EXPECT_EQ(day7.due, 1u);
}

TEST_F(HboldTest, RegistryPersistRoundTrip) {
  ASSERT_TRUE(server_->ProcessEndpoint(kUrl).ok());
  ASSERT_TRUE(server_->PersistRegistry().ok());
  Server other(&db_, &clock_);
  ASSERT_TRUE(other.LoadRegistry().ok());
  const EndpointRecord* rec = other.registry().Find(kUrl);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->indexed);
}

// ---------------------------------------------------------------- Presentation

TEST_F(HboldTest, ListDatasetsReflectsStore) {
  Presentation pres(&db_);
  EXPECT_TRUE(pres.ListDatasets().empty());
  ASSERT_TRUE(server_->ProcessEndpoint(kUrl).ok());
  auto datasets = pres.ListDatasets();
  ASSERT_EQ(datasets.size(), 1u);
  EXPECT_EQ(datasets[0].url, kUrl);
  EXPECT_GT(datasets[0].classes, 8u);
  EXPECT_GT(datasets[0].total_instances, 100u);
  EXPECT_EQ(datasets[0].extracted_day, 0);
}

TEST_F(HboldTest, LoadPathsAgreeWithComputePath) {
  ASSERT_TRUE(server_->ProcessEndpoint(kUrl).ok());
  Presentation pres(&db_);
  double load_ms = -1;
  auto stored = pres.LoadClusterSchema(kUrl, &load_ms);
  ASSERT_TRUE(stored.ok()) << stored.status();
  EXPECT_GE(load_ms, 0);
  double compute_ms = -1;
  auto on_the_fly = pres.ComputeClusterSchemaOnTheFly(kUrl, &compute_ms);
  ASSERT_TRUE(on_the_fly.ok()) << on_the_fly.status();
  // Louvain is deterministic, so both paths yield the same clustering.
  EXPECT_EQ(stored->ToJson().Dump(), on_the_fly->ToJson().Dump());
}

TEST_F(HboldTest, MissingDatasetIsNotFound) {
  Presentation pres(&db_);
  EXPECT_TRUE(pres.LoadSchemaSummary("http://none").status().IsNotFound());
  EXPECT_TRUE(pres.LoadClusterSchema("http://none").status().IsNotFound());
  ASSERT_TRUE(server_->ProcessEndpoint(kUrl).ok());
  EXPECT_TRUE(pres.LoadSchemaSummary("http://other").status().IsNotFound());
}

// ---------------------------------------------------------------- Fig. 2 session

TEST_F(HboldTest, ExplorationWalkMatchesFig2Steps) {
  ASSERT_TRUE(server_->ProcessEndpoint(kUrl).ok());
  Presentation pres(&db_);
  auto summary = pres.LoadSchemaSummary(kUrl);
  auto clusters = pres.LoadClusterSchema(kUrl);
  ASSERT_TRUE(summary.ok() && clusters.ok());

  ExplorationSession session(*summary, *clusters);
  // Step 1: Cluster Schema view, nothing focused yet.
  EXPECT_EQ(session.VisibleNodeCount(), 0u);
  EXPECT_DOUBLE_EQ(session.CoveragePercent(), 0.0);

  // Step 2: select the Event class within its cluster.
  int event = summary->FindNode(std::string(workload::kScholarlyNs) + "Event");
  ASSERT_GE(event, 0);
  session.FocusClass(static_cast<size_t>(event));
  EXPECT_EQ(session.VisibleNodeCount(), 1u);
  double coverage_step2 = session.CoveragePercent();
  EXPECT_GT(coverage_step2, 0.0);
  EXPECT_LT(coverage_step2, 100.0);

  // Step 3: expand the Event class — coverage and node count grow.
  session.ExpandClass(static_cast<size_t>(event));
  EXPECT_GT(session.VisibleNodeCount(), 1u);
  double coverage_step3 = session.CoveragePercent();
  EXPECT_GE(coverage_step3, coverage_step2);

  // Step 4: full Schema Summary.
  session.ExpandAll();
  EXPECT_EQ(session.VisibleNodeCount(), session.TotalNodeCount());
  EXPECT_NEAR(session.CoveragePercent(), 100.0, 1e-9);

  // The visible subgraph is renderable.
  auto edges = session.VisibleEdges();
  EXPECT_EQ(edges.size(), summary->ArcCount());
  session.Reset();
  EXPECT_EQ(session.VisibleNodeCount(), 0u);
}

TEST_F(HboldTest, ExpandRequiresVisibility) {
  ASSERT_TRUE(server_->ProcessEndpoint(kUrl).ok());
  Presentation pres(&db_);
  auto summary = pres.LoadSchemaSummary(kUrl);
  auto clusters = pres.LoadClusterSchema(kUrl);
  ASSERT_TRUE(summary.ok() && clusters.ok());
  ExplorationSession session(*summary, *clusters);
  session.ExpandClass(0);  // not visible: no-op
  EXPECT_EQ(session.VisibleNodeCount(), 0u);
  session.FocusClass(summary->NodeCount() + 5);  // out of range: no-op
  EXPECT_EQ(session.VisibleNodeCount(), 0u);
}

// ---------------------------------------------------------------- VisualQuery

TEST_F(HboldTest, VisualQueryGeneratesAndRuns) {
  ASSERT_TRUE(server_->ProcessEndpoint(kUrl).ok());
  Presentation pres(&db_);
  auto summary = pres.LoadSchemaSummary(kUrl);
  ASSERT_TRUE(summary.ok());

  int person =
      summary->FindNode(std::string(workload::kScholarlyNs) + "Person");
  ASSERT_GE(person, 0);

  VisualQuery vq(*summary);
  std::string person_var = vq.SelectClass(static_cast<size_t>(person));
  EXPECT_FALSE(person_var.empty());

  // Follow the affiliation arc Person -> Organisation.
  const schema::PropertyArc* affiliation = nullptr;
  for (const schema::PropertyArc& arc : summary->arcs()) {
    if (arc.src == static_cast<size_t>(person) &&
        arc.iri.find("hasAffiliation") != std::string::npos) {
      affiliation = &arc;
    }
  }
  ASSERT_NE(affiliation, nullptr);
  std::string org_var = vq.FollowArc(*affiliation);
  EXPECT_FALSE(org_var.empty());
  vq.SetLimit(10);

  std::string sparql = vq.GenerateSparql();
  EXPECT_NE(sparql.find("SELECT DISTINCT"), std::string::npos);
  EXPECT_NE(sparql.find("hasAffiliation"), std::string::npos);

  auto result = vq.Execute(scholarly_ep_.get());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->table.num_rows(), 0u);
  EXPECT_LE(result->table.num_rows(), 10u);
}

TEST_F(HboldTest, VisualQueryAttributeAndFilter) {
  ASSERT_TRUE(server_->ProcessEndpoint(kUrl).ok());
  Presentation pres(&db_);
  auto summary = pres.LoadSchemaSummary(kUrl);
  ASSERT_TRUE(summary.ok());
  int person =
      summary->FindNode(std::string(workload::kScholarlyNs) + "Person");
  ASSERT_GE(person, 0);

  VisualQuery vq(*summary);
  std::string var = vq.SelectClass(static_cast<size_t>(person));
  std::string label_var = vq.SelectAttribute(
      static_cast<size_t>(person),
      "http://www.w3.org/2000/01/rdf-schema#label");
  ASSERT_FALSE(label_var.empty());
  vq.FilterRegex(label_var, "Person 1", /*case_insensitive=*/false);
  auto result = vq.Execute(scholarly_ep_.get());
  ASSERT_TRUE(result.ok()) << result.status();
  // "Person 1" matches Person 1, 10..19, 100+ etc. — at least one row.
  EXPECT_GT(result->table.num_rows(), 0u);
}

TEST_F(HboldTest, VisualQueryInvalidSelections) {
  schema::SchemaSummary empty;
  VisualQuery vq(empty);
  EXPECT_EQ(vq.SelectClass(0), "");
  EXPECT_EQ(vq.SelectAttribute(0, "http://x/p"), "");
  schema::PropertyArc bogus;
  bogus.src = 3;
  bogus.dst = 4;
  EXPECT_EQ(vq.FollowArc(bogus), "");
}

// Hostile user input (quotes, backslashes, newlines, regex metachars) in
// filters must produce queries that the endpoint's own parser accepts —
// the search text can never break out of the literal and inject syntax.
TEST_F(HboldTest, VisualQueryHostileFilterTextStaysInLiteral) {
  ASSERT_TRUE(server_->ProcessEndpoint(kUrl).ok());
  Presentation pres(&db_);
  auto summary = pres.LoadSchemaSummary(kUrl);
  ASSERT_TRUE(summary.ok());
  int person =
      summary->FindNode(std::string(workload::kScholarlyNs) + "Person");
  ASSERT_GE(person, 0);

  const std::string hostile[] = {
      "say \"hi\"", "back\\slash", "line\nbreak", "C++ (a|b)*?",
      "\"} . ?s ?p ?o . FILTER regex(STR(?s), \"",  // injection attempt
  };
  for (const std::string& text : hostile) {
    VisualQuery vq(*summary);
    std::string var = vq.SelectClass(static_cast<size_t>(person));
    std::string label_var = vq.SelectAttribute(
        static_cast<size_t>(person),
        "http://www.w3.org/2000/01/rdf-schema#label");
    ASSERT_FALSE(label_var.empty());
    vq.FilterRegex(label_var, text);          // literal search text
    vq.FilterCompare(label_var, "!=", text);  // string comparison
    std::string sparql = vq.GenerateSparql();
    auto parsed = sparql::ParseQuery(sparql);
    ASSERT_TRUE(parsed.ok()) << sparql << "\n" << parsed.status();
    // Exactly the two filters we added — nothing escaped into the BGP.
    EXPECT_EQ(parsed->where.filters.size(), 2u) << sparql;
    auto result = vq.Execute(scholarly_ep_.get());
    ASSERT_TRUE(result.ok()) << sparql << "\n" << result.status();
    EXPECT_EQ(result->table.num_rows(), 0u);  // nothing matches, nothing breaks
  }

  // Escaped-literal search still finds real matches.
  VisualQuery finds(*summary);
  finds.SelectClass(static_cast<size_t>(person));
  std::string label_var = finds.SelectAttribute(
      static_cast<size_t>(person),
      "http://www.w3.org/2000/01/rdf-schema#label");
  finds.FilterRegex(label_var, "Person 1");
  auto result = finds.Execute(scholarly_ep_.get());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->table.num_rows(), 0u);
}

// Drill-down queries IRI-escape the class/resource identifiers they embed:
// a malformed IRI (spaces, quotes, angle brackets) degrades to an empty
// result, never a parse error at the endpoint.
TEST_F(HboldTest, DrilldownEscapesHostileIris) {
  ASSERT_TRUE(server_->ProcessEndpoint(kUrl).ok());
  const std::string hostile_iris[] = {
      "http://x/a b", "http://x/a>\"<b", "http://x/a\\b",
      "http://x/a\nb> . ?s ?p ?o . <http://x/c",
  };
  for (const std::string& iri : hostile_iris) {
    auto sample = drilldown::SampleInstances(scholarly_ep_.get(), iri, 5);
    ASSERT_TRUE(sample.ok()) << iri << "\n" << sample.status();
    EXPECT_EQ(sample->num_rows(), 0u) << iri;
    auto describe = drilldown::DescribeResource(scholarly_ep_.get(), iri);
    ASSERT_TRUE(describe.ok()) << iri << "\n" << describe.status();
    EXPECT_EQ(describe->num_rows(), 0u) << iri;
  }
  // And a well-formed IRI still drills down normally.
  auto sample = drilldown::SampleInstances(
      scholarly_ep_.get(), std::string(workload::kScholarlyNs) + "Person", 5);
  ASSERT_TRUE(sample.ok()) << sample.status();
  EXPECT_GT(sample->num_rows(), 0u);
}

// ---------------------------------------------------------------- Crawler

TEST(CrawlerTest, DiscoversDedupsAndRegisters) {
  SimClock clock;
  rdf::TripleStore portal_store;
  workload::PortalConfig config;
  config.portal_name = "EDP";
  config.total_datasets = 20;
  config.sparql_urls = {"http://a/sparql", "http://b/sparql",
                        "http://known/sparql"};
  workload::GeneratePortalCatalog(config, &portal_store);
  SimulatedRemoteEndpoint portal("http://edp/sparql", "EDP", &portal_store,
                                 &clock);

  endpoint::EndpointRegistry registry;
  EndpointRecord known;
  known.url = "http://known/sparql";
  registry.Add(known);

  PortalCrawler crawler(&registry);
  auto result = crawler.Crawl("EDP", &portal, /*today=*/5);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->distinct_urls, 3u);
  EXPECT_EQ(result->already_known, 1u);
  EXPECT_EQ(result->newly_added, 2u);
  EXPECT_EQ(registry.size(), 3u);
  const EndpointRecord* added = registry.Find("http://a/sparql");
  ASSERT_NE(added, nullptr);
  EXPECT_EQ(added->source, EndpointSource::kPortalCrawl);
  EXPECT_EQ(added->added_day, 5);
  EXPECT_FALSE(added->name.empty());
}

TEST(CrawlerTest, PortalOutagePropagates) {
  SimClock clock;
  rdf::TripleStore store;
  endpoint::AvailabilityModel avail;
  avail.forced_outage_days = {0};
  SimulatedRemoteEndpoint portal("http://p/sparql", "P", &store, &clock,
                                 Dialect::Full(), avail);
  endpoint::EndpointRegistry registry;
  PortalCrawler crawler(&registry);
  auto result = crawler.Crawl("P", &portal, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
}

TEST(CrawlerTest, Listing1QueryParses) {
  auto q = sparql::ParseQuery(Listing1Query());
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->vars,
            (std::vector<std::string>{"dataset", "title", "url"}));
  EXPECT_EQ(q->where.triples.size(), 4u);
  EXPECT_EQ(q->where.filters.size(), 1u);
}

// ---------------------------------------------------------------- §3.4

TEST_F(HboldTest, ManualInsertionHappyPath) {
  // A second endpoint the user submits by hand.
  rdf::TripleStore user_store;
  workload::SyntheticLdConfig config;
  config.num_classes = 5;
  workload::GenerateSyntheticLd(config, &user_store);
  SimulatedRemoteEndpoint user_ep("http://user.example.org/sparql", "user",
                                  &user_store, &clock_);
  server_->AttachEndpoint(user_ep.url(), &user_ep);

  MemoryMailbox mailbox;
  ManualInsertionService service(server_.get(), &mailbox);
  ASSERT_TRUE(
      service.Submit("http://user.example.org/sparql", "user@example.org")
          .ok());
  EXPECT_EQ(service.PendingCount(), 1u);
  EXPECT_EQ(service.ProcessPending(), 1u);
  EXPECT_EQ(service.PendingCount(), 0u);

  ASSERT_EQ(mailbox.mails().size(), 1u);
  EXPECT_EQ(mailbox.mails()[0].to, "user@example.org");
  EXPECT_NE(mailbox.mails()[0].subject.find("indexed"), std::string::npos);
  // Endpoint is now listed and indexed.
  const EndpointRecord* rec =
      server_->registry().Find("http://user.example.org/sparql");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->source, EndpointSource::kManualInsert);
  EXPECT_TRUE(rec->indexed);
}

TEST_F(HboldTest, ManualInsertionFailureNotifiesFailure) {
  MemoryMailbox mailbox;
  ManualInsertionService service(server_.get(), &mailbox);
  // URL with no attached endpoint: extraction will fail.
  ASSERT_TRUE(service.Submit("http://dead.example.org/sparql", "u@e.org")
                  .ok());
  EXPECT_EQ(service.ProcessPending(), 0u);
  ASSERT_EQ(mailbox.mails().size(), 1u);
  EXPECT_NE(mailbox.mails()[0].subject.find("failed"), std::string::npos);
}

TEST_F(HboldTest, ManualInsertionValidation) {
  MemoryMailbox mailbox;
  ManualInsertionService service(server_.get(), &mailbox);
  EXPECT_FALSE(service.Submit("ftp://x/sparql", "a@b.org").ok());
  EXPECT_FALSE(service.Submit("http://x/sparql", "not-an-email").ok());
  EXPECT_FALSE(service.Submit("http://x/sparql", "@b.org").ok());
  // Already-registered URL rejected.
  EXPECT_EQ(service.Submit(kUrl, "a@b.org").code(),
            StatusCode::kAlreadyExists);
  // Double submission rejected.
  ASSERT_TRUE(service.Submit("http://new.org/sparql", "a@b.org").ok());
  EXPECT_FALSE(service.Submit("http://new.org/sparql", "c@d.org").ok());
}

// ------------------------------------------------------- Parallel cycle

/// Fixture: a small fleet of independent LD endpoints (one of them dead)
/// behind fresh per-test servers, for comparing sequential and parallel
/// daily cycles over identical portal state.
class ParallelCycleTest : public ::testing::Test {
 protected:
  static constexpr size_t kEndpoints = 8;

  void SetUp() override {
    for (size_t i = 0; i < kEndpoints; ++i) {
      auto store = std::make_unique<rdf::TripleStore>();
      workload::SyntheticLdConfig config;
      config.namespace_iri =
          "http://ld" + std::to_string(i) + ".example.org/";
      config.num_classes = 6 + i * 3;
      config.max_instances_per_class = 20;
      config.seed = 100 + i;
      workload::GenerateSyntheticLd(config, store.get());
      std::string url = config.namespace_iri + "sparql";
      endpoints_.push_back(std::make_unique<SimulatedRemoteEndpoint>(
          url, "LD " + std::to_string(i), store.get(), &clock_));
      stores_.push_back(std::move(store));
      urls_.push_back(std::move(url));
    }
  }

  /// Builds a server over the fleet; `attach_all == false` leaves the last
  /// endpoint unreachable so the cycle sees a failure too.
  std::unique_ptr<Server> MakeServer(store::Database* db, int parallelism,
                                     bool attach_all) {
    ServerOptions options;
    options.parallelism = parallelism;
    auto server = std::make_unique<Server>(db, &clock_, options);
    for (size_t i = 0; i < kEndpoints; ++i) {
      if (attach_all || i + 1 < kEndpoints) {
        server->AttachEndpoint(urls_[i], endpoints_[i].get());
      }
      endpoint::EndpointRecord record;
      record.url = urls_[i];
      record.name = endpoints_[i]->name();
      server->RegisterEndpoint(record);
    }
    return server;
  }

  static void ExpectSameOutcome(const DailyReport& a, const DailyReport& b) {
    EXPECT_EQ(a.due, b.due);
    EXPECT_EQ(a.succeeded, b.succeeded);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.reused, b.reused);
    ASSERT_EQ(a.reports.size(), b.reports.size());
    for (size_t i = 0; i < a.reports.size(); ++i) {
      EXPECT_EQ(a.reports[i].url, b.reports[i].url) << i;
      EXPECT_EQ(a.reports[i].classes, b.reports[i].classes) << i;
      EXPECT_EQ(a.reports[i].arcs, b.reports[i].arcs) << i;
      EXPECT_EQ(a.reports[i].clusters, b.reports[i].clusters) << i;
      EXPECT_EQ(a.reports[i].reused_cluster_schema,
                b.reports[i].reused_cluster_schema)
          << i;
      EXPECT_DOUBLE_EQ(a.reports[i].extraction_ms, b.reports[i].extraction_ms)
          << i;
    }
  }

  SimClock clock_;
  std::vector<std::string> urls_;
  std::vector<std::unique_ptr<rdf::TripleStore>> stores_;
  std::vector<std::unique_ptr<SimulatedRemoteEndpoint>> endpoints_;
};

TEST_F(ParallelCycleTest, ParallelReportMatchesSequential) {
  store::Database seq_db;
  auto seq_server = MakeServer(&seq_db, 1, /*attach_all=*/false);
  DailyReport sequential = seq_server->RunDailyCycle(1);
  EXPECT_EQ(sequential.due, kEndpoints);
  EXPECT_EQ(sequential.succeeded, kEndpoints - 1);
  EXPECT_EQ(sequential.failed, 1u);
  EXPECT_EQ(sequential.parallelism, 1);
  EXPECT_DOUBLE_EQ(sequential.makespan_ms, sequential.sum_latency_ms);

  for (int workers : {2, 4}) {
    store::Database par_db;
    auto par_server = MakeServer(&par_db, workers, /*attach_all=*/false);
    DailyReport parallel = par_server->RunDailyCycle(workers);
    EXPECT_EQ(parallel.parallelism, workers);
    ExpectSameOutcome(sequential, parallel);
    // Cost is conserved; duration shrinks (or stays, never grows).
    EXPECT_DOUBLE_EQ(parallel.sum_latency_ms, sequential.sum_latency_ms);
    EXPECT_LE(parallel.makespan_ms, sequential.makespan_ms);
    EXPECT_GT(parallel.makespan_ms, 0);
    // Registry bookkeeping identical under concurrency.
    for (const std::string& url : urls_) {
      const endpoint::EndpointRecord* s = seq_server->registry().Find(url);
      const endpoint::EndpointRecord* p = par_server->registry().Find(url);
      ASSERT_NE(s, nullptr);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(s->indexed, p->indexed) << url;
      EXPECT_EQ(s->last_attempt_failed, p->last_attempt_failed) << url;
      EXPECT_EQ(s->last_success_day, p->last_success_day) << url;
    }
  }
}

TEST_F(ParallelCycleTest, ParallelCycleIsDeterministicAcrossRuns) {
  store::Database db_a;
  DailyReport a = MakeServer(&db_a, 4, /*attach_all=*/true)->RunDailyCycle(4);
  store::Database db_b;
  DailyReport b = MakeServer(&db_b, 4, /*attach_all=*/true)->RunDailyCycle(4);
  ExpectSameOutcome(a, b);
  EXPECT_DOUBLE_EQ(a.makespan_ms, b.makespan_ms);
  EXPECT_DOUBLE_EQ(a.sum_latency_ms, b.sum_latency_ms);
}

TEST_F(ParallelCycleTest, ReuseDetectionSurvivesParallelSecondCycle) {
  store::Database db;
  auto server = MakeServer(&db, 4, /*attach_all=*/true);
  DailyReport first = server->RunDailyCycle(4);
  EXPECT_EQ(first.reused, 0u);
  // Unchanged data a week later: every endpoint's Schema Summary hash
  // matches, so the whole cycle is §3.2 reuse — detected under concurrency.
  clock_.AdvanceDays(7);
  DailyReport second = server->RunDailyCycle(4);
  EXPECT_EQ(second.due, kEndpoints);
  EXPECT_EQ(second.succeeded, kEndpoints);
  EXPECT_EQ(second.reused, kEndpoints);
  EXPECT_EQ(db.FindCollection(kSummariesCollection)->size(), kEndpoints);
  EXPECT_EQ(db.FindCollection(kClustersCollection)->size(), kEndpoints);
}

}  // namespace
}  // namespace hbold
