// Tests for the extension features: Turtle writer, store hash indexes,
// executor join-order options, cluster label policies, slice-dice treemap
// baseline, metadata-repository discovery, and the effectiveness (user
// task) simulator.

#include <gtest/gtest.h>

#include "cluster/cluster_schema.h"
#include "cluster/louvain.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/simulated_endpoint.h"
#include "hbold/effectiveness.h"
#include "hbold/metadata_crawler.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "rdf/vocab.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "store/collection.h"
#include "viz/treemap.h"
#include "workload/ld_generator.h"
#include "workload/metadata_repo.h"

namespace hbold {
namespace {

// ---------------------------------------------------------------- Turtle writer

TEST(TurtleWriterTest, RoundTripsThroughParser) {
  rdf::TripleStore store;
  auto n = rdf::ParseTurtle(R"(
@prefix ex: <http://x.org/onto#> .
ex:a a ex:Person ; ex:knows ex:b, ex:c ; ex:age 31 ;
     ex:name "Ann"@en .
ex:b a ex:Person .
_:blank ex:knows ex:a .
)",
                            &store);
  ASSERT_TRUE(n.ok()) << n.status();

  std::string turtle = rdf::WriteTurtle(store);
  rdf::TripleStore reparsed;
  auto m = rdf::ParseTurtle(turtle, &reparsed);
  ASSERT_TRUE(m.ok()) << turtle << "\n" << m.status();
  EXPECT_EQ(reparsed.size(), store.size());
  EXPECT_EQ(rdf::WriteNTriples(reparsed), rdf::WriteNTriples(store));
}

TEST(TurtleWriterTest, EmitsPrefixesAndGroups) {
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseTurtle("@prefix ex: <http://x.org/onto#> .\n"
                               "ex:a ex:p ex:b ; ex:q ex:c .",
                               &store)
                  .ok());
  std::string turtle = rdf::WriteTurtle(store);
  EXPECT_NE(turtle.find("@prefix"), std::string::npos);
  EXPECT_NE(turtle.find(";"), std::string::npos);  // predicate list
  // Namespace referenced at least twice gets compacted.
  EXPECT_NE(turtle.find(":a"), std::string::npos);
}

TEST(TurtleWriterTest, UsesRdfTypeShorthand) {
  rdf::TripleStore store;
  store.Add(rdf::Term::Iri("http://x/i"),
            rdf::Term::Iri(rdf::vocab::kRdfType),
            rdf::Term::Iri("http://x/C"));
  std::string turtle = rdf::WriteTurtle(store);
  EXPECT_NE(turtle.find(" a "), std::string::npos);
}

TEST(TurtleWriterTest, EmptyStore) {
  rdf::TripleStore store;
  EXPECT_EQ(rdf::WriteTurtle(store), "");
}

// ---------------------------------------------------------------- store index

Json Obj(const std::string& text) {
  auto r = Json::Parse(text);
  EXPECT_TRUE(r.ok());
  return r.ok() ? *r : Json::MakeObject();
}

TEST(StoreIndexTest, IndexedFindAgreesWithScan) {
  store::Collection indexed("i"), plain("p");
  indexed.CreateIndex("url");
  for (int i = 0; i < 50; ++i) {
    std::string doc = R"({"url":"http://e)" + std::to_string(i % 10) +
                      R"(","n":)" + std::to_string(i) + "}";
    ASSERT_TRUE(indexed.Insert(Obj(doc)).ok());
    ASSERT_TRUE(plain.Insert(Obj(doc)).ok());
  }
  for (int e = 0; e < 12; ++e) {
    Json filter = Obj(R"({"url":"http://e)" + std::to_string(e) + R"("})");
    EXPECT_EQ(indexed.Find(filter).size(), plain.Find(filter).size());
    EXPECT_EQ(indexed.FindOne(filter).has_value(),
              plain.FindOne(filter).has_value());
  }
  EXPECT_TRUE(indexed.HasIndex("url"));
  EXPECT_FALSE(indexed.HasIndex("n"));
}

TEST(StoreIndexTest, IndexMaintainedAcrossUpdateAndRemove) {
  store::Collection c("x");
  c.CreateIndex("k");
  ASSERT_TRUE(c.Insert(Obj(R"({"k":"a"})")).ok());
  ASSERT_TRUE(c.Insert(Obj(R"({"k":"b"})")).ok());
  // Update moves a doc between buckets.
  ASSERT_TRUE(c.Update(Obj(R"({"k":"a"})"), Obj(R"({"k":"b"})")).ok());
  EXPECT_EQ(c.Find(Obj(R"({"k":"a"})")).size(), 0u);
  EXPECT_EQ(c.Find(Obj(R"({"k":"b"})")).size(), 2u);
  // Remove drops entries.
  EXPECT_EQ(c.Remove(Obj(R"({"k":"b"})")), 2u);
  EXPECT_EQ(c.Find(Obj(R"({"k":"b"})")).size(), 0u);
}

TEST(StoreIndexTest, IndexCreatedAfterInsertsCoversExistingDocs) {
  store::Collection c("x");
  ASSERT_TRUE(c.Insert(Obj(R"({"k":"a"})")).ok());
  c.CreateIndex("k");
  EXPECT_EQ(c.Find(Obj(R"({"k":"a"})")).size(), 1u);
}

TEST(StoreIndexTest, IndexSurvivesJsonlReload) {
  store::Collection c("x");
  c.CreateIndex("k");
  ASSERT_TRUE(c.Insert(Obj(R"({"k":"a"})")).ok());
  std::string dump = c.DumpJsonl();
  ASSERT_TRUE(c.LoadJsonl(dump).ok());
  EXPECT_EQ(c.Find(Obj(R"({"k":"a"})")).size(), 1u);
}

TEST(StoreIndexTest, OperatorFiltersBypassIndex) {
  store::Collection c("x");
  c.CreateIndex("n");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(c.Insert(Obj(R"({"n":)" + std::to_string(i) + "}")).ok());
  }
  EXPECT_EQ(c.Find(Obj(R"({"n":{"$gt":2}})")).size(), 2u);
}

// ---------------------------------------------------------------- exec options

TEST(ExecOptionsTest, NaiveOrderSameResultsMoreWork) {
  rdf::TripleStore store;
  workload::SyntheticLdConfig config;
  config.num_classes = 10;
  config.max_instances_per_class = 60;
  workload::GenerateSyntheticLd(config, &store);

  // Worst-case written order: unselective pattern first.
  std::string q =
      "SELECT ?s WHERE { ?s ?p ?o . ?s a <" + config.namespace_iri +
      "class/C0> . }";

  sparql::Executor greedy(&store);
  sparql::ExecOptions naive_opt;
  naive_opt.greedy_join_order = false;
  sparql::Executor naive(&store, naive_opt);

  sparql::ExecStats greedy_stats, naive_stats;
  auto a = greedy.Execute(q, &greedy_stats);
  auto b = naive.Execute(q, &naive_stats);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_rows(), b->num_rows());
  EXPECT_LT(greedy_stats.intermediate_bindings,
            naive_stats.intermediate_bindings);
}

TEST(ExecOptionsTest, GreedyOrderAvoidsCartesianProducts) {
  // Triangle pattern with two selective class anchors: a boundness-only
  // planner would evaluate both anchors first and cross-join them; the
  // connectivity-aware order must do strictly better than the naive
  // written order here.
  rdf::TripleStore store;
  workload::SyntheticLdConfig config;
  config.num_classes = 8;
  config.max_instances_per_class = 50;
  workload::GenerateSyntheticLd(config, &store);
  std::string q = "SELECT ?a ?b WHERE { ?a ?p ?b . ?b a <" +
                  config.namespace_iri + "class/C1> . ?a a <" +
                  config.namespace_iri + "class/C0> . }";

  sparql::Executor greedy(&store);
  sparql::ExecOptions naive_opt;
  naive_opt.greedy_join_order = false;
  sparql::Executor naive(&store, naive_opt);
  sparql::ExecStats gs, ns;
  auto a = greedy.Execute(q, &gs);
  auto b = naive.Execute(q, &ns);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_rows(), b->num_rows());
  EXPECT_LT(gs.intermediate_bindings, ns.intermediate_bindings);
}

// ---------------------------------------------------------------- label policy

schema::SchemaSummary LabelFixture() {
  extraction::IndexSummary idx;
  idx.endpoint_url = "u";
  // hub: degree 2, 10 instances, no attributes.
  // big: degree 1, 100 instances, no attributes.
  // described: degree 1, 5 instances, 500 attribute usages.
  auto obj = [](const std::string& p, const std::string& range, size_t n) {
    extraction::PropertyInfo info;
    info.iri = p;
    info.count = n;
    info.is_object_property = true;
    info.range_classes[range] = n;
    return info;
  };
  extraction::ClassInfo hub{"http://x/hub", 10, {}};
  hub.properties.push_back(obj("http://x/p1", "http://x/big", 5));
  hub.properties.push_back(obj("http://x/p2", "http://x/described", 5));
  extraction::ClassInfo big{"http://x/big", 100, {}};
  extraction::ClassInfo described{"http://x/described", 5, {}};
  described.properties.push_back(
      extraction::PropertyInfo{"http://x/name", 500, false, {}});
  idx.classes = {hub, big, described};
  return schema::SchemaSummary::FromIndexes(idx);
}

TEST(LabelPolicyTest, PoliciesPickDifferentLabels) {
  schema::SchemaSummary s = LabelFixture();
  cluster::Partition all_one(s.NodeCount(), 0);
  auto degree = cluster::ClusterSchema::FromPartition(
      s, all_one, cluster::LabelPolicy::kHighestDegree);
  auto instances = cluster::ClusterSchema::FromPartition(
      s, all_one, cluster::LabelPolicy::kMostInstances);
  auto attributes = cluster::ClusterSchema::FromPartition(
      s, all_one, cluster::LabelPolicy::kMostAttributes);
  EXPECT_EQ(degree.clusters()[0].label, "hub");
  EXPECT_EQ(instances.clusters()[0].label, "big");
  EXPECT_EQ(attributes.clusters()[0].label, "described");
}

TEST(LabelPolicyTest, DefaultIsDegreeBased) {
  schema::SchemaSummary s = LabelFixture();
  cluster::Partition all_one(s.NodeCount(), 0);
  auto def = cluster::ClusterSchema::FromPartition(s, all_one);
  EXPECT_EQ(def.clusters()[0].label, "hub");
}

// ---------------------------------------------------------------- slice-dice

TEST(SliceDiceTest, AreasStillProportionalButRatiosWorse) {
  // Skewed values make slice-dice produce slivers.
  viz::Hierarchy root{"r", 0, {}};
  viz::Hierarchy cluster{"c", 0, {}};
  for (int i = 0; i < 12; ++i) {
    cluster.children.push_back(
        viz::Hierarchy{"leaf" + std::to_string(i),
                       i == 0 ? 1000.0 : 5.0,
                       {}});
  }
  root.children.push_back(cluster);

  viz::TreemapOptions squarified;
  squarified.padding = 0;
  squarified.header = 0;
  viz::TreemapOptions slicedice = squarified;
  slicedice.algorithm = viz::TreemapAlgorithm::kSliceDice;

  viz::Rect bounds{0, 0, 600, 400};
  auto sq = viz::TreemapLayout(root, bounds, squarified);
  auto sd = viz::TreemapLayout(root, bounds, slicedice);

  // Both algorithms keep area proportionality.
  double sq_total = 0, sd_total = 0;
  for (const auto& c : sq) {
    if (c.depth == 2) sq_total += c.rect.Area();
  }
  for (const auto& c : sd) {
    if (c.depth == 2) sd_total += c.rect.Area();
  }
  EXPECT_NEAR(sq_total, bounds.Area(), 1.0);
  EXPECT_NEAR(sd_total, bounds.Area(), 1.0);

  // Squarified is markedly better on aspect ratio.
  EXPECT_LT(viz::MeanLeafAspectRatio(sq), viz::MeanLeafAspectRatio(sd) / 2);
}

TEST(SliceDiceTest, MeanAspectRatioOfEmpty) {
  EXPECT_DOUBLE_EQ(viz::MeanLeafAspectRatio({}), 0.0);
}

// ---------------------------------------------------------------- metadata repo

TEST(MetadataCrawlerTest, FiltersByAvailabilityAndDedups) {
  rdf::TripleStore repo_store;
  std::vector<workload::MetadataEntry> entries = {
      {"http://good1/sparql", 0.99},
      {"http://good2/sparql", 0.90},
      {"http://flaky/sparql", 0.55},
      {"http://dead/sparql", 0.05},
      {"http://known/sparql", 0.95},
  };
  workload::GenerateMetadataRepository(entries, "http://sparqles.example.org/",
                                       &repo_store);
  SimClock clock;
  endpoint::SimulatedRemoteEndpoint repo("http://sparqles.example.org/sparql",
                                         "sparqles", &repo_store, &clock);
  endpoint::EndpointRegistry registry;
  endpoint::EndpointRecord known;
  known.url = "http://known/sparql";
  registry.Add(known);

  MetadataRepositoryCrawler crawler(&registry);
  auto result = crawler.Crawl("sparqles", &repo, /*min_availability=*/0.8, 3);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->endpoints_listed, 5u);
  EXPECT_EQ(result->above_threshold, 3u);  // good1, good2, known
  EXPECT_EQ(result->already_known, 1u);
  EXPECT_EQ(result->newly_added, 2u);
  EXPECT_TRUE(registry.Contains("http://good1/sparql"));
  EXPECT_FALSE(registry.Contains("http://flaky/sparql"));
}

TEST(MetadataCrawlerTest, DiscoveryQueryParses) {
  auto q = sparql::ParseQuery(
      MetadataRepositoryCrawler::DiscoveryQuery(0.75));
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->where.triples.size(), 3u);
  EXPECT_EQ(q->where.filters.size(), 1u);
}

TEST(MetadataCrawlerTest, ThresholdZeroTakesEverything) {
  rdf::TripleStore repo_store;
  workload::GenerateMetadataRepository(
      {{"http://a/sparql", 0.2}, {"http://b/sparql", 0.0}},
      "http://r.example.org/", &repo_store);
  SimClock clock;
  endpoint::SimulatedRemoteEndpoint repo("http://r.example.org/sparql", "r",
                                         &repo_store, &clock);
  endpoint::EndpointRegistry registry;
  MetadataRepositoryCrawler crawler(&registry);
  auto result = crawler.Crawl("r", &repo, 0.0, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->newly_added, 2u);
}

// ---------------------------------------------------------------- effectiveness

struct EffFixture {
  schema::SchemaSummary summary;
  cluster::ClusterSchema clusters;
};

/// Three clusters of 5 classes each, chain-linked inside clusters, one
/// bridge arc between clusters 0 and 1.
EffFixture MakeEffFixture() {
  extraction::IndexSummary idx;
  idx.endpoint_url = "u";
  auto obj = [](const std::string& p, const std::string& range, size_t n) {
    extraction::PropertyInfo info;
    info.iri = p;
    info.count = n;
    info.is_object_property = true;
    info.range_classes[range] = n;
    return info;
  };
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 5; ++i) {
      extraction::ClassInfo cls;
      cls.iri = "http://x/C" + std::to_string(c) + "_" + std::to_string(i);
      cls.instance_count = static_cast<size_t>(10 * (c + 1) + i);
      if (i > 0) {
        cls.properties.push_back(
            obj("http://x/p" + std::to_string(c) + std::to_string(i),
                "http://x/C" + std::to_string(c) + "_" + std::to_string(i - 1),
                3));
      }
      idx.classes.push_back(std::move(cls));
    }
  }
  // Bridge between clusters 0 and 1.
  idx.classes[0].properties.push_back(obj("http://x/bridge", "http://x/C1_0", 1));
  EffFixture f;
  f.summary = schema::SchemaSummary::FromIndexes(idx);
  cluster::Partition part(f.summary.NodeCount());
  for (size_t i = 0; i < part.size(); ++i) {
    // Class IRIs sort deterministically; assign by IRI prefix.
    const std::string& iri = f.summary.nodes()[i].iri;
    part[i] = static_cast<size_t>(iri[10] - '0');  // "http://x/C<c>_..."
  }
  f.clusters = cluster::ClusterSchema::FromPartition(f.summary, part);
  return f;
}

TEST(EffectivenessTest, FindClassByLabelBothStrategiesSucceed) {
  EffFixture f = MakeEffFixture();
  EffectivenessSimulator sim(f.summary, f.clusters);
  auto flat = sim.FindClassByLabel("C2_3", ExplorationStrategy::kFlatScan);
  auto clustered =
      sim.FindClassByLabel("C2_3", ExplorationStrategy::kClusterFirst);
  EXPECT_TRUE(flat.success);
  EXPECT_TRUE(clustered.success);
  EXPECT_GT(flat.interactions, 0u);
  EXPECT_GT(clustered.interactions, 0u);
}

TEST(EffectivenessTest, MissingLabelFails) {
  EffFixture f = MakeEffFixture();
  EffectivenessSimulator sim(f.summary, f.clusters);
  auto flat = sim.FindClassByLabel("nope", ExplorationStrategy::kFlatScan);
  EXPECT_FALSE(flat.success);
  EXPECT_EQ(flat.interactions, f.summary.NodeCount());
}

TEST(EffectivenessTest, MostPopulatedUsesClusterTotals) {
  EffFixture f = MakeEffFixture();
  EffectivenessSimulator sim(f.summary, f.clusters);
  auto flat = sim.FindMostPopulatedClass(ExplorationStrategy::kFlatScan);
  auto clustered =
      sim.FindMostPopulatedClass(ExplorationStrategy::kClusterFirst);
  EXPECT_TRUE(flat.success);
  EXPECT_TRUE(clustered.success);
  // Flat inspects all 15 classes. Cluster-first reads 3 totals
  // (60/110/160), opens c2 (5 members, best class 34), and since both
  // remaining totals exceed 34 must open them too: 3 + 15 = 18. On this
  // near-uniform fixture the high-level view cannot help — the win shows
  // up on skewed data (bench_user_effectiveness).
  EXPECT_EQ(flat.interactions, 15u);
  EXPECT_EQ(clustered.interactions, 18u);
}

TEST(EffectivenessTest, MostPopulatedBranchAndBoundStopsEarlyOnSkew) {
  // One dominant class: cluster totals bound the search immediately.
  extraction::IndexSummary idx;
  idx.endpoint_url = "u";
  idx.classes.push_back({"http://x/huge", 1000, {}});
  idx.classes.push_back({"http://x/a", 2, {}});
  idx.classes.push_back({"http://x/b", 3, {}});
  idx.classes.push_back({"http://x/c", 4, {}});
  schema::SchemaSummary s = schema::SchemaSummary::FromIndexes(idx);
  cluster::Partition part{0, 1, 1, 1};
  auto cs = cluster::ClusterSchema::FromPartition(s, part);
  EffectivenessSimulator sim(s, cs);
  auto outcome =
      sim.FindMostPopulatedClass(ExplorationStrategy::kClusterFirst);
  EXPECT_TRUE(outcome.success);
  // 2 totals + 1 member of the dominant cluster; the other total (9) is
  // below 1000 so it is never opened.
  EXPECT_EQ(outcome.interactions, 3u);
}

TEST(EffectivenessTest, ConnectionAcrossUnlinkedClustersIsOneInteraction) {
  EffFixture f = MakeEffFixture();
  EffectivenessSimulator sim(f.summary, f.clusters);
  int a = f.summary.FindNode("http://x/C0_0");
  int c = f.summary.FindNode("http://x/C2_0");
  ASSERT_GE(a, 0);
  ASSERT_GE(c, 0);
  auto clustered = sim.FindConnection(static_cast<size_t>(a),
                                      static_cast<size_t>(c),
                                      ExplorationStrategy::kClusterFirst);
  // Clusters 0 and 2 are not linked: the Cluster Schema answers "not
  // connected" after a single inspection.
  EXPECT_TRUE(clustered.success);
  EXPECT_EQ(clustered.interactions, 1u);
}

TEST(EffectivenessTest, ConnectionWithinClusterFound) {
  EffFixture f = MakeEffFixture();
  EffectivenessSimulator sim(f.summary, f.clusters);
  int a = f.summary.FindNode("http://x/C0_0");
  int b = f.summary.FindNode("http://x/C0_1");
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  for (auto strategy : {ExplorationStrategy::kFlatScan,
                        ExplorationStrategy::kClusterFirst}) {
    auto outcome = sim.FindConnection(static_cast<size_t>(a),
                                      static_cast<size_t>(b), strategy);
    EXPECT_TRUE(outcome.success);
    EXPECT_GT(outcome.interactions, 0u);
  }
}

TEST(EffectivenessTest, OutOfRangeNodesFail) {
  EffFixture f = MakeEffFixture();
  EffectivenessSimulator sim(f.summary, f.clusters);
  auto outcome =
      sim.FindConnection(999, 0, ExplorationStrategy::kClusterFirst);
  EXPECT_FALSE(outcome.success);
}

}  // namespace
}  // namespace hbold
