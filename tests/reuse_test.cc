// Tests for the §3.2 recompute-avoidance path (unchanged Schema Summary =>
// skip clustering/persist), the instance drill-down queries, and CSV
// result export.

#include <gtest/gtest.h>

#include <memory>

#include "common/hash.h"
#include "hbold/hbold.h"
#include "rdf/vocab.h"
#include "workload/scholarly.h"

namespace hbold {
namespace {

TEST(HashTest, Fnv64IsStableAndSensitive) {
  EXPECT_EQ(Fnv64("abc"), Fnv64("abc"));
  EXPECT_NE(Fnv64("abc"), Fnv64("abd"));
  EXPECT_NE(Fnv64(""), Fnv64("a"));
}

class ReuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::ScholarlyConfig config;
    config.conferences = 1;
    config.people = 40;
    workload::GenerateScholarly(config, &store_);
    ep_ = std::make_unique<endpoint::SimulatedRemoteEndpoint>(
        "http://s/sparql", "s", &store_, &clock_);
    server_ = std::make_unique<Server>(&db_, &clock_);
    server_->AttachEndpoint(ep_->url(), ep_.get());
    endpoint::EndpointRecord record;
    record.url = ep_->url();
    server_->RegisterEndpoint(record);
  }
  rdf::TripleStore store_;
  SimClock clock_;
  store::Database db_;
  std::unique_ptr<endpoint::SimulatedRemoteEndpoint> ep_;
  std::unique_ptr<Server> server_;
};

TEST_F(ReuseTest, UnchangedSummarySkipsClustering) {
  auto first = server_->ProcessEndpoint(ep_->url());
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->reused_cluster_schema);
  EXPECT_GT(first->clusters, 0u);

  clock_.AdvanceDays(7);
  auto second = server_->ProcessEndpoint(ep_->url());
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->reused_cluster_schema);
  EXPECT_EQ(second->clusters, 0u);  // stage skipped
  // Bookkeeping still updated.
  EXPECT_EQ(server_->registry().Find(ep_->url())->last_success_day, 7);
  // Stored artifacts still present and loadable.
  Presentation pres(&db_);
  EXPECT_TRUE(pres.LoadClusterSchema(ep_->url()).ok());
}

TEST_F(ReuseTest, ChangedDataRecomputes) {
  ASSERT_TRUE(server_->ProcessEndpoint(ep_->url()).ok());
  // The source grows a new class: summary hash must change.
  store_.Add(rdf::Term::Iri("http://s/new-instance"),
             rdf::Term::Iri(rdf::vocab::kRdfType),
             rdf::Term::Iri("http://s/BrandNewClass"));
  clock_.AdvanceDays(7);
  auto second = server_->ProcessEndpoint(ep_->url());
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->reused_cluster_schema);
  Presentation pres(&db_);
  auto summary = pres.LoadSchemaSummary(ep_->url());
  ASSERT_TRUE(summary.ok());
  EXPECT_GE(summary->FindNode("http://s/BrandNewClass"), 0);
}

TEST_F(ReuseTest, DailyReportCountsReuse) {
  server_->RunDailyUpdate();
  clock_.AdvanceDays(7);
  DailyReport report = server_->RunDailyUpdate();
  EXPECT_EQ(report.succeeded, 1u);
  EXPECT_EQ(report.reused, 1u);
}

// ---------------------------------------------------------------- drilldown

TEST_F(ReuseTest, SampleInstancesReturnsLabeledInstances) {
  std::string person = std::string(workload::kScholarlyNs) + "Person";
  auto table = drilldown::SampleInstances(ep_.get(), person, 5);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 5u);
  EXPECT_GE(table->ColumnIndex("instance"), 0);
  EXPECT_GE(table->ColumnIndex("label"), 0);
  // Scholarly people carry labels.
  EXPECT_TRUE(table->Cell(0, "label").has_value());
}

TEST_F(ReuseTest, SampleInstancesOfUnknownClassIsEmpty) {
  auto table = drilldown::SampleInstances(ep_.get(), "http://nope/C", 5);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
}

TEST_F(ReuseTest, DescribeResourceListsAllProperties) {
  auto sample = drilldown::SampleInstances(
      ep_.get(), std::string(workload::kScholarlyNs) + "Person", 1);
  ASSERT_TRUE(sample.ok());
  ASSERT_EQ(sample->num_rows(), 1u);
  std::string iri = sample->Cell(0, "instance")->lexical();

  auto described = drilldown::DescribeResource(ep_.get(), iri);
  ASSERT_TRUE(described.ok()) << described.status();
  EXPECT_GE(described->num_rows(), 2u);  // rdf:type + label at least
  bool has_type = false;
  for (size_t i = 0; i < described->num_rows(); ++i) {
    if (described->Cell(i, "p")->lexical() == rdf::vocab::kRdfType) {
      has_type = true;
    }
  }
  EXPECT_TRUE(has_type);
}

// ---------------------------------------------------------------- CSV

TEST(CsvTest, HeaderAndRows) {
  sparql::ResultTable t({"a", "b"});
  t.AddRow({rdf::Term::Iri("http://x/1"), rdf::Term::Literal("plain")});
  t.AddRow({rdf::Term::Literal("has,comma"),
            rdf::Term::Literal("has \"quote\"")});
  t.AddRow({std::nullopt, rdf::Term::Literal("line\nbreak")});
  std::string csv = t.ToCsv();
  EXPECT_EQ(csv.substr(0, 5), "a,b\r\n");
  EXPECT_NE(csv.find("http://x/1,plain\r\n"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has \"\"quote\"\"\""), std::string::npos);
  EXPECT_NE(csv.find(",\"line\nbreak\""), std::string::npos);
}

TEST(CsvTest, EmptyTable) {
  sparql::ResultTable t({"only"});
  EXPECT_EQ(t.ToCsv(), "only\r\n");
}

}  // namespace
}  // namespace hbold
