// Unit tests for src/schema: Schema Summary construction from indexes,
// graph accessors, coverage statistics, serialization.

#include <gtest/gtest.h>

#include "extraction/indexes.h"
#include "schema/schema_summary.h"

namespace hbold::schema {
namespace {

using extraction::ClassInfo;
using extraction::IndexSummary;
using extraction::PropertyInfo;

/// Builds indexes for a small schema:
///   Person (100) --worksAt--> Org (10) --inCity--> City (5)
///   Person --knows--> Person (self-ish arc between same class)
///   Person has attribute name; Org has attribute name.
IndexSummary MakeIndexes() {
  IndexSummary s;
  s.endpoint_url = "http://test/sparql";
  s.num_instances = 115;
  s.num_triples = 1000;

  ClassInfo person;
  person.iri = "http://x/onto#Person";
  person.instance_count = 100;
  PropertyInfo name{"http://x/onto#name", 100, false, {}};
  PropertyInfo works{"http://x/onto#worksAt", 80, true,
                     {{"http://x/onto#Org", 80}}};
  PropertyInfo knows{"http://x/onto#knows", 50, true,
                     {{"http://x/onto#Person", 50}}};
  person.properties = {name, works, knows};

  ClassInfo org;
  org.iri = "http://x/onto#Org";
  org.instance_count = 10;
  PropertyInfo org_name{"http://x/onto#name", 10, false, {}};
  PropertyInfo in_city{"http://x/onto#inCity", 10, true,
                       {{"http://x/onto#City", 10}}};
  PropertyInfo ghost{"http://x/onto#partnerOf", 3, true,
                     {{"http://x/onto#Ghost", 3}}};  // range not instantiated
  org.properties = {org_name, in_city, ghost};

  ClassInfo city;
  city.iri = "http://x/onto#City";
  city.instance_count = 5;
  city.properties = {};

  s.classes = {person, org, city};
  s.num_classes = 3;
  return s;
}

TEST(SchemaSummaryTest, NodesFromClasses) {
  SchemaSummary s = SchemaSummary::FromIndexes(MakeIndexes());
  ASSERT_EQ(s.NodeCount(), 3u);
  EXPECT_EQ(s.endpoint_url(), "http://test/sparql");
  EXPECT_EQ(s.nodes()[0].iri, "http://x/onto#Person");
  EXPECT_EQ(s.nodes()[0].label, "Person");
  EXPECT_EQ(s.nodes()[0].instance_count, 100u);
  EXPECT_EQ(s.total_instances(), 115u);
}

TEST(SchemaSummaryTest, ArcsFromObjectProperties) {
  SchemaSummary s = SchemaSummary::FromIndexes(MakeIndexes());
  // worksAt, knows (self-loop Person->Person), inCity. partnerOf dropped
  // (range class not instantiated).
  ASSERT_EQ(s.ArcCount(), 3u);
  int person = s.FindNode("http://x/onto#Person");
  int org = s.FindNode("http://x/onto#Org");
  ASSERT_GE(person, 0);
  ASSERT_GE(org, 0);
  bool found_works = false, found_knows = false;
  for (const PropertyArc& a : s.arcs()) {
    if (a.iri == "http://x/onto#worksAt") {
      found_works = true;
      EXPECT_EQ(a.src, static_cast<size_t>(person));
      EXPECT_EQ(a.dst, static_cast<size_t>(org));
      EXPECT_EQ(a.count, 80u);
    }
    if (a.iri == "http://x/onto#knows") {
      found_knows = true;
      EXPECT_EQ(a.src, a.dst);  // self-loop
    }
  }
  EXPECT_TRUE(found_works);
  EXPECT_TRUE(found_knows);
}

TEST(SchemaSummaryTest, AttributesFromDatatypeProperties) {
  SchemaSummary s = SchemaSummary::FromIndexes(MakeIndexes());
  int person = s.FindNode("http://x/onto#Person");
  ASSERT_GE(person, 0);
  const ClassNode& node = s.nodes()[static_cast<size_t>(person)];
  ASSERT_EQ(node.attributes.size(), 1u);
  EXPECT_EQ(node.attributes[0].iri, "http://x/onto#name");
  EXPECT_EQ(node.attributes[0].count, 100u);
}

TEST(SchemaSummaryTest, FindNodeMissing) {
  SchemaSummary s = SchemaSummary::FromIndexes(MakeIndexes());
  EXPECT_EQ(s.FindNode("http://nope"), -1);
}

TEST(SchemaSummaryTest, DegreeCountsBothEndsAndSelfLoopsTwice) {
  SchemaSummary s = SchemaSummary::FromIndexes(MakeIndexes());
  size_t person = static_cast<size_t>(s.FindNode("http://x/onto#Person"));
  size_t org = static_cast<size_t>(s.FindNode("http://x/onto#Org"));
  size_t city = static_cast<size_t>(s.FindNode("http://x/onto#City"));
  // Person: worksAt out (1) + knows self-loop (2) = 3.
  EXPECT_EQ(s.Degree(person), 3u);
  // Org: worksAt in (1) + inCity out (1) = 2.
  EXPECT_EQ(s.Degree(org), 2u);
  EXPECT_EQ(s.Degree(city), 1u);
}

TEST(SchemaSummaryTest, NeighborsExcludeSelf) {
  SchemaSummary s = SchemaSummary::FromIndexes(MakeIndexes());
  size_t person = static_cast<size_t>(s.FindNode("http://x/onto#Person"));
  auto nbrs = s.Neighbors(person);
  ASSERT_EQ(nbrs.size(), 1u);  // only Org (self-loop excluded)
  EXPECT_EQ(s.nodes()[nbrs[0]].label, "Org");
}

TEST(SchemaSummaryTest, IncidentArcs) {
  SchemaSummary s = SchemaSummary::FromIndexes(MakeIndexes());
  size_t org = static_cast<size_t>(s.FindNode("http://x/onto#Org"));
  EXPECT_EQ(s.IncidentArcs(org).size(), 2u);  // worksAt in, inCity out
}

TEST(SchemaSummaryTest, CoveragePercent) {
  SchemaSummary s = SchemaSummary::FromIndexes(MakeIndexes());
  size_t person = static_cast<size_t>(s.FindNode("http://x/onto#Person"));
  size_t org = static_cast<size_t>(s.FindNode("http://x/onto#Org"));
  size_t city = static_cast<size_t>(s.FindNode("http://x/onto#City"));
  EXPECT_DOUBLE_EQ(s.CoveragePercent({}), 0.0);
  EXPECT_NEAR(s.CoveragePercent({person}), 100.0 * 100 / 115, 1e-9);
  EXPECT_NEAR(s.CoveragePercent({person, org, city}), 100.0, 1e-9);
  // Out-of-range indexes are ignored.
  EXPECT_NEAR(s.CoveragePercent({person, 999}), 100.0 * 100 / 115, 1e-9);
}

TEST(SchemaSummaryTest, EmptySummary) {
  SchemaSummary s;
  EXPECT_EQ(s.NodeCount(), 0u);
  EXPECT_DOUBLE_EQ(s.CoveragePercent({0, 1}), 0.0);
}

TEST(SchemaSummaryTest, JsonRoundTrip) {
  SchemaSummary s = SchemaSummary::FromIndexes(MakeIndexes());
  auto round = SchemaSummary::FromJson(s.ToJson());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->ToJson().Dump(), s.ToJson().Dump());
  EXPECT_EQ(round->NodeCount(), s.NodeCount());
  EXPECT_EQ(round->ArcCount(), s.ArcCount());
  EXPECT_EQ(round->total_instances(), s.total_instances());
}

TEST(SchemaSummaryTest, FromJsonValidatesArcRange) {
  Json j = Json::MakeObject();
  j.Set("endpoint_url", "u");
  j.Set("total_instances", 1);
  j.Set("nodes", Json::MakeArray());
  Json arcs = Json::MakeArray();
  Json arc = Json::MakeObject();
  arc.Set("src", 5);
  arc.Set("dst", 0);
  arc.Set("iri", "p");
  arc.Set("count", 1);
  arcs.Append(std::move(arc));
  j.Set("arcs", std::move(arcs));
  EXPECT_FALSE(SchemaSummary::FromJson(j).ok());
}

TEST(SchemaSummaryTest, FromJsonRejectsNonObject) {
  EXPECT_FALSE(SchemaSummary::FromJson(Json("x")).ok());
}

}  // namespace
}  // namespace hbold::schema
