// Serving-layer tests: session transcript determinism across thread counts
// and cache modes, LayoutCache semantics (single-flight, LRU, epoch flush),
// snapshot readers racing daily extraction cycles (the TSan hammer),
// drill-down determinism, and EffectivenessSimulator tie-break stability.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "endpoint/simulated_endpoint.h"
#include "hbold/effectiveness.h"
#include "hbold/exploration_service.h"
#include "hbold/fleet.h"
#include "hbold/presentation.h"
#include "viz/layout_cache.h"
#include "workload/exploration_workload.h"
#include "workload/ld_generator.h"

namespace hbold {
namespace {

using endpoint::EndpointRecord;
using endpoint::SimulatedRemoteEndpoint;
using workload::ExplorationWorkloadOptions;
using workload::GenerateSessions;
using workload::SessionPlan;

constexpr size_t kEndpoints = 6;

std::string Url(size_t i) {
  return "http://serve" + std::to_string(i) + ".example.org/sparql";
}

/// A small seeded fleet world the serving tests run against.
class ServingWorld {
 public:
  explicit ServingWorld(int num_shards, size_t fleet_workers = 1) {
    for (size_t i = 0; i < kEndpoints; ++i) {
      auto store = std::make_unique<rdf::TripleStore>();
      workload::SyntheticLdConfig config;
      config.namespace_iri = Url(i).substr(0, Url(i).size() - 6);
      config.num_classes = 4 + i * 2;
      config.max_instances_per_class = 15;
      config.seed = 900 + i;
      workload::GenerateSyntheticLd(config, store.get());
      stores_.push_back(std::move(store));
    }
    FleetOptions options;
    options.num_shards = num_shards;
    options.fleet_workers = fleet_workers;
    fleet_ = std::make_unique<Fleet>(&clock_, options);
    for (size_t i = 0; i < kEndpoints; ++i) {
      endpoints_.push_back(std::make_unique<SimulatedRemoteEndpoint>(
          Url(i), "Serve " + std::to_string(i), stores_[i].get(), &clock_));
      EndpointRecord record;
      record.url = Url(i);
      record.name = endpoints_[i]->name();
      fleet_->RegisterEndpoint(record);
      fleet_->AttachEndpoint(Url(i), endpoints_[i].get());
    }
  }

  Fleet& fleet() { return *fleet_; }

 private:
  SimClock clock_;
  std::vector<std::unique_ptr<rdf::TripleStore>> stores_;
  std::vector<std::unique_ptr<SimulatedRemoteEndpoint>> endpoints_;
  std::unique_ptr<Fleet> fleet_;
};

ExplorationWorkloadOptions SmallWorkload() {
  ExplorationWorkloadOptions options;
  options.sessions = 24;
  options.seed = 4242;
  return options;
}

// ------------------------------------------- transcript determinism gate

TEST(ExplorationServingTest, TranscriptsInvariantAcrossThreadsAndCache) {
  ServingWorld world(2);
  ASSERT_FALSE(world.fleet().RunSimulation(1).days.empty());

  std::vector<SessionPlan> plans =
      GenerateSessions(SmallWorkload(), kEndpoints);

  auto serve = [&](bool use_cache, size_t threads) {
    ExplorationServiceOptions options;
    options.use_layout_cache = use_cache;
    ExplorationService service(&world.fleet(), options);
    EXPECT_EQ(service.RefreshSnapshots(), kEndpoints);
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    return service.RunSessions(plans, pool.get());
  };

  std::vector<SessionResult> baseline = serve(/*use_cache=*/true, 1);
  ASSERT_EQ(baseline.size(), plans.size());
  // Sessions actually exercised rendering and live queries.
  size_t renders = 0, queries = 0;
  for (const SessionResult& r : baseline) {
    ASSERT_FALSE(r.transcript.empty());
    EXPECT_EQ(r.interaction_wall_ms.size(),
              plans[r.session_id].actions.size());
    if (r.transcript.find(" geometry=") != std::string::npos) ++renders;
    if (r.transcript.find(" sparql=") != std::string::npos) ++queries;
    EXPECT_EQ(r.transcript.find("no_dataset"), std::string::npos)
        << r.transcript;
  }
  EXPECT_GT(renders, 0u);
  EXPECT_GT(queries, 0u);

  uint64_t anchor = ExplorationService::CombinedFingerprint(baseline);
  for (bool cache : {true, false}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      std::vector<SessionResult> run = serve(cache, threads);
      ASSERT_EQ(run.size(), baseline.size());
      for (size_t i = 0; i < run.size(); ++i) {
        EXPECT_EQ(run[i].transcript, baseline[i].transcript)
            << "cache=" << cache << " threads=" << threads << " session " << i;
      }
      EXPECT_EQ(ExplorationService::CombinedFingerprint(run), anchor);
    }
  }
}

TEST(ExplorationServingTest, CacheMissesAreUniqueKeysUnderConcurrency) {
  ServingWorld world(1);
  ASSERT_FALSE(world.fleet().RunSimulation(1).days.empty());
  std::vector<SessionPlan> plans =
      GenerateSessions(SmallWorkload(), kEndpoints);

  viz::LayoutCacheStats inline_stats, pooled_stats;
  for (int pooled = 0; pooled < 2; ++pooled) {
    ExplorationService service(&world.fleet(), {});
    ASSERT_EQ(service.RefreshSnapshots(), kEndpoints);
    std::unique_ptr<ThreadPool> pool;
    if (pooled) pool = std::make_unique<ThreadPool>(4);
    service.RunSessions(plans, pool.get());
    (pooled ? pooled_stats : inline_stats) = service.cache_stats();
  }
  // Single-flight: misses == distinct datasets rendered, independent of
  // scheduling; every other render is a hit.
  EXPECT_GT(inline_stats.misses, 0u);
  EXPECT_LE(inline_stats.misses, kEndpoints);
  EXPECT_EQ(inline_stats.misses, pooled_stats.misses);
  EXPECT_EQ(inline_stats.hits, pooled_stats.hits);
  EXPECT_EQ(inline_stats.evictions, 0u);
  EXPECT_EQ(pooled_stats.evictions, 0u);
}

TEST(ExplorationServingTest, RefreshFlushesCacheAndKeepsTranscripts) {
  ServingWorld world(1);
  ASSERT_FALSE(world.fleet().RunSimulation(1).days.empty());
  std::vector<SessionPlan> plans = GenerateSessions(SmallWorkload(), 1);

  ExplorationService service(&world.fleet(), {});
  ASSERT_EQ(service.RefreshSnapshots(), kEndpoints);
  uint64_t gen1 = service.generation();
  std::vector<SessionResult> first = service.RunSessions(plans, nullptr);
  viz::LayoutCacheStats before = service.cache_stats();
  EXPECT_GT(before.misses, 0u);

  // Same store content: a refresh must flush the cache (new epoch) but
  // leave the transcripts byte-identical.
  ASSERT_EQ(service.RefreshSnapshots(), kEndpoints);
  EXPECT_GT(service.generation(), gen1);
  std::vector<SessionResult> second = service.RunSessions(plans, nullptr);
  viz::LayoutCacheStats after = service.cache_stats();
  EXPECT_GT(after.epoch_flushes, before.epoch_flushes);
  EXPECT_GT(after.misses, before.misses);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].transcript, second[i].transcript);
  }
}

TEST(ExplorationServingTest, EmptyCatalogServesGracefully) {
  ServingWorld world(1);  // no simulation run: nothing persisted yet
  ExplorationService service(&world.fleet(), {});
  EXPECT_EQ(service.RefreshSnapshots(), 0u);
  std::vector<SessionPlan> plans = GenerateSessions(SmallWorkload(), 0);
  std::vector<SessionResult> results = service.RunSessions(plans, nullptr);
  ASSERT_EQ(results.size(), plans.size());
  for (const SessionResult& r : results) {
    EXPECT_NE(r.transcript.find("catalog_empty"), std::string::npos);
  }
}

// ------------------------------------------------------------ LayoutCache

TEST(LayoutCacheTest, SingleFlightComputesOncePerKey) {
  viz::LayoutCache cache(8);
  std::atomic<int> computed{0};
  auto compute = [&]() {
    computed.fetch_add(1);
    viz::LayoutSet set;
    set.geometry_fingerprint = 77;
    return set;
  };
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      auto set = cache.GetOrCompute(1, 2, compute);
      EXPECT_EQ(set->geometry_fingerprint, 77u);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(computed.load(), 1);
  viz::LayoutCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(LayoutCacheTest, EvictsLeastRecentlyUsed) {
  viz::LayoutCache cache(2);
  auto make = [](uint64_t fp) {
    return [fp]() {
      viz::LayoutSet set;
      set.geometry_fingerprint = fp;
      return set;
    };
  };
  cache.GetOrCompute(1, 0, make(1));
  cache.GetOrCompute(2, 0, make(2));
  cache.GetOrCompute(1, 0, make(1));  // touch 1: now 2 is the LRU
  cache.GetOrCompute(3, 0, make(3));  // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.GetOrCompute(1, 0, make(1));
  EXPECT_EQ(cache.stats().hits, 2u);
  cache.GetOrCompute(2, 0, make(2));  // 2 was evicted: a miss again
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(LayoutCacheTest, EpochChangeFlushes) {
  viz::LayoutCache cache(8);
  auto compute = []() { return viz::LayoutSet{}; };
  cache.SetEpoch(1);
  cache.GetOrCompute(1, 0, compute);
  cache.SetEpoch(1);  // same epoch: no flush
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().epoch_flushes, 0u);
  cache.SetEpoch(2);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().epoch_flushes, 1u);
  cache.GetOrCompute(1, 0, compute);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(LayoutCacheTest, ZeroCapacityClampsToOne) {
  viz::LayoutCache cache(0);
  EXPECT_EQ(cache.capacity(), 1u);
  auto compute = []() { return viz::LayoutSet{}; };
  cache.GetOrCompute(1, 0, compute);
  cache.GetOrCompute(2, 0, compute);
  EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------- readers vs. daily-cycle writers

/// The TSan hammer: presentation snapshots and serving reads race real
/// RunDay() cycles. Every observed state must be a complete extraction —
/// a summary that loads must decode, and its cluster schema must load too
/// (the atomic Replace contract: readers never see the gap between the
/// old document's removal and the new one's insertion).
TEST(PresentationConcurrencyTest, SnapshotReadersRaceDailyCycles) {
  ServingWorld world(2, /*fleet_workers=*/2);
  // Force daily re-extraction so every hammered day rewrites the docs.
  ASSERT_FALSE(world.fleet().RunSimulation(1).days.empty());

  std::atomic<bool> stop{false};
  std::atomic<size_t> observed{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&]() {
      while (!stop.load()) {
        for (size_t s = 0; s < world.fleet().num_shards(); ++s) {
          Presentation pres(&world.fleet().shard_db(s));
          PresentationSnapshot snap = pres.Snapshot();
          for (const DatasetInfo& info : snap.ListDatasets()) {
            auto summary = snap.LoadSchemaSummary(info.url);
            ASSERT_TRUE(summary.ok()) << summary.status();
            EXPECT_GT(summary->NodeCount(), 0u);
            auto clusters = snap.LoadClusterSchema(info.url);
            ASSERT_TRUE(clusters.ok()) << clusters.status();
            observed.fetch_add(1);
          }
        }
      }
    });
  }

  // Writers: several daily cycles with a refresh age of 0 would need
  // option plumbing; instead drive ProcessEndpoint directly per shard so
  // every iteration rewrites summaries/clusters under the readers.
  for (int round = 0; round < 4; ++round) {
    for (size_t s = 0; s < world.fleet().num_shards(); ++s) {
      Server& server = world.fleet().shard(s);
      for (const auto& url : world.fleet().registration_order()) {
        if (world.fleet().ShardOf(url) != s) continue;
        auto report = server.ProcessEndpoint(url);
        EXPECT_TRUE(report.ok()) << report.status();
      }
    }
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(observed.load(), 0u);
}

// ------------------------------------------------- drill-down determinism

TEST(DrilldownDeterminismTest, RepeatedQueriesAreByteIdentical) {
  ServingWorld world(1);
  ASSERT_FALSE(world.fleet().RunSimulation(1).days.empty());
  ExplorationService service(&world.fleet(), {});
  ASSERT_EQ(service.RefreshSnapshots(), kEndpoints);
  const DatasetSnapshot& ds = service.catalog().front();
  ASSERT_NE(ds.endpoint, nullptr);
  ASSERT_GT(ds.summary->NodeCount(), 0u);
  const std::string& iri = ds.summary->nodes()[0].iri;

  auto a = drilldown::SampleInstances(ds.endpoint, iri, 5);
  auto b = drilldown::SampleInstances(ds.endpoint, iri, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(a->num_rows(), 0u);
  EXPECT_EQ(a->ToTsv(), b->ToTsv());

  auto instance = a->Cell(0, a->columns()[0]);
  ASSERT_TRUE(instance.has_value());
  auto d1 = drilldown::DescribeResource(ds.endpoint, instance->lexical());
  auto d2 = drilldown::DescribeResource(ds.endpoint, instance->lexical());
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_GT(d1->num_rows(), 0u);
  EXPECT_EQ(d1->ToTsv(), d2->ToTsv());
}

// --------------------------------------- effectiveness tie-break stability

TEST(EffectivenessDeterminismTest, RepeatedTasksAgreeAcrossCopies) {
  ServingWorld world(1);
  ASSERT_FALSE(world.fleet().RunSimulation(1).days.empty());
  ExplorationService service(&world.fleet(), {});
  ASSERT_EQ(service.RefreshSnapshots(), kEndpoints);

  for (const DatasetSnapshot& ds : service.catalog()) {
    // Two independently decoded copies of the same dataset must agree on
    // every task outcome — the comparators behind the cluster ordering
    // are total, so ties cannot flip with sort internals.
    schema::SchemaSummary summary_copy = *ds.summary;
    cluster::ClusterSchema clusters_copy = *ds.clusters;
    EffectivenessSimulator a(*ds.summary, *ds.clusters);
    EffectivenessSimulator b(summary_copy, clusters_copy);
    for (ExplorationStrategy strategy :
         {ExplorationStrategy::kClusterFirst, ExplorationStrategy::kFlatScan}) {
      TaskOutcome pa = a.FindMostPopulatedClass(strategy);
      TaskOutcome pb = b.FindMostPopulatedClass(strategy);
      EXPECT_EQ(pa.interactions, pb.interactions);
      EXPECT_EQ(pa.success, pb.success);
      for (const schema::ClassNode& node : ds.summary->nodes()) {
        TaskOutcome fa = a.FindClassByLabel(node.label, strategy);
        TaskOutcome fb = b.FindClassByLabel(node.label, strategy);
        EXPECT_EQ(fa.interactions, fb.interactions) << node.label;
        EXPECT_EQ(fa.success, fb.success) << node.label;
      }
    }
  }
}

TEST(EffectivenessDeterminismTest, EmptyClusterSchemaIsHandled) {
  schema::SchemaSummary empty_summary;
  cluster::ClusterSchema empty_clusters;
  EffectivenessSimulator sim(empty_summary, empty_clusters);
  for (ExplorationStrategy strategy :
       {ExplorationStrategy::kClusterFirst, ExplorationStrategy::kFlatScan}) {
    TaskOutcome find = sim.FindClassByLabel("Person", strategy);
    EXPECT_FALSE(find.success);
    TaskOutcome top = sim.FindMostPopulatedClass(strategy);
    EXPECT_FALSE(top.success);
    TaskOutcome conn = sim.FindConnection(0, 1, strategy);
    EXPECT_FALSE(conn.success);
  }

  // A real summary paired with an EMPTY cluster schema: cluster-first
  // strategies fall through without crashing and stay deterministic.
  ServingWorld world(1);
  ASSERT_FALSE(world.fleet().RunSimulation(1).days.empty());
  ExplorationService service(&world.fleet(), {});
  ASSERT_GT(service.RefreshSnapshots(), 0u);
  const DatasetSnapshot& ds = service.catalog().front();
  EffectivenessSimulator degenerate(*ds.summary, empty_clusters);
  TaskOutcome first = degenerate.FindMostPopulatedClass(
      ExplorationStrategy::kClusterFirst);
  TaskOutcome second = degenerate.FindMostPopulatedClass(
      ExplorationStrategy::kClusterFirst);
  EXPECT_EQ(first.interactions, second.interactions);
  EXPECT_EQ(first.success, second.success);
}

// ----------------------------------------------- workload generator shape

TEST(ExplorationWorkloadTest, PlansAreSeededAndWellFormed) {
  ExplorationWorkloadOptions options = SmallWorkload();
  std::vector<SessionPlan> a = GenerateSessions(options, 8);
  std::vector<SessionPlan> b = GenerateSessions(options, 8);
  ASSERT_EQ(a.size(), options.sessions);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].dataset_rank, b[i].dataset_rank);
    ASSERT_EQ(a[i].actions.size(), b[i].actions.size());
    // Prologue: list, open, render.
    ASSERT_GE(a[i].actions.size(), 3u + options.min_steps);
    EXPECT_EQ(a[i].actions[0].kind, workload::SessionActionKind::kListDatasets);
    EXPECT_EQ(a[i].actions[1].kind, workload::SessionActionKind::kOpenDataset);
    EXPECT_EQ(a[i].actions[2].kind,
              workload::SessionActionKind::kRenderLayouts);
    for (size_t j = 0; j < a[i].actions.size(); ++j) {
      EXPECT_EQ(a[i].actions[j].kind, b[i].actions[j].kind);
      EXPECT_EQ(a[i].actions[j].pick_a, b[i].actions[j].pick_a);
    }
  }
  // Different seed: different plans.
  options.seed = 999;
  std::vector<SessionPlan> c = GenerateSessions(options, 8);
  bool any_diff = false;
  for (size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a[i].dataset_rank != c[i].dataset_rank ||
               a[i].actions.size() != c[i].actions.size();
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace hbold
