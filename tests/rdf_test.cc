// Unit tests for src/rdf: terms, dictionary, triple store indexes, and the
// N-Triples / Turtle parsers.

#include <gtest/gtest.h>

#include <algorithm>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/turtle.h"
#include "rdf/vocab.h"

namespace hbold::rdf {
namespace {

// ---------------------------------------------------------------- Term

TEST(TermTest, KindsAndAccessors) {
  Term iri = Term::Iri("http://x.org/A");
  Term blank = Term::Blank("b0");
  Term lit = Term::Literal("hello", "", "en");
  EXPECT_TRUE(iri.is_iri());
  EXPECT_TRUE(blank.is_blank());
  EXPECT_TRUE(lit.is_literal());
  EXPECT_EQ(lit.lang(), "en");
}

TEST(TermTest, NTriplesSerialization) {
  EXPECT_EQ(Term::Iri("http://x/A").ToNTriples(), "<http://x/A>");
  EXPECT_EQ(Term::Blank("n1").ToNTriples(), "_:n1");
  EXPECT_EQ(Term::Literal("hi").ToNTriples(), "\"hi\"");
  EXPECT_EQ(Term::Literal("hi", vocab::kRdfLangString, "en").ToNTriples(),
            "\"hi\"@en");
  EXPECT_EQ(Term::IntLiteral(42).ToNTriples(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  EXPECT_EQ(Term::Literal("a\"b\\c\nd").ToNTriples(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(TermTest, XsdStringDatatypeOmittedInSerialization) {
  EXPECT_EQ(Term::Literal("x", vocab::kXsdString).ToNTriples(), "\"x\"");
}

TEST(TermTest, EqualityDistinguishesKindAndDatatype) {
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
  EXPECT_NE(Term::Iri("x"), Term::Blank("x"));
  EXPECT_NE(Term::Literal("1", vocab::kXsdInteger),
            Term::Literal("1", vocab::kXsdDouble));
  EXPECT_NE(Term::Literal("a", "", "en"), Term::Literal("a", "", "fr"));
}

TEST(TermTest, DisplayUsesLocalName) {
  EXPECT_EQ(Term::Iri("http://x.org/onto#Person").ToDisplay(), "Person");
  EXPECT_EQ(Term::Literal("v").ToDisplay(), "\"v\"");
}

TEST(TermTest, TypedLiteralHelpers) {
  EXPECT_EQ(Term::BoolLiteral(true).lexical(), "true");
  EXPECT_EQ(Term::IntLiteral(-3).lexical(), "-3");
  EXPECT_EQ(Term::DoubleLiteral(1.5).datatype(), vocab::kXsdDouble);
}

// ---------------------------------------------------------------- Dictionary

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.Intern(Term::Iri("http://x/A"));
  TermId b = dict.Intern(Term::Iri("http://x/A"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kInvalidTermId);
  EXPECT_EQ(dict.Get(a), Term::Iri("http://x/A"));
}

TEST(DictionaryTest, LookupMissingReturnsInvalid) {
  Dictionary dict;
  EXPECT_EQ(dict.Lookup(Term::Iri("http://nothing")), kInvalidTermId);
}

TEST(DictionaryTest, IdsAreDenseFromOne) {
  Dictionary dict;
  TermId a = dict.Intern(Term::Iri("a"));
  TermId b = dict.Intern(Term::Iri("b"));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(dict.size(), 3u);  // includes reserved slot 0
}

// ---------------------------------------------------------------- TripleStore

class TripleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Small dataset: two Persons, one City; knows/livesIn links.
    store_.Add(A("alice"), P("type"), C("Person"));
    store_.Add(A("bob"), P("type"), C("Person"));
    store_.Add(A("rome"), P("type"), C("City"));
    store_.Add(A("alice"), P("knows"), A("bob"));
    store_.Add(A("alice"), P("livesIn"), A("rome"));
    store_.Add(A("bob"), P("livesIn"), A("rome"));
  }

  static Term A(const std::string& n) { return Term::Iri("http://x/i/" + n); }
  static Term P(const std::string& n) { return Term::Iri("http://x/p/" + n); }
  static Term C(const std::string& n) { return Term::Iri("http://x/c/" + n); }

  TriplePattern Pat(const Term* s, const Term* p, const Term* o) {
    TriplePattern pat;
    if (s) pat.s = store_.dict().Lookup(*s);
    if (p) pat.p = store_.dict().Lookup(*p);
    if (o) pat.o = store_.dict().Lookup(*o);
    return pat;
  }

  TripleStore store_;
};

TEST_F(TripleStoreTest, SizeAndContains) {
  EXPECT_EQ(store_.size(), 6u);
  EXPECT_TRUE(store_.Contains(A("alice"), P("knows"), A("bob")));
  EXPECT_FALSE(store_.Contains(A("bob"), P("knows"), A("alice")));
}

TEST_F(TripleStoreTest, DuplicatesStoredOnce) {
  store_.Add(A("alice"), P("knows"), A("bob"));
  store_.Add(A("alice"), P("knows"), A("bob"));
  EXPECT_EQ(store_.size(), 6u);
}

TEST_F(TripleStoreTest, MatchBySubject) {
  Term alice = A("alice");
  auto rows = store_.MatchAll(Pat(&alice, nullptr, nullptr));
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(TripleStoreTest, MatchByPredicate) {
  Term lives = P("livesIn");
  auto rows = store_.MatchAll(Pat(nullptr, &lives, nullptr));
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TripleStoreTest, MatchByObject) {
  Term rome = A("rome");
  auto rows = store_.MatchAll(Pat(nullptr, nullptr, &rome));
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TripleStoreTest, MatchPredicateObject) {
  Term type = P("type"), person = C("Person");
  auto rows = store_.MatchAll(Pat(nullptr, &type, &person));
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TripleStoreTest, MatchSubjectObjectUsesResidualFilter) {
  Term alice = A("alice"), rome = A("rome");
  auto rows = store_.MatchAll(Pat(&alice, nullptr, &rome));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(store_.dict().Get(rows[0].p), P("livesIn"));
}

TEST_F(TripleStoreTest, FullScanAndEarlyStop) {
  size_t seen = 0;
  store_.Match(TriplePattern{}, [&](const Triple&) {
    ++seen;
    return seen < 4;  // stop early
  });
  EXPECT_EQ(seen, 4u);
}

TEST_F(TripleStoreTest, CountMatchesMatchAll) {
  Term type = P("type");
  EXPECT_EQ(store_.Count(Pat(nullptr, &type, nullptr)), 3u);
  EXPECT_EQ(store_.Count(TriplePattern{}), 6u);
}

TEST_F(TripleStoreTest, DistinctObjectsSortedUnique) {
  TermId type = store_.dict().Lookup(P("type"));
  auto classes = store_.DistinctObjects(type);
  EXPECT_EQ(classes.size(), 2u);
  EXPECT_TRUE(std::is_sorted(classes.begin(), classes.end()));
}

TEST_F(TripleStoreTest, DistinctSubjects) {
  TermId lives = store_.dict().Lookup(P("livesIn"));
  auto subjects = store_.DistinctSubjects(lives);
  EXPECT_EQ(subjects.size(), 2u);
}

TEST_F(TripleStoreTest, UnknownConstantHasNoId) {
  // A term that was never added cannot be expressed as a pattern: Lookup
  // returns the wildcard sentinel, so callers (e.g. the SPARQL executor)
  // must short-circuit to "no matches" themselves.
  Term ghost = A("ghost");
  EXPECT_EQ(store_.dict().Lookup(ghost), kInvalidTermId);
  EXPECT_FALSE(store_.Contains(ghost, P("type"), C("Person")));
}

TEST_F(TripleStoreTest, InsertAfterQueryReindexes) {
  EXPECT_EQ(store_.size(), 6u);  // forces index build
  store_.Add(A("carol"), P("type"), C("Person"));
  Term type = P("type"), person = C("Person");
  EXPECT_EQ(store_.MatchAll(Pat(nullptr, &type, &person)).size(), 3u);
}

// Property-style sweep: random triples — every (s,p,o) pattern subset must
// agree with a brute-force filter.
class TripleStorePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TripleStorePropertyTest, PatternsAgreeWithBruteForce) {
  const int seed = GetParam();
  TripleStore store;
  std::vector<Triple> truth;
  // Deterministic small universe so patterns hit often.
  for (int i = 0; i < 200; ++i) {
    int s = (seed * 7 + i * 13) % 10;
    int p = (seed * 5 + i * 11) % 5;
    int o = (seed * 3 + i * 17) % 12;
    Term st = Term::Iri("s" + std::to_string(s));
    Term pt = Term::Iri("p" + std::to_string(p));
    Term ot = Term::Iri("o" + std::to_string(o));
    store.Add(st, pt, ot);
    truth.push_back(Triple{store.dict().Lookup(st), store.dict().Lookup(pt),
                           store.dict().Lookup(ot)});
  }
  std::sort(truth.begin(), truth.end());
  truth.erase(std::unique(truth.begin(), truth.end()), truth.end());

  for (int mask = 0; mask < 8; ++mask) {
    TriplePattern pat;
    if (mask & 1) pat.s = store.dict().Lookup(Term::Iri("s3"));
    if (mask & 2) pat.p = store.dict().Lookup(Term::Iri("p2"));
    if (mask & 4) pat.o = store.dict().Lookup(Term::Iri("o5"));
    size_t expected = 0;
    for (const Triple& t : truth) {
      if (pat.Matches(t)) ++expected;
    }
    EXPECT_EQ(store.Count(pat), expected) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStorePropertyTest,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------- N-Triples

TEST(NTriplesTest, ParsesBasicTriples) {
  TripleStore store;
  auto n = ParseNTriples(
      "<http://x/a> <http://x/p> <http://x/b> .\n"
      "# comment line\n"
      "\n"
      "<http://x/a> <http://x/q> \"lit\" .\n"
      "_:b0 <http://x/p> \"v\"@en .\n"
      "<http://x/a> <http://x/r> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
      &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(store.size(), 4u);
  EXPECT_TRUE(store.Contains(Term::Iri("http://x/a"), Term::Iri("http://x/q"),
                             Term::Literal("lit")));
}

TEST(NTriplesTest, RejectsMalformedLines) {
  TripleStore store;
  EXPECT_FALSE(ParseNTriples("<a> <b> .", &store).ok());
  EXPECT_FALSE(ParseNTriples("<a> <b> <c>", &store).ok());  // missing dot
  EXPECT_FALSE(ParseNTriples("<a> \"lit\" <c> .", &store).ok());  // pred lit
  EXPECT_FALSE(ParseNTriples("<a> <b> \"unterminated .", &store).ok());
  EXPECT_FALSE(ParseNTriples("<a> <b> <c> . extra", &store).ok());
}

TEST(NTriplesTest, ErrorsIncludeLineNumber) {
  TripleStore store;
  auto r = ParseNTriples("<a> <b> <c> .\nbogus line\n", &store);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, WriterRoundTrips) {
  TripleStore store;
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
            Term::Literal("a \"quoted\" value\nwith newline"));
  store.Add(Term::Blank("b"), Term::Iri("http://x/p"), Term::IntLiteral(7));
  std::string text = WriteNTriples(store);
  TripleStore reparsed;
  auto n = ParseNTriples(text, &reparsed);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(reparsed.size(), store.size());
  EXPECT_EQ(WriteNTriples(reparsed), text);
}

// ---------------------------------------------------------------- Turtle

TEST(TurtleTest, ParsesPrefixesAndLists) {
  TripleStore store;
  auto n = ParseTurtle(R"(
@prefix ex: <http://x.org/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .

ex:alice a foaf:Person ;
    foaf:knows ex:bob, ex:carol ;
    foaf:name "Alice" .
ex:bob a foaf:Person .
)",
                       &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 5u);
  EXPECT_TRUE(store.Contains(Term::Iri("http://x.org/alice"),
                             Term::Iri(vocab::kRdfType),
                             Term::Iri("http://xmlns.com/foaf/0.1/Person")));
  EXPECT_TRUE(store.Contains(Term::Iri("http://x.org/alice"),
                             Term::Iri("http://xmlns.com/foaf/0.1/knows"),
                             Term::Iri("http://x.org/carol")));
}

TEST(TurtleTest, ParsesLiteralFormsAndComments) {
  TripleStore store;
  auto n = ParseTurtle(R"(
@prefix ex: <http://x/> .
# a comment
ex:s ex:int 42 ;         # trailing comment
     ex:dec 3.14 ;
     ex:dbl 1e3 ;
     ex:neg -7 ;
     ex:flag true ;
     ex:lang "ciao"@it ;
     ex:typed "5"^^ex:mytype .
)",
                       &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 7u);
  EXPECT_TRUE(store.Contains(Term::Iri("http://x/s"), Term::Iri("http://x/int"),
                             Term::Literal("42", vocab::kXsdInteger)));
  EXPECT_TRUE(store.Contains(Term::Iri("http://x/s"), Term::Iri("http://x/flag"),
                             Term::BoolLiteral(true)));
  EXPECT_TRUE(store.Contains(Term::Iri("http://x/s"),
                             Term::Iri("http://x/typed"),
                             Term::Literal("5", "http://x/mytype")));
}

TEST(TurtleTest, SparqlStylePrefixKeyword) {
  TripleStore store;
  auto n = ParseTurtle("PREFIX ex: <http://x/>\nex:a ex:p ex:b .", &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 1u);
}

TEST(TurtleTest, UnknownPrefixFails) {
  TripleStore store;
  EXPECT_FALSE(ParseTurtle("nope:a nope:p nope:b .", &store).ok());
}

TEST(TurtleTest, MissingDotFails) {
  TripleStore store;
  EXPECT_FALSE(
      ParseTurtle("@prefix ex: <http://x/> .\nex:a ex:p ex:b", &store).ok());
}

TEST(TurtleTest, BlankNodes) {
  TripleStore store;
  auto n = ParseTurtle("@prefix ex: <http://x/> .\n_:n1 ex:p _:n2 .", &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_TRUE(store.Contains(Term::Blank("n1"), Term::Iri("http://x/p"),
                             Term::Blank("n2")));
}

// ----------------------------------------------- sub-range span primitive

TEST(TripleStoreSpanTest, SpanMatchesMatchAllForEveryBoundCombination) {
  TripleStore store;
  auto iri = [](const std::string& s) { return Term::Iri("http://x/" + s); };
  for (int i = 0; i < 60; ++i) {
    store.Add(iri("s" + std::to_string(i % 7)), iri("p" + std::to_string(i % 3)),
              iri("o" + std::to_string(i % 5)));
  }
  store.FinalizeIndex();
  const Dictionary& dict = store.dict();
  auto id = [&](const std::string& s) { return dict.Lookup(iri(s)); };

  std::vector<TriplePattern> patterns;
  patterns.push_back({});  // full scan
  for (int s = -1; s < 7; ++s) {
    for (int p = -1; p < 3; ++p) {
      for (int o = -1; o < 5; ++o) {
        TriplePattern pat;
        if (s >= 0) pat.s = id("s" + std::to_string(s));
        if (p >= 0) pat.p = id("p" + std::to_string(p));
        if (o >= 0) pat.o = id("o" + std::to_string(o));
        patterns.push_back(pat);
      }
    }
  }
  for (const TriplePattern& pat : patterns) {
    std::vector<Triple> expected = store.MatchAll(pat);
    std::sort(expected.begin(), expected.end());
    TripleSpan span = store.Span(pat);
    // Every span triple matches; the span is exactly the match set; and
    // it arrives sorted in its owning index's order (so within-span
    // sortedness by *some* key is guaranteed — verify the set here).
    std::vector<Triple> got(span.begin(), span.end());
    for (const Triple& t : got) EXPECT_TRUE(pat.Matches(t));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
    EXPECT_EQ(span.size, store.Count(pat));
  }
}

TEST(TripleStoreSpanTest, FullyBoundSpanIsMembership) {
  TripleStore store;
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/p"),
            Term::Iri("http://x/b"));
  store.FinalizeIndex();
  const Dictionary& dict = store.dict();
  TriplePattern hit{dict.Lookup(Term::Iri("http://x/a")),
                    dict.Lookup(Term::Iri("http://x/p")),
                    dict.Lookup(Term::Iri("http://x/b"))};
  EXPECT_EQ(store.Span(hit).size, 1u);
  TriplePattern miss = hit;
  miss.s = hit.o;  // (b, p, b) absent
  EXPECT_EQ(store.Span(miss).size, 0u);
}

TEST(TripleStoreGenerationTest, BumpsOncePerRebuild) {
  TripleStore store;
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/p"),
            Term::Iri("http://x/b"));
  const uint64_t g1 = store.generation();  // triggers first build
  EXPECT_EQ(store.generation(), g1);       // reads do not bump
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/p"),
            Term::Iri("http://x/c"));
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/p"),
            Term::Iri("http://x/d"));
  // Both staged writes fold into ONE rebuild on the next read.
  const uint64_t g2 = store.generation();
  EXPECT_EQ(g2, g1 + 1);
}

}  // namespace
}  // namespace hbold::rdf
