// Unit tests for src/rdf: terms, dictionary, triple store indexes, and the
// N-Triples / Turtle parsers.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rdf/run_file.h"
#include "rdf/term.h"
#include "rdf/turtle.h"
#include "rdf/vocab.h"

namespace hbold::rdf {
namespace {

// ---------------------------------------------------------------- Term

TEST(TermTest, KindsAndAccessors) {
  Term iri = Term::Iri("http://x.org/A");
  Term blank = Term::Blank("b0");
  Term lit = Term::Literal("hello", "", "en");
  EXPECT_TRUE(iri.is_iri());
  EXPECT_TRUE(blank.is_blank());
  EXPECT_TRUE(lit.is_literal());
  EXPECT_EQ(lit.lang(), "en");
}

TEST(TermTest, NTriplesSerialization) {
  EXPECT_EQ(Term::Iri("http://x/A").ToNTriples(), "<http://x/A>");
  EXPECT_EQ(Term::Blank("n1").ToNTriples(), "_:n1");
  EXPECT_EQ(Term::Literal("hi").ToNTriples(), "\"hi\"");
  EXPECT_EQ(Term::Literal("hi", vocab::kRdfLangString, "en").ToNTriples(),
            "\"hi\"@en");
  EXPECT_EQ(Term::IntLiteral(42).ToNTriples(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  EXPECT_EQ(Term::Literal("a\"b\\c\nd").ToNTriples(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(TermTest, XsdStringDatatypeOmittedInSerialization) {
  EXPECT_EQ(Term::Literal("x", vocab::kXsdString).ToNTriples(), "\"x\"");
}

TEST(TermTest, EqualityDistinguishesKindAndDatatype) {
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
  EXPECT_NE(Term::Iri("x"), Term::Blank("x"));
  EXPECT_NE(Term::Literal("1", vocab::kXsdInteger),
            Term::Literal("1", vocab::kXsdDouble));
  EXPECT_NE(Term::Literal("a", "", "en"), Term::Literal("a", "", "fr"));
}

TEST(TermTest, DisplayUsesLocalName) {
  EXPECT_EQ(Term::Iri("http://x.org/onto#Person").ToDisplay(), "Person");
  EXPECT_EQ(Term::Literal("v").ToDisplay(), "\"v\"");
}

TEST(TermTest, TypedLiteralHelpers) {
  EXPECT_EQ(Term::BoolLiteral(true).lexical(), "true");
  EXPECT_EQ(Term::IntLiteral(-3).lexical(), "-3");
  EXPECT_EQ(Term::DoubleLiteral(1.5).datatype(), vocab::kXsdDouble);
}

// ---------------------------------------------------------------- Dictionary

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.Intern(Term::Iri("http://x/A"));
  TermId b = dict.Intern(Term::Iri("http://x/A"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kInvalidTermId);
  EXPECT_EQ(dict.Get(a), Term::Iri("http://x/A"));
}

TEST(DictionaryTest, LookupMissingReturnsInvalid) {
  Dictionary dict;
  EXPECT_EQ(dict.Lookup(Term::Iri("http://nothing")), kInvalidTermId);
}

TEST(DictionaryTest, IdsAreDenseFromOne) {
  Dictionary dict;
  TermId a = dict.Intern(Term::Iri("a"));
  TermId b = dict.Intern(Term::Iri("b"));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(dict.size(), 3u);  // includes reserved slot 0
}

// ---------------------------------------------------------------- TripleStore

class TripleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Small dataset: two Persons, one City; knows/livesIn links.
    store_.Add(A("alice"), P("type"), C("Person"));
    store_.Add(A("bob"), P("type"), C("Person"));
    store_.Add(A("rome"), P("type"), C("City"));
    store_.Add(A("alice"), P("knows"), A("bob"));
    store_.Add(A("alice"), P("livesIn"), A("rome"));
    store_.Add(A("bob"), P("livesIn"), A("rome"));
  }

  static Term A(const std::string& n) { return Term::Iri("http://x/i/" + n); }
  static Term P(const std::string& n) { return Term::Iri("http://x/p/" + n); }
  static Term C(const std::string& n) { return Term::Iri("http://x/c/" + n); }

  TriplePattern Pat(const Term* s, const Term* p, const Term* o) {
    TriplePattern pat;
    if (s) pat.s = store_.dict().Lookup(*s);
    if (p) pat.p = store_.dict().Lookup(*p);
    if (o) pat.o = store_.dict().Lookup(*o);
    return pat;
  }

  TripleStore store_;
};

TEST_F(TripleStoreTest, SizeAndContains) {
  EXPECT_EQ(store_.size(), 6u);
  EXPECT_TRUE(store_.Contains(A("alice"), P("knows"), A("bob")));
  EXPECT_FALSE(store_.Contains(A("bob"), P("knows"), A("alice")));
}

TEST_F(TripleStoreTest, DuplicatesStoredOnce) {
  store_.Add(A("alice"), P("knows"), A("bob"));
  store_.Add(A("alice"), P("knows"), A("bob"));
  EXPECT_EQ(store_.size(), 6u);
}

TEST_F(TripleStoreTest, MatchBySubject) {
  Term alice = A("alice");
  auto rows = store_.MatchAll(Pat(&alice, nullptr, nullptr));
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(TripleStoreTest, MatchByPredicate) {
  Term lives = P("livesIn");
  auto rows = store_.MatchAll(Pat(nullptr, &lives, nullptr));
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TripleStoreTest, MatchByObject) {
  Term rome = A("rome");
  auto rows = store_.MatchAll(Pat(nullptr, nullptr, &rome));
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TripleStoreTest, MatchPredicateObject) {
  Term type = P("type"), person = C("Person");
  auto rows = store_.MatchAll(Pat(nullptr, &type, &person));
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TripleStoreTest, MatchSubjectObjectUsesResidualFilter) {
  Term alice = A("alice"), rome = A("rome");
  auto rows = store_.MatchAll(Pat(&alice, nullptr, &rome));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(store_.dict().Get(rows[0].p), P("livesIn"));
}

TEST_F(TripleStoreTest, FullScanAndEarlyStop) {
  size_t seen = 0;
  store_.Match(TriplePattern{}, [&](const Triple&) {
    ++seen;
    return seen < 4;  // stop early
  });
  EXPECT_EQ(seen, 4u);
}

TEST_F(TripleStoreTest, CountMatchesMatchAll) {
  Term type = P("type");
  EXPECT_EQ(store_.Count(Pat(nullptr, &type, nullptr)), 3u);
  EXPECT_EQ(store_.Count(TriplePattern{}), 6u);
}

TEST_F(TripleStoreTest, DistinctObjectsSortedUnique) {
  TermId type = store_.dict().Lookup(P("type"));
  auto classes = store_.DistinctObjects(type);
  EXPECT_EQ(classes.size(), 2u);
  EXPECT_TRUE(std::is_sorted(classes.begin(), classes.end()));
}

TEST_F(TripleStoreTest, DistinctSubjects) {
  TermId lives = store_.dict().Lookup(P("livesIn"));
  auto subjects = store_.DistinctSubjects(lives);
  EXPECT_EQ(subjects.size(), 2u);
}

TEST_F(TripleStoreTest, UnknownConstantHasNoId) {
  // A term that was never added cannot be expressed as a pattern: Lookup
  // returns the wildcard sentinel, so callers (e.g. the SPARQL executor)
  // must short-circuit to "no matches" themselves.
  Term ghost = A("ghost");
  EXPECT_EQ(store_.dict().Lookup(ghost), kInvalidTermId);
  EXPECT_FALSE(store_.Contains(ghost, P("type"), C("Person")));
}

TEST_F(TripleStoreTest, InsertAfterQueryReindexes) {
  EXPECT_EQ(store_.size(), 6u);  // forces index build
  store_.Add(A("carol"), P("type"), C("Person"));
  Term type = P("type"), person = C("Person");
  EXPECT_EQ(store_.MatchAll(Pat(nullptr, &type, &person)).size(), 3u);
}

// Property-style sweep: random triples — every (s,p,o) pattern subset must
// agree with a brute-force filter.
class TripleStorePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TripleStorePropertyTest, PatternsAgreeWithBruteForce) {
  const int seed = GetParam();
  TripleStore store;
  std::vector<Triple> truth;
  // Deterministic small universe so patterns hit often.
  for (int i = 0; i < 200; ++i) {
    int s = (seed * 7 + i * 13) % 10;
    int p = (seed * 5 + i * 11) % 5;
    int o = (seed * 3 + i * 17) % 12;
    Term st = Term::Iri("s" + std::to_string(s));
    Term pt = Term::Iri("p" + std::to_string(p));
    Term ot = Term::Iri("o" + std::to_string(o));
    store.Add(st, pt, ot);
    truth.push_back(Triple{store.dict().Lookup(st), store.dict().Lookup(pt),
                           store.dict().Lookup(ot)});
  }
  std::sort(truth.begin(), truth.end());
  truth.erase(std::unique(truth.begin(), truth.end()), truth.end());

  for (int mask = 0; mask < 8; ++mask) {
    TriplePattern pat;
    if (mask & 1) pat.s = store.dict().Lookup(Term::Iri("s3"));
    if (mask & 2) pat.p = store.dict().Lookup(Term::Iri("p2"));
    if (mask & 4) pat.o = store.dict().Lookup(Term::Iri("o5"));
    size_t expected = 0;
    for (const Triple& t : truth) {
      if (pat.Matches(t)) ++expected;
    }
    EXPECT_EQ(store.Count(pat), expected) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStorePropertyTest,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------- N-Triples

TEST(NTriplesTest, ParsesBasicTriples) {
  TripleStore store;
  auto n = ParseNTriples(
      "<http://x/a> <http://x/p> <http://x/b> .\n"
      "# comment line\n"
      "\n"
      "<http://x/a> <http://x/q> \"lit\" .\n"
      "_:b0 <http://x/p> \"v\"@en .\n"
      "<http://x/a> <http://x/r> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
      &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(store.size(), 4u);
  EXPECT_TRUE(store.Contains(Term::Iri("http://x/a"), Term::Iri("http://x/q"),
                             Term::Literal("lit")));
}

TEST(NTriplesTest, RejectsMalformedLines) {
  TripleStore store;
  EXPECT_FALSE(ParseNTriples("<a> <b> .", &store).ok());
  EXPECT_FALSE(ParseNTriples("<a> <b> <c>", &store).ok());  // missing dot
  EXPECT_FALSE(ParseNTriples("<a> \"lit\" <c> .", &store).ok());  // pred lit
  EXPECT_FALSE(ParseNTriples("<a> <b> \"unterminated .", &store).ok());
  EXPECT_FALSE(ParseNTriples("<a> <b> <c> . extra", &store).ok());
}

TEST(NTriplesTest, ErrorsIncludeLineNumber) {
  TripleStore store;
  auto r = ParseNTriples("<a> <b> <c> .\nbogus line\n", &store);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, WriterRoundTrips) {
  TripleStore store;
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
            Term::Literal("a \"quoted\" value\nwith newline"));
  store.Add(Term::Blank("b"), Term::Iri("http://x/p"), Term::IntLiteral(7));
  std::string text = WriteNTriples(store);
  TripleStore reparsed;
  auto n = ParseNTriples(text, &reparsed);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(reparsed.size(), store.size());
  EXPECT_EQ(WriteNTriples(reparsed), text);
}

// ---------------------------------------------------------------- Turtle

TEST(TurtleTest, ParsesPrefixesAndLists) {
  TripleStore store;
  auto n = ParseTurtle(R"(
@prefix ex: <http://x.org/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .

ex:alice a foaf:Person ;
    foaf:knows ex:bob, ex:carol ;
    foaf:name "Alice" .
ex:bob a foaf:Person .
)",
                       &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 5u);
  EXPECT_TRUE(store.Contains(Term::Iri("http://x.org/alice"),
                             Term::Iri(vocab::kRdfType),
                             Term::Iri("http://xmlns.com/foaf/0.1/Person")));
  EXPECT_TRUE(store.Contains(Term::Iri("http://x.org/alice"),
                             Term::Iri("http://xmlns.com/foaf/0.1/knows"),
                             Term::Iri("http://x.org/carol")));
}

TEST(TurtleTest, ParsesLiteralFormsAndComments) {
  TripleStore store;
  auto n = ParseTurtle(R"(
@prefix ex: <http://x/> .
# a comment
ex:s ex:int 42 ;         # trailing comment
     ex:dec 3.14 ;
     ex:dbl 1e3 ;
     ex:neg -7 ;
     ex:flag true ;
     ex:lang "ciao"@it ;
     ex:typed "5"^^ex:mytype .
)",
                       &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 7u);
  EXPECT_TRUE(store.Contains(Term::Iri("http://x/s"), Term::Iri("http://x/int"),
                             Term::Literal("42", vocab::kXsdInteger)));
  EXPECT_TRUE(store.Contains(Term::Iri("http://x/s"), Term::Iri("http://x/flag"),
                             Term::BoolLiteral(true)));
  EXPECT_TRUE(store.Contains(Term::Iri("http://x/s"),
                             Term::Iri("http://x/typed"),
                             Term::Literal("5", "http://x/mytype")));
}

TEST(TurtleTest, SparqlStylePrefixKeyword) {
  TripleStore store;
  auto n = ParseTurtle("PREFIX ex: <http://x/>\nex:a ex:p ex:b .", &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 1u);
}

TEST(TurtleTest, UnknownPrefixFails) {
  TripleStore store;
  EXPECT_FALSE(ParseTurtle("nope:a nope:p nope:b .", &store).ok());
}

TEST(TurtleTest, MissingDotFails) {
  TripleStore store;
  EXPECT_FALSE(
      ParseTurtle("@prefix ex: <http://x/> .\nex:a ex:p ex:b", &store).ok());
}

TEST(TurtleTest, BlankNodes) {
  TripleStore store;
  auto n = ParseTurtle("@prefix ex: <http://x/> .\n_:n1 ex:p _:n2 .", &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_TRUE(store.Contains(Term::Blank("n1"), Term::Iri("http://x/p"),
                             Term::Blank("n2")));
}

// ----------------------------------------------- sub-range span primitive

TEST(TripleStoreSpanTest, SpanMatchesMatchAllForEveryBoundCombination) {
  TripleStore store;
  auto iri = [](const std::string& s) { return Term::Iri("http://x/" + s); };
  for (int i = 0; i < 60; ++i) {
    store.Add(iri("s" + std::to_string(i % 7)), iri("p" + std::to_string(i % 3)),
              iri("o" + std::to_string(i % 5)));
  }
  store.FinalizeIndex();
  const Dictionary& dict = store.dict();
  auto id = [&](const std::string& s) { return dict.Lookup(iri(s)); };

  std::vector<TriplePattern> patterns;
  patterns.push_back({});  // full scan
  for (int s = -1; s < 7; ++s) {
    for (int p = -1; p < 3; ++p) {
      for (int o = -1; o < 5; ++o) {
        TriplePattern pat;
        if (s >= 0) pat.s = id("s" + std::to_string(s));
        if (p >= 0) pat.p = id("p" + std::to_string(p));
        if (o >= 0) pat.o = id("o" + std::to_string(o));
        patterns.push_back(pat);
      }
    }
  }
  for (const TriplePattern& pat : patterns) {
    std::vector<Triple> expected = store.MatchAll(pat);
    std::sort(expected.begin(), expected.end());
    TripleSpan span = store.Span(pat);
    // Every span triple matches; the span is exactly the match set; and
    // it arrives sorted in its owning index's order (so within-span
    // sortedness by *some* key is guaranteed — verify the set here).
    std::vector<Triple> got(span.begin(), span.end());
    for (const Triple& t : got) EXPECT_TRUE(pat.Matches(t));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
    EXPECT_EQ(span.size, store.Count(pat));
  }
}

TEST(TripleStoreSpanTest, FullyBoundSpanIsMembership) {
  TripleStore store;
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/p"),
            Term::Iri("http://x/b"));
  store.FinalizeIndex();
  const Dictionary& dict = store.dict();
  TriplePattern hit{dict.Lookup(Term::Iri("http://x/a")),
                    dict.Lookup(Term::Iri("http://x/p")),
                    dict.Lookup(Term::Iri("http://x/b"))};
  EXPECT_EQ(store.Span(hit).size, 1u);
  TriplePattern miss = hit;
  miss.s = hit.o;  // (b, p, b) absent
  EXPECT_EQ(store.Span(miss).size, 0u);
}

TEST(TripleStoreGenerationTest, BumpsOncePerRebuild) {
  TripleStore store;
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/p"),
            Term::Iri("http://x/b"));
  const uint64_t g1 = store.generation();  // triggers first build
  EXPECT_EQ(store.generation(), g1);       // reads do not bump
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/p"),
            Term::Iri("http://x/c"));
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/p"),
            Term::Iri("http://x/d"));
  // Both staged writes fold into ONE rebuild on the next read.
  const uint64_t g2 = store.generation();
  EXPECT_EQ(g2, g1 + 1);
}

// ------------------------------------------------------------- run files

namespace fs = std::filesystem;

std::vector<Triple> SyntheticTriples(size_t n, uint32_t seed) {
  // Deterministic LCG; collisions are intentional (dedup paths).
  std::vector<Triple> out;
  out.reserve(n);
  uint64_t x = seed * 2654435761u + 1;
  for (size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    TermId s = static_cast<TermId>(1 + ((x >> 13) % 997));
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    TermId p = static_cast<TermId>(1 + ((x >> 17) % 23));
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    TermId o = static_cast<TermId>(1 + ((x >> 11) % 1499));
    out.push_back(Triple{s, p, o});
  }
  return out;
}

TEST(RunFileTest, WriteMapRoundTrip) {
  fs::path dir = fs::temp_directory_path() / "hbold_run_file_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::vector<Triple> data = SyntheticTriples(5000, 42);
  std::sort(data.begin(), data.end());
  data.erase(std::unique(data.begin(), data.end()), data.end());

  const std::string path = (dir / "spo-1.run").string();
  RunWriter writer;
  ASSERT_TRUE(writer.Open(path, RunOrder::kSpo).ok());
  for (const Triple& t : data) ASSERT_TRUE(writer.Append(t).ok());
  MappedTripleRun run;
  ASSERT_TRUE(writer.Finish(&run).ok());
  ASSERT_EQ(run.count(), data.size());
  EXPECT_TRUE(std::equal(run.view().begin(), run.view().end(), data.begin()));
  run.Close();

  // Re-open from disk.
  MappedTripleRun reopened;
  ASSERT_TRUE(reopened.Open(path).ok());
  EXPECT_TRUE(
      std::equal(reopened.view().begin(), reopened.view().end(), data.begin()));
  reopened.Close();
  fs::remove_all(dir);
}

TEST(RunFileTest, CorruptedOrTruncatedRunRejected) {
  fs::path dir = fs::temp_directory_path() / "hbold_run_corrupt_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "spo-1.run").string();

  std::vector<Triple> data = SyntheticTriples(100, 7);
  std::sort(data.begin(), data.end());
  data.erase(std::unique(data.begin(), data.end()), data.end());
  RunWriter writer;
  ASSERT_TRUE(writer.Open(path, RunOrder::kSpo).ok());
  for (const Triple& t : data) ASSERT_TRUE(writer.Append(t).ok());
  ASSERT_TRUE(writer.Finish().ok());

  // Flip a header byte: checksum must reject.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(9);
    char c = 'X';
    f.write(&c, 1);
  }
  MappedTripleRun bad;
  EXPECT_FALSE(bad.Open(path).ok());

  // Rebuild, then truncate the triple payload: size check must reject.
  ASSERT_TRUE(writer.Open(path, RunOrder::kSpo).ok());
  for (const Triple& t : data) ASSERT_TRUE(writer.Append(t).ok());
  ASSERT_TRUE(writer.Finish().ok());
  fs::resize_file(path, fs::file_size(path) - 7);
  EXPECT_FALSE(bad.Open(path).ok());
  fs::remove_all(dir);
}

TEST(RunFileTest, DeltaChunkRoundTrip) {
  fs::path dir = fs::temp_directory_path() / "hbold_chunk_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  for (RunOrder order : {RunOrder::kSpo, RunOrder::kPos, RunOrder::kOsp}) {
    std::vector<Triple> data = SyntheticTriples(3000, 11);
    std::sort(data.begin(), data.end(), [&](const Triple& a, const Triple& b) {
      return RunLess(order, a, b);
    });
    data.erase(std::unique(data.begin(), data.end()), data.end());
    const std::string path =
        (dir / ("chunk-" + std::to_string(static_cast<int>(order)))).string();
    ASSERT_TRUE(WriteDeltaChunk(path, order, data.data(), data.size()).ok());

    DeltaChunkReader reader;
    ASSERT_TRUE(reader.Open(path).ok());
    EXPECT_EQ(reader.order(), order);
    std::vector<Triple> decoded;
    Triple t;
    while (reader.Next(&t)) decoded.push_back(t);
    ASSERT_TRUE(reader.status().ok());
    EXPECT_EQ(decoded, data);
  }
  fs::remove_all(dir);
}

TEST(RunFileTest, ExternalSortUnderTinyBudget) {
  fs::path dir = fs::temp_directory_path() / "hbold_extsort_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::vector<Triple> data = SyntheticTriples(20000, 3);
  std::sort(data.begin(), data.end());
  data.erase(std::unique(data.begin(), data.end()), data.end());

  // Budget 1 byte -> minimum fragment capacity -> multi-chunk k-way merge.
  MappedTripleRun run;
  ASSERT_TRUE(ExternalSortToRun(TripleSpan{data.data(), data.size()},
                                RunOrder::kOsp, 1, dir.string(),
                                (dir / "osp.run").string(), &run)
                  .ok());
  std::vector<Triple> expected = data;
  std::sort(expected.begin(), expected.end(),
            [](const Triple& a, const Triple& b) {
              return RunLess(RunOrder::kOsp, a, b);
            });
  ASSERT_EQ(run.count(), expected.size());
  EXPECT_TRUE(
      std::equal(run.view().begin(), run.view().end(), expected.begin()));
  run.Close();
  fs::remove_all(dir);
}

// ------------------------------------------------------------ disk backend

/// Differential oracle: the disk-backed store must be observably identical
/// to an in-RAM store fed the same write sequence, across incremental adds,
/// removals, and staging spills.
TEST(DiskBackendTest, DifferentialAgainstInRam) {
  fs::path dir = fs::temp_directory_path() / "hbold_disk_backend_test";
  fs::remove_all(dir);

  TripleStore ram;
  TripleStore disk;
  auto add_both = [&](const Triple& t) {
    ram.AddIds(t.s, t.p, t.o);
    disk.AddIds(t.s, t.p, t.o);
  };
  auto remove_both = [&](const Triple& t) {
    ram.RemoveIds(t.s, t.p, t.o);
    disk.RemoveIds(t.s, t.p, t.o);
  };
  auto check_equal = [&](const char* where) {
    SCOPED_TRACE(where);
    ASSERT_EQ(disk.size(), ram.size());
    TriplePattern all;
    EXPECT_EQ(disk.MatchAll(all), ram.MatchAll(all));
    // Every bound-combination over a probe set drawn from the content.
    std::vector<Triple> probes = ram.MatchAll(all);
    const size_t stride = std::max<size_t>(1, probes.size() / 13);
    for (size_t i = 0; i < probes.size(); i += stride) {
      const Triple& t = probes[i];
      for (int mask = 1; mask < 8; ++mask) {
        TriplePattern pat;
        if (mask & 1) pat.s = t.s;
        if (mask & 2) pat.p = t.p;
        if (mask & 4) pat.o = t.o;
        EXPECT_EQ(disk.Count(pat), ram.Count(pat)) << "mask=" << mask;
        EXPECT_EQ(disk.MatchAll(pat), ram.MatchAll(pat)) << "mask=" << mask;
        rdf::TripleSpan ds = disk.Span(pat);
        rdf::TripleSpan rs = ram.Span(pat);
        EXPECT_TRUE(std::equal(ds.begin(), ds.end(), rs.begin(), rs.end()))
            << "mask=" << mask;
        for (TriplePos pos : {TriplePos::kS, TriplePos::kP, TriplePos::kO}) {
          EXPECT_EQ(disk.CountDistinct(pat, pos), ram.CountDistinct(pat, pos));
        }
      }
      EXPECT_EQ(disk.GroupedCountByObject(t.p), ram.GroupedCountByObject(t.p));
      PredicateStats dstats = disk.StatsForPredicate(t.p);
      PredicateStats rstats = ram.StatsForPredicate(t.p);
      EXPECT_EQ(dstats.triples, rstats.triples);
      EXPECT_EQ(dstats.distinct_subjects, rstats.distinct_subjects);
      EXPECT_EQ(dstats.distinct_objects, rstats.distinct_objects);
      EXPECT_EQ(dstats.exact, rstats.exact);
    }
  };

  // Initial bulk load happens in RAM, then converts.
  std::vector<Triple> initial = SyntheticTriples(6000, 1);
  for (const Triple& t : initial) add_both(t);
  DiskBackendOptions options;
  options.directory = (dir / "runs").string();
  options.memory_budget_bytes = 1;  // minimum staging/fragment capacities
  ASSERT_TRUE(disk.EnableDiskBackend(options).ok());
  EXPECT_TRUE(disk.on_disk());
  EXPECT_FALSE(ram.on_disk());
  EXPECT_FALSE(disk.EnableDiskBackend(options).ok());  // double enable
  check_equal("after conversion");

  // Incremental batch large enough to force staging spills (capacity
  // floor is 4096 triples at the minimum budget).
  std::vector<Triple> day2 = SyntheticTriples(9000, 2);
  for (const Triple& t : day2) add_both(t);
  // Remove a slice of the initial batch in the same staged generation —
  // removals must win over same-batch re-adds.
  for (size_t i = 0; i < initial.size(); i += 5) {
    add_both(initial[i]);  // re-add, then remove: removal wins
    remove_both(initial[i]);
  }
  check_equal("after incremental batch with removals");

  // One more small batch: merges against the previous run generation.
  std::vector<Triple> day3 = SyntheticTriples(500, 3);
  for (const Triple& t : day3) add_both(t);
  check_equal("after second incremental batch");

  // The scratch directory holds exactly the three current runs — chunks
  // and previous generations are cleaned up.
  size_t run_files = 0;
  for (const auto& entry : fs::directory_iterator(dir / "runs")) {
    EXPECT_EQ(entry.path().extension(), ".run") << entry.path();
    ++run_files;
  }
  EXPECT_EQ(run_files, 3u);
  fs::remove_all(dir);
}

// --------------------------------------------------------- sampled stats

/// Regression for the documented PredicateStats contract: CountDistinct
/// must never serve sampled (`exact == false`) figures as query answers.
/// Drives a store across the sampling threshold with incremental loads and
/// checks every predicate against brute force; asserts the sampled path was
/// actually exercised so the test cannot pass vacuously.
TEST(TripleStoreStatsTest, SampledStatsNeverServedByCountDistinct) {
  TripleStore store;
  store.SetStatsSamplingThreshold(4096);

  // Bulk load past the threshold: wide predicate ranges (hundreds of
  // object groups) so the capped boundary walk cannot cover them exactly.
  std::vector<Triple> bulk = SyntheticTriples(6000, 21);
  for (const Triple& t : bulk) store.AddIds(t.s, t.p, t.o);
  store.FinalizeIndex();

  // Straddle: a small batch (batch * 8 <= indexed size) after the bulk
  // load takes the sampled refresh path again.
  std::vector<Triple> extra = SyntheticTriples(300, 22);
  for (const Triple& t : extra) store.AddIds(t.s, t.p, t.o);

  TriplePattern all;
  std::vector<Triple> truth = store.MatchAll(all);
  std::set<TermId> predicates;
  for (const Triple& t : truth) predicates.insert(t.p);

  size_t sampled_predicates = 0;
  for (TermId p : predicates) {
    PredicateStats stats = store.StatsForPredicate(p);
    if (!stats.exact) ++sampled_predicates;

    std::set<TermId> subjects;
    std::set<TermId> objects;
    size_t triples = 0;
    for (const Triple& t : truth) {
      if (t.p != p) continue;
      ++triples;
      subjects.insert(t.s);
      objects.insert(t.o);
    }
    EXPECT_EQ(stats.triples, triples);  // exact even in sampled refreshes

    TriplePattern pat;
    pat.p = p;
    EXPECT_EQ(store.CountDistinct(pat, TriplePos::kS), subjects.size())
        << "predicate " << p;
    EXPECT_EQ(store.CountDistinct(pat, TriplePos::kO), objects.size())
        << "predicate " << p;
  }
  // The refresh after the incremental batch was sampled, and at least one
  // predicate's figures were genuinely inexact — the assertions above
  // exercised the fallback, not the cached-stats fast path.
  EXPECT_GT(sampled_predicates, 0u);
}

}  // namespace
}  // namespace hbold::rdf
