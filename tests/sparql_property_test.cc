// Property suite: the SPARQL executor's BGP join semantics are checked
// against a brute-force oracle on randomized stores and randomized
// two/three-pattern queries, across seeds. Also covers solution-modifier
// edge cases that the example-driven tests miss.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rdf/vocab.h"
#include "sparql/executor.h"

namespace hbold::sparql {
namespace {

using rdf::Term;

/// A tiny universe so joins happen often.
struct Universe {
  rdf::TripleStore store;
  std::vector<std::string> subjects;   // IRIs
  std::vector<std::string> predicates;
  std::vector<std::string> objects;
};

Universe MakeUniverse(uint64_t seed) {
  Universe u;
  Rng rng(seed);
  for (int i = 0; i < 8; ++i) u.subjects.push_back("http://u/s" + std::to_string(i));
  for (int i = 0; i < 4; ++i) u.predicates.push_back("http://u/p" + std::to_string(i));
  // Objects overlap with subjects so chains exist.
  u.objects = u.subjects;
  u.objects.push_back("http://u/o_only");

  size_t triples = 40 + rng.Uniform(60);
  for (size_t t = 0; t < triples; ++t) {
    u.store.Add(Term::Iri(rng.Choice(u.subjects)),
                Term::Iri(rng.Choice(u.predicates)),
                Term::Iri(rng.Choice(u.objects)));
  }
  return u;
}

/// One pattern slot: -1 = variable (index into var names), else constant
/// index into the respective pool.
struct OraclePattern {
  int s, p, o;  // >= 0: constant pool index; < 0: -(var_id + 1)
};

/// Brute-force evaluation of a conjunction of patterns over all triples.
std::set<std::vector<std::string>> OracleEval(
    const Universe& u, const std::vector<OraclePattern>& patterns,
    size_t num_vars) {
  std::vector<rdf::Triple> all = u.store.MatchAll(rdf::TriplePattern{});
  std::set<std::vector<std::string>> results;
  // Depth-first over pattern assignments.
  std::vector<std::string> binding(num_vars);
  std::vector<bool> bound(num_vars, false);

  std::function<void(size_t)> recurse = [&](size_t pi) {
    if (pi == patterns.size()) {
      std::vector<std::string> row(num_vars);
      for (size_t v = 0; v < num_vars; ++v) row[v] = binding[v];
      results.insert(row);
      return;
    }
    const OraclePattern& pat = patterns[pi];
    for (const rdf::Triple& t : all) {
      std::string s = u.store.dict().Get(t.s).lexical();
      std::string p = u.store.dict().Get(t.p).lexical();
      std::string o = u.store.dict().Get(t.o).lexical();
      auto try_slot = [&](int spec, const std::string& value,
                          const std::vector<std::string>& pool,
                          std::vector<size_t>* newly) {
        if (spec >= 0) return pool[static_cast<size_t>(spec)] == value;
        size_t var = static_cast<size_t>(-spec - 1);
        if (bound[var]) return binding[var] == value;
        bound[var] = true;
        binding[var] = value;
        newly->push_back(var);
        return true;
      };
      std::vector<size_t> newly;
      bool ok = try_slot(pat.s, s, u.subjects, &newly) &&
                try_slot(pat.p, p, u.predicates, &newly) &&
                try_slot(pat.o, o, u.objects, &newly);
      if (ok) recurse(pi + 1);
      for (size_t v : newly) bound[v] = false;
    }
  };
  recurse(0);
  return results;
}

/// Renders the oracle patterns as a SPARQL query over vars ?v0..?vN.
std::string RenderQuery(const Universe& u,
                        const std::vector<OraclePattern>& patterns,
                        size_t num_vars) {
  std::string q = "SELECT";
  for (size_t v = 0; v < num_vars; ++v) q += " ?v" + std::to_string(v);
  q += " WHERE {\n";
  auto slot = [&](int spec, const std::vector<std::string>& pool) {
    if (spec >= 0) return "<" + pool[static_cast<size_t>(spec)] + ">";
    return "?v" + std::to_string(-spec - 1);
  };
  for (const OraclePattern& pat : patterns) {
    q += "  " + slot(pat.s, u.subjects) + " " + slot(pat.p, u.predicates) +
         " " + slot(pat.o, u.objects) + " .\n";
  }
  q += "}";
  return q;
}

class SparqlOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparqlOracleTest, ExecutorAgreesWithBruteForce) {
  Universe u = MakeUniverse(GetParam());
  Rng rng(GetParam() * 31 + 7);

  for (int trial = 0; trial < 12; ++trial) {
    // Random query: 1-3 patterns over up to 3 variables, every variable
    // used at least once by construction (slots pick vars with p=0.5).
    size_t num_vars = 1 + rng.Uniform(3);
    size_t num_patterns = 1 + rng.Uniform(3);
    std::vector<OraclePattern> patterns;
    std::set<int> used_vars;
    for (size_t i = 0; i < num_patterns; ++i) {
      auto slot = [&](const std::vector<std::string>& pool) -> int {
        if (rng.Chance(0.5)) {
          int var = static_cast<int>(rng.Uniform(num_vars));
          used_vars.insert(var);
          return -(var + 1);
        }
        return static_cast<int>(rng.Uniform(pool.size()));
      };
      patterns.push_back(OraclePattern{slot(u.subjects), slot(u.predicates),
                                       slot(u.objects)});
    }
    // Ensure all projected vars appear (rebind unused ones onto the first
    // pattern's subject to keep the query well-formed).
    for (size_t v = 0; v < num_vars; ++v) {
      if (used_vars.count(static_cast<int>(v)) == 0) {
        patterns[0].s = -(static_cast<int>(v) + 1);
        used_vars.insert(static_cast<int>(v));
      }
    }

    std::string query = RenderQuery(u, patterns, num_vars);
    Executor executor(&u.store);
    auto result = executor.Execute(query);
    ASSERT_TRUE(result.ok()) << query << "\n" << result.status();

    std::set<std::vector<std::string>> expected =
        OracleEval(u, patterns, num_vars);
    std::set<std::vector<std::string>> actual;
    for (const auto& row : result->rows()) {
      std::vector<std::string> r;
      for (const auto& cell : row) {
        r.push_back(cell.has_value() ? cell->lexical() : "");
      }
      actual.insert(r);
    }
    // The executor returns bags; compare as sets (oracle is set-based).
    EXPECT_EQ(actual, expected) << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparqlOracleTest,
                         ::testing::Range<uint64_t>(0, 10));

// ------------------------------------------------- modifier edge cases

TEST(SparqlEdgeTest, OffsetBeyondResultIsEmpty) {
  Universe u = MakeUniverse(1);
  Executor ex(&u.store);
  auto r = ex.Execute("SELECT ?s WHERE { ?s ?p ?o . } OFFSET 100000");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
}

TEST(SparqlEdgeTest, LimitZeroIsEmpty) {
  Universe u = MakeUniverse(2);
  Executor ex(&u.store);
  auto r = ex.Execute("SELECT ?s WHERE { ?s ?p ?o . } LIMIT 0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
}

TEST(SparqlEdgeTest, MultiKeyOrderByIsStable) {
  rdf::TripleStore store;
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/k"),
            Term::IntLiteral(2));
  store.Add(Term::Iri("http://x/b"), Term::Iri("http://x/k"),
            Term::IntLiteral(1));
  store.Add(Term::Iri("http://x/c"), Term::Iri("http://x/k"),
            Term::IntLiteral(1));
  Executor ex(&store);
  auto r = ex.Execute(
      "SELECT ?s ?v WHERE { ?s <http://x/k> ?v . } ORDER BY ?v DESC(?s)");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->Cell(0, "s")->lexical(), "http://x/c");
  EXPECT_EQ(r->Cell(1, "s")->lexical(), "http://x/b");
  EXPECT_EQ(r->Cell(2, "s")->lexical(), "http://x/a");
}

TEST(SparqlEdgeTest, NestedOptionals) {
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseNTriples(
                  "<http://x/a> <http://x/p> <http://x/b> .\n"
                  "<http://x/b> <http://x/q> <http://x/c> .\n"
                  "<http://x/d> <http://x/p> <http://x/e> .\n",
                  &store)
                  .ok());
  Executor ex(&store);
  auto r = ex.Execute(R"(
SELECT ?a ?b ?c WHERE {
  ?a <http://x/p> ?b .
  OPTIONAL { ?b <http://x/q> ?c . }
})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->num_rows(), 2u);
  size_t with_c = 0;
  for (size_t i = 0; i < r->num_rows(); ++i) {
    if (r->Cell(i, "c").has_value()) ++with_c;
  }
  EXPECT_EQ(with_c, 1u);
}

TEST(SparqlEdgeTest, UnionBranchesWithFilters) {
  rdf::TripleStore store;
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/k"),
            Term::IntLiteral(5));
  store.Add(Term::Iri("http://x/b"), Term::Iri("http://x/k"),
            Term::IntLiteral(50));
  Executor ex(&store);
  auto r = ex.Execute(R"(
SELECT ?s WHERE {
  { ?s <http://x/k> ?v . FILTER (?v < 10) . }
  UNION
  { ?s <http://x/k> ?v . FILTER (?v > 40) . }
})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->num_rows(), 2u);
}

TEST(SparqlEdgeTest, GroupByMultipleKeys) {
  rdf::TripleStore store;
  auto add = [&](const char* s, const char* cls, const char* city) {
    store.Add(Term::Iri(s), Term::Iri(rdf::vocab::kRdfType), Term::Iri(cls));
    store.Add(Term::Iri(s), Term::Iri("http://x/in"), Term::Iri(city));
  };
  add("http://x/1", "http://x/A", "http://x/rome");
  add("http://x/2", "http://x/A", "http://x/rome");
  add("http://x/3", "http://x/A", "http://x/milan");
  add("http://x/4", "http://x/B", "http://x/rome");
  Executor ex(&store);
  auto r = ex.Execute(R"(
SELECT ?c ?city (COUNT(?s) AS ?n) WHERE {
  ?s a ?c . ?s <http://x/in> ?city .
} GROUP BY ?c ?city ORDER BY DESC(?n))");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->Cell(0, "n")->lexical(), "2");
}

// ------------------------------------------------- ASK form

TEST(AskTest, TrueWhenPatternMatches) {
  Universe u = MakeUniverse(4);
  Executor ex(&u.store);
  auto r = ex.Execute("ASK { ?s ?p ?o . }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->AskResult(), true);
}

TEST(AskTest, FalseOnEmptyStoreOrNoMatch) {
  rdf::TripleStore empty;
  Executor ex(&empty);
  auto r = ex.Execute("ASK { ?s ?p ?o . }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AskResult(), false);

  Universe u = MakeUniverse(5);
  Executor ex2(&u.store);
  auto r2 = ex2.Execute("ASK { ?s <http://nope/p> ?o . }");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->AskResult(), false);
}

TEST(AskTest, SupportsFiltersAndPrefixes) {
  rdf::TripleStore store;
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/k"),
            Term::IntLiteral(7));
  Executor ex(&store);
  auto yes = ex.Execute(
      "PREFIX ex: <http://x/> ASK { ?s ex:k ?v . FILTER (?v > 5) . }");
  ASSERT_TRUE(yes.ok()) << yes.status();
  EXPECT_EQ(yes->AskResult(), true);
  auto no = ex.Execute(
      "PREFIX ex: <http://x/> ASK { ?s ex:k ?v . FILTER (?v > 50) . }");
  ASSERT_TRUE(no.ok());
  EXPECT_EQ(no->AskResult(), false);
}

TEST(AskTest, RejectsTrailingModifiers) {
  Universe u = MakeUniverse(6);
  Executor ex(&u.store);
  EXPECT_FALSE(ex.Execute("ASK { ?s ?p ?o . } LIMIT 3").ok());
}

TEST(AskTest, AskResultIsNulloptForSelectTables) {
  Universe u = MakeUniverse(7);
  Executor ex(&u.store);
  auto r = ex.Execute("SELECT ?s WHERE { ?s ?p ?o . } LIMIT 1");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->AskResult().has_value());
}

TEST(SparqlEdgeTest, EmptyGroupPattern) {
  Universe u = MakeUniverse(3);
  Executor ex(&u.store);
  // SELECT over an empty group: one empty solution.
  auto r = ex.Execute("SELECT (COUNT(*) AS ?n) WHERE { }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->ScalarInt("n"), 1);
}

// -------------------------------------------- store primitive properties

TEST_P(SparqlOracleTest, StoreCountPrimitivesAgreeWithWalks) {
  Universe u = MakeUniverse(GetParam() * 13 + 1);
  Rng rng(GetParam() * 7 + 3);
  const rdf::Dictionary& dict = u.store.dict();
  auto iri_id = [&](const std::string& s) {
    return dict.Lookup(rdf::Term::Iri(s));
  };
  for (int trial = 0; trial < 40; ++trial) {
    rdf::TriplePattern pat;
    if (rng.Chance(0.5)) pat.s = iri_id(rng.Choice(u.subjects));
    if (rng.Chance(0.5)) pat.p = iri_id(rng.Choice(u.predicates));
    if (rng.Chance(0.5)) pat.o = iri_id(rng.Choice(u.objects));
    std::vector<rdf::Triple> matches = u.store.MatchAll(pat);
    EXPECT_EQ(u.store.Count(pat), matches.size());
    for (rdf::TriplePos pos :
         {rdf::TriplePos::kS, rdf::TriplePos::kP, rdf::TriplePos::kO}) {
      std::set<rdf::TermId> distinct;
      for (const rdf::Triple& t : matches) {
        distinct.insert(pos == rdf::TriplePos::kS
                            ? t.s
                            : (pos == rdf::TriplePos::kP ? t.p : t.o));
      }
      EXPECT_EQ(u.store.CountDistinct(pat, pos), distinct.size());
    }
  }
  // Grouped-count primitive vs a brute-force histogram.
  for (const std::string& p : u.predicates) {
    rdf::TriplePattern pat;
    pat.p = iri_id(p);
    std::map<rdf::TermId, size_t> histogram;
    for (const rdf::Triple& t : u.store.MatchAll(pat)) ++histogram[t.o];
    std::vector<std::pair<rdf::TermId, size_t>> expected(histogram.begin(),
                                                         histogram.end());
    EXPECT_EQ(u.store.GroupedCountByObject(pat.p), expected);
  }
}

// -------------------------------------------- fast-path differential suite

ExecOptions PushdownOff() {
  ExecOptions o;
  o.aggregate_pushdown = false;
  o.filter_pushdown = false;
  o.limit_pushdown = false;
  return o;
}

/// Bit-level table comparison: columns, row order, and full terms (kind,
/// lexical, datatype, language) must agree.
::testing::AssertionResult TablesIdentical(const ResultTable& a,
                                           const ResultTable& b) {
  if (a.columns() != b.columns()) {
    return ::testing::AssertionFailure() << "column mismatch";
  }
  if (a.num_rows() != b.num_rows()) {
    return ::testing::AssertionFailure()
           << "row count " << a.num_rows() << " vs " << b.num_rows();
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      const auto& ca = a.rows()[r][c];
      const auto& cb = b.rows()[r][c];
      if (ca.has_value() != cb.has_value() ||
          (ca.has_value() && *ca != *cb)) {
        return ::testing::AssertionFailure()
               << "cell (" << r << "," << c << ") differs: "
               << (ca.has_value() ? ca->ToNTriples() : "~") << " vs "
               << (cb.has_value() ? cb->ToNTriples() : "~");
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// The count-query family the extraction strategies issue, over the random
/// universe's vocabulary.
std::vector<std::string> CountCorpus(const Universe& u, Rng* rng) {
  auto iri = [](const std::string& s) { return "<" + s + ">"; };
  std::string p0 = iri(rng->Choice(u.predicates));
  std::string p1 = iri(rng->Choice(u.predicates));
  std::string s0 = iri(rng->Choice(u.subjects));
  std::string o0 = iri(rng->Choice(u.objects));
  return {
      "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }",
      "SELECT (COUNT(?o) AS ?n) WHERE { ?s " + p0 + " ?o . }",
      "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s " + p0 + " ?o . }",
      "SELECT (COUNT(DISTINCT ?o) AS ?n) WHERE { ?s " + p0 + " ?o . }",
      "SELECT (COUNT(DISTINCT ?p) AS ?n) WHERE { ?s ?p ?o . }",
      "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s " + p0 + " " + o0 + " . }",
      "SELECT (COUNT(*) AS ?n) WHERE { " + s0 + " ?p ?o . }",
      "SELECT ?o (COUNT(?s) AS ?n) WHERE { ?s " + p0 + " ?o . } GROUP BY ?o",
      "SELECT ?o (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s " + p0 +
          " ?o . } GROUP BY ?o ORDER BY DESC(?n)",
      "SELECT ?p (COUNT(*) AS ?n) WHERE { ?s ?p ?o . } GROUP BY ?p",
      "SELECT ?o (COUNT(?s) AS ?n) WHERE { ?s " + p0 +
          " ?o . } GROUP BY ?o LIMIT 3",
      // Anchor-join shapes (the per-class extraction queries).
      "SELECT (COUNT(?o) AS ?n) WHERE { ?s " + p0 + " " + o0 + " . ?s " + p1 +
          " ?o . }",
      "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s " + p0 + " " + o0 +
          " . ?s ?p ?o . }",
      "SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s " + p0 + " " + o0 +
          " . ?s ?p ?o . } GROUP BY ?p",
      "SELECT ?p (COUNT(DISTINCT ?o) AS ?n) WHERE { ?s " + p0 + " " + o0 +
          " . ?s ?p ?o . } GROUP BY ?p",
      "SELECT ?p ?o (COUNT(?s) AS ?n) WHERE { ?s " + p0 + " " + o0 +
          " . ?s ?p ?o . } GROUP BY ?p ?o",
  };
}

/// General (non-count) queries exercising filter and limit pushdown.
std::vector<std::string> GeneralCorpus(const Universe& u, Rng* rng) {
  auto iri = [](const std::string& s) { return "<" + s + ">"; };
  std::string p0 = iri(rng->Choice(u.predicates));
  std::string p1 = iri(rng->Choice(u.predicates));
  std::string o0 = iri(rng->Choice(u.objects));
  return {
      "SELECT ?s ?o WHERE { ?s " + p0 + " ?o . } LIMIT 5",
      "SELECT ?s ?o WHERE { ?s " + p0 + " ?o . } OFFSET 3 LIMIT 4",
      "SELECT ?s WHERE { ?s ?p ?o . FILTER CONTAINS(STR(?o), \"s1\") . }",
      "SELECT ?a ?c WHERE { ?a " + p0 + " ?b . ?b " + p1 +
          " ?c . FILTER CONTAINS(STR(?a), \"u/s\") . }",
      "SELECT ?s WHERE { ?s " + p0 + " " + o0 +
          " . OPTIONAL { ?s " + p1 + " ?v . } FILTER (BOUND(?v)) . }",
      "SELECT DISTINCT ?o WHERE { ?s " + p0 + " ?o . } ORDER BY ?o",
      "ASK { ?s " + p0 + " ?o . }",
      "ASK { ?s " + p0 + " " + o0 + " . }",
  };
}

class FastPathDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FastPathDifferentialTest, CountFamilyBitIdenticalAndCovered) {
  Universe u = MakeUniverse(GetParam() * 101 + 17);
  Rng rng(GetParam() * 11 + 5);
  Executor fast(&u.store);              // defaults: pushdown on
  Executor slow(&u.store, PushdownOff());
  size_t hits = 0;
  for (const std::string& q : CountCorpus(u, &rng)) {
    ExecStats fs, ss;
    auto rf = fast.Execute(q, &fs);
    auto rs = slow.Execute(q, &ss);
    ASSERT_TRUE(rf.ok()) << q << "\n" << rf.status();
    ASSERT_TRUE(rs.ok()) << q << "\n" << rs.status();
    EXPECT_TRUE(TablesIdentical(*rf, *rs)) << q;
    // The fast path charges the bindings the materializing path produced,
    // so simulated endpoint costs stay bit-identical whichever path ran.
    EXPECT_EQ(fs.intermediate_bindings, ss.intermediate_bindings) << q;
    EXPECT_EQ(fs.result_rows, ss.result_rows) << q;
    EXPECT_EQ(ss.fast_path_hits, 0u) << q;
    EXPECT_EQ(fs.rows_avoided, fs.fast_path_hits > 0 ? fs.intermediate_bindings
                                                     : 0u)
        << q;
    hits += fs.fast_path_hits;
  }
  // The corpus is the count family: the fast path must actually cover it.
  EXPECT_GT(hits, 10u);
}

TEST_P(FastPathDifferentialTest, GeneralQueriesUnchangedByPushdownFlags) {
  Universe u = MakeUniverse(GetParam() * 71 + 29);
  Rng rng(GetParam() * 13 + 9);
  Executor fast(&u.store);
  Executor slow(&u.store, PushdownOff());
  for (const std::string& q : GeneralCorpus(u, &rng)) {
    auto rf = fast.Execute(q);
    auto rs = slow.Execute(q);
    ASSERT_TRUE(rf.ok()) << q << "\n" << rf.status();
    ASSERT_TRUE(rs.ok()) << q << "\n" << rs.status();
    EXPECT_TRUE(TablesIdentical(*rf, *rs)) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPathDifferentialTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(FastPathStatsTest, HitsAndRowsAvoidedPopulated) {
  Universe u = MakeUniverse(42);
  Executor ex(&u.store);
  ExecStats stats;
  auto r = ex.Execute("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }", &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.fast_path_hits, 1u);
  EXPECT_EQ(stats.rows_avoided, u.store.size());
  EXPECT_EQ(stats.intermediate_bindings, u.store.size());
  EXPECT_EQ(r->ScalarInt("n"), static_cast<int64_t>(u.store.size()));
}

// ---------------------------------------- star/range pushdown differential

/// The 3-pattern star/range family (the `?p ?rc` range-class query and
/// variants) over the random universe's vocabulary.
std::vector<std::string> StarCorpus(const Universe& u, Rng* rng) {
  auto iri = [](const std::string& s) { return "<" + s + ">"; };
  std::string p0 = iri(rng->Choice(u.predicates));
  std::string p1 = iri(rng->Choice(u.predicates));
  std::string p2 = iri(rng->Choice(u.predicates));
  std::string o0 = iri(rng->Choice(u.objects));
  return {
      // The paper's range query verbatim shape.
      "SELECT ?p ?rc (COUNT(?o) AS ?n) WHERE { ?s " + p0 + " " + o0 +
          " . ?s ?p ?o . ?o " + p1 + " ?rc . } GROUP BY ?p ?rc",
      // Constant open predicate.
      "SELECT ?rc (COUNT(?o) AS ?n) WHERE { ?s " + p0 + " " + o0 + " . ?s " +
          p2 + " ?o . ?o " + p1 + " ?rc . } GROUP BY ?rc",
      // Distinct aggregates over key and non-key vars.
      "SELECT ?rc (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s " + p0 + " " + o0 +
          " . ?s ?p ?o . ?o " + p1 + " ?rc . } GROUP BY ?rc",
      "SELECT ?p (COUNT(DISTINCT ?rc) AS ?n) WHERE { ?s " + p0 + " " + o0 +
          " . ?s ?p ?o . ?o " + p1 + " ?rc . } GROUP BY ?p",
      // Global (no GROUP BY) count over the star.
      "SELECT (COUNT(*) AS ?n) WHERE { ?s " + p0 + " " + o0 +
          " . ?s ?p ?o . ?o " + p1 + " ?rc . }",
      // Modifiers on top of the pushdown table.
      "SELECT ?p ?rc (COUNT(?o) AS ?n) WHERE { ?s " + p0 + " " + o0 +
          " . ?s ?p ?o . ?o " + p1 + " ?rc . } GROUP BY ?p ?rc "
          "ORDER BY DESC(?n) LIMIT 4",
      // Absent anchor constant: empty result, zero charging.
      "SELECT ?p ?rc (COUNT(?o) AS ?n) WHERE { ?s " + p0 +
          " <http://nope/o> . ?s ?p ?o . ?o " + p1 +
          " ?rc . } GROUP BY ?p ?rc",
  };
}

TEST_P(FastPathDifferentialTest, StarFamilyBitIdenticalAndCovered) {
  Universe u = MakeUniverse(GetParam() * 37 + 11);
  Rng rng(GetParam() * 17 + 3);
  Executor fast(&u.store);  // defaults: star pushdown on
  Executor slow(&u.store, PushdownOff());
  size_t hits = 0;
  for (const std::string& q : StarCorpus(u, &rng)) {
    ExecStats fs, ss;
    auto rf = fast.Execute(q, &fs);
    auto rs = slow.Execute(q, &ss);
    ASSERT_TRUE(rf.ok()) << q << "\n" << rf.status();
    ASSERT_TRUE(rs.ok()) << q << "\n" << rs.status();
    EXPECT_TRUE(TablesIdentical(*rf, *rs)) << q;
    EXPECT_EQ(fs.intermediate_bindings, ss.intermediate_bindings) << q;
    EXPECT_EQ(fs.result_rows, ss.result_rows) << q;
    hits += fs.fast_path_hits;
  }
  // The planner prefers anchor-first orders on this universe for at least
  // some seeds; the family must actually be covered somewhere.
  if (GetParam() == 0) EXPECT_GT(hits, 0u);
}

// ----------------------------- planner/cache differential harness (~2k)

/// One executor configuration of the {nested-loop, hash-join, pushdown}
/// x {plan cache on/off} differential matrix. Filter/limit pushdown stay
/// on in every cell so charged intermediate_bindings must agree across
/// the whole matrix, not just result tables.
struct PlannerConfig {
  const char* name;
  ExecOptions options;
  bool cache;
};

std::vector<PlannerConfig> PlannerMatrix() {
  ExecOptions nested;
  nested.aggregate_pushdown = false;
  nested.star_pushdown = false;
  nested.hash_join = HashJoinMode::kOff;
  ExecOptions hash;
  hash.aggregate_pushdown = false;
  hash.star_pushdown = false;
  hash.hash_join = HashJoinMode::kForce;
  ExecOptions pushdown;  // defaults: aggregate + star + cost-based hash
  return {
      {"nested", nested, false},   {"nested+cache", nested, true},
      {"hash", hash, false},       {"hash+cache", hash, true},
      {"pushdown", pushdown, false}, {"pushdown+cache", pushdown, true},
  };
}

/// Seeded random query over the universe's vocabulary: BGPs of 1-4
/// patterns, with optional FILTER / OPTIONAL / UNION / aggregates /
/// modifiers, plus explicit star shapes. Everything stays inside the
/// parser's subset.
std::string RandomQuery(const Universe& u, Rng* rng) {
  auto iri = [](const std::string& s) { return "<" + s + ">"; };
  auto var = [](size_t v) { return "?v" + std::to_string(v); };

  // Star shape, explicitly, some of the time.
  if (rng->Chance(0.15)) {
    std::string anchor_p = iri(rng->Choice(u.predicates));
    std::string anchor_o = iri(rng->Choice(u.objects));
    std::string chain_p = iri(rng->Choice(u.predicates));
    std::string open_p =
        rng->Chance(0.5) ? std::string("?p") : iri(rng->Choice(u.predicates));
    std::string group = rng->Chance(0.5) ? "?rc" : "?rc ?o";
    std::string agg = rng->Chance(0.5) ? "COUNT(?o)" : "COUNT(DISTINCT ?s)";
    return "SELECT " + group + " (" + agg + " AS ?n) WHERE { ?s " + anchor_p +
           " " + anchor_o + " . ?s " + open_p + " ?o . ?o " + chain_p +
           " ?rc . } GROUP BY " + group;
  }

  const size_t num_vars = 1 + rng->Uniform(3);
  const size_t num_patterns = 1 + rng->Uniform(4);
  std::set<size_t> used;
  std::string body;
  for (size_t i = 0; i < num_patterns; ++i) {
    auto slot = [&](const std::vector<std::string>& pool) -> std::string {
      if (rng->Chance(0.5)) {
        size_t v = rng->Uniform(num_vars);
        used.insert(v);
        return var(v);
      }
      return iri(rng->Choice(pool));
    };
    body += "  " + slot(u.subjects) + " " + slot(u.predicates) + " " +
            slot(u.objects) + " .\n";
  }
  if (used.empty()) {
    body = "  ?v0 " + iri(rng->Choice(u.predicates)) + " ?v1 .\n" + body;
    used.insert(0);
    used.insert(1);
  }
  std::vector<size_t> used_list(used.begin(), used.end());

  if (rng->Chance(0.2)) {
    body += "  OPTIONAL { " + var(rng->Choice(used_list)) + " " +
            iri(rng->Choice(u.predicates)) + " ?ov . }\n";
  }
  if (rng->Chance(0.15)) {
    std::string v = var(rng->Choice(used_list));
    body += "  { " + v + " " + iri(rng->Choice(u.predicates)) +
            " ?uv . } UNION { " + v + " " + iri(rng->Choice(u.predicates)) +
            " ?uv . }\n";
  }
  if (rng->Chance(0.35)) {
    std::string v = var(rng->Choice(used_list));
    switch (rng->Uniform(4)) {
      case 0:
        body += "  FILTER CONTAINS(STR(" + v + "), \"s" +
                std::to_string(rng->Uniform(8)) + "\") .\n";
        break;
      case 1:
        body += "  FILTER (" + v + " != <" + rng->Choice(u.objects) + ">) .\n";
        break;
      case 2:
        body += "  FILTER (BOUND(" + v + ")) .\n";
        break;
      default:
        body += "  FILTER REGEX(STR(" + v + "), \"u/s\") .\n";
        break;
    }
  }

  std::string query;
  if (rng->Chance(0.3)) {
    // Aggregate form.
    std::string key = var(rng->Choice(used_list));
    std::string agg;
    switch (rng->Uniform(3)) {
      case 0:
        agg = "COUNT(*)";
        break;
      case 1:
        agg = "COUNT(" + var(rng->Choice(used_list)) + ")";
        break;
      default:
        agg = "COUNT(DISTINCT " + var(rng->Choice(used_list)) + ")";
        break;
    }
    query = "SELECT " + key + " (" + agg + " AS ?n) WHERE {\n" + body +
            "} GROUP BY " + key;
    if (rng->Chance(0.3)) query += " ORDER BY DESC(?n)";
  } else {
    std::string projection;
    for (size_t v : used_list) projection += " " + var(v);
    query = std::string("SELECT") + (rng->Chance(0.3) ? " DISTINCT" : "") +
            projection + " WHERE {\n" + body + "}";
    if (rng->Chance(0.3)) query += " ORDER BY " + var(used_list[0]);
    if (rng->Chance(0.3)) {
      query += " LIMIT " + std::to_string(1 + rng->Uniform(6));
      if (rng->Chance(0.5)) {
        query += " OFFSET " + std::to_string(rng->Uniform(4));
      }
    }
  }
  return query;
}

/// ~2k randomized queries (10 seeds x 200), each executed under every
/// cell of the planner/cache matrix and compared bit-for-bit — tables AND
/// charged intermediate_bindings — against the nested-loop reference. The
/// cache-on cells run the corpus twice: the second pass must be all plan
/// cache hits and still bit-identical.
class PlannerDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannerDifferentialTest, MatrixBitIdentical) {
  const uint64_t seed = GetParam();
  Universe u = MakeUniverse(seed * 271 + 13);
  constexpr int kQueriesPerSeed = 200;

  std::vector<std::string> corpus;
  corpus.reserve(kQueriesPerSeed);
  {
    Rng rng(seed * 97 + 29);
    for (int i = 0; i < kQueriesPerSeed; ++i) {
      corpus.push_back(RandomQuery(u, &rng));
    }
  }

  struct Baseline {
    ResultTable table;
    size_t bindings = 0;
    size_t rows = 0;
  };
  std::vector<Baseline> reference(corpus.size());

  size_t hash_builds = 0;
  size_t fast_hits = 0;
  for (const PlannerConfig& config : PlannerMatrix()) {
    PlanCache cache;
    Executor ex(&u.store, config.options,
                config.cache ? &cache : nullptr);
    const int passes = config.cache ? 2 : 1;
    for (int pass = 0; pass < passes; ++pass) {
      for (size_t qi = 0; qi < corpus.size(); ++qi) {
        const std::string& query = corpus[qi];
        auto repro = [&]() {
          return "\nrepro: PlannerDifferentialTest seed=" +
                 std::to_string(seed) + " query_index=" + std::to_string(qi) +
                 " config=" + config.name + " pass=" + std::to_string(pass) +
                 "\n" + query + "\n";
        };
        ExecStats stats;
        auto result = ex.Execute(query, &stats);
        ASSERT_TRUE(result.ok()) << result.status() << repro();
        if (config.name == std::string("nested") ) {
          reference[qi].table = *result;
          reference[qi].bindings = stats.intermediate_bindings;
          reference[qi].rows = stats.result_rows;
          continue;
        }
        ASSERT_TRUE(TablesIdentical(*result, reference[qi].table)) << repro();
        ASSERT_EQ(stats.intermediate_bindings, reference[qi].bindings)
            << repro();
        ASSERT_EQ(stats.result_rows, reference[qi].rows) << repro();
        hash_builds += stats.hash_join_builds;
        fast_hits += stats.fast_path_hits;
      }
    }
    if (config.cache) {
      PlanCacheStats cs = cache.stats();
      // Second pass re-used every plan: misses happened only on pass 0.
      EXPECT_LE(cs.misses, corpus.size()) << config.name;
      EXPECT_GE(cs.hits, corpus.size()) << config.name;
    }
  }
  // The matrix must actually exercise the new operators somewhere.
  EXPECT_GT(hash_builds, 0u) << "hash-join configs never built a table";
  EXPECT_GT(fast_hits, 0u) << "pushdown configs never hit a fast path";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerDifferentialTest,
                         ::testing::Range<uint64_t>(0, 10));

// ------------------------------------------- out-of-core differential leg

/// The same planner/cache matrix — plus a spill-forced hash-join cell —
/// executed over a disk-backed (mmap sorted-run) store and compared
/// bit-for-bit against the in-RAM nested-loop reference. The executor and
/// planner only ever see Span/Count/CountDistinct/GroupedCountByObject, so
/// the backend must be observationally invisible: identical tables AND
/// identical charged intermediate_bindings.
class OutOfCoreDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OutOfCoreDifferentialTest, MatrixBitIdenticalOverDiskStore) {
  const uint64_t seed = GetParam();
  // Two universes from the same seed produce identical stores (term ids
  // are a pure function of the Add sequence); one is sent to disk.
  Universe ram = MakeUniverse(seed * 271 + 13);
  Universe disk = MakeUniverse(seed * 271 + 13);
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("hbold_ooc_sparql_" + std::to_string(seed));
  fs::remove_all(dir);
  rdf::DiskBackendOptions backend;
  backend.directory = dir.string();
  backend.memory_budget_bytes = 1;  // minimum staging/fragment capacities
  ASSERT_TRUE(disk.store.EnableDiskBackend(backend).ok());
  ASSERT_TRUE(disk.store.on_disk());

  constexpr int kQueriesPerSeed = 200;
  std::vector<std::string> corpus;
  corpus.reserve(kQueriesPerSeed);
  {
    Rng rng(seed * 97 + 29);
    for (int i = 0; i < kQueriesPerSeed; ++i) {
      corpus.push_back(RandomQuery(ram, &rng));
    }
  }

  // Reference: nested-loop over the in-RAM store.
  ExecOptions nested;
  nested.aggregate_pushdown = false;
  nested.star_pushdown = false;
  nested.hash_join = HashJoinMode::kOff;
  struct Baseline {
    ResultTable table;
    size_t bindings = 0;
  };
  std::vector<Baseline> reference(corpus.size());
  {
    Executor ex(&ram.store, nested, nullptr);
    for (size_t qi = 0; qi < corpus.size(); ++qi) {
      ExecStats stats;
      auto result = ex.Execute(corpus[qi], &stats);
      ASSERT_TRUE(result.ok()) << result.status() << corpus[qi];
      reference[qi].table = *result;
      reference[qi].bindings = stats.intermediate_bindings;
    }
  }

  std::vector<PlannerConfig> matrix = PlannerMatrix();
  ExecOptions spill;  // defaults + forced hash joins that always spill
  spill.hash_join = HashJoinMode::kForce;
  spill.hash_join_spill_budget_bytes = 1;
  matrix.push_back({"hash+spill", spill, false});

  size_t spills = 0;
  for (const PlannerConfig& config : matrix) {
    PlanCache cache;
    Executor ex(&disk.store, config.options, config.cache ? &cache : nullptr);
    for (size_t qi = 0; qi < corpus.size(); ++qi) {
      auto repro = [&]() {
        return "\nrepro: OutOfCoreDifferentialTest seed=" +
               std::to_string(seed) + " query_index=" + std::to_string(qi) +
               " config=" + config.name + "\n" + corpus[qi] + "\n";
      };
      ExecStats stats;
      auto result = ex.Execute(corpus[qi], &stats);
      ASSERT_TRUE(result.ok()) << result.status() << repro();
      ASSERT_TRUE(TablesIdentical(*result, reference[qi].table)) << repro();
      ASSERT_EQ(stats.intermediate_bindings, reference[qi].bindings)
          << repro();
      spills += stats.hash_join_spills;
    }
  }
  // The spill cell must actually have spilled — not silently built in RAM.
  EXPECT_GT(spills, 0u);
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OutOfCoreDifferentialTest,
                         ::testing::Range<uint64_t>(0, 3));

// ------------------------------------------------- ORDER BY numeric keys

TEST(OrderByTest, StrtodArtifactsDoNotReorder) {
  // "inf"/"nan" parse under strtod but are not SPARQL numeric literals;
  // they must sort lexically, after genuinely numeric keys compare
  // numerically ("9" before "10").
  rdf::TripleStore store;
  const char* values[] = {"inf", "10", "nan", "9", "abc"};
  for (const char* v : values) {
    store.Add(Term::Iri(std::string("http://x/") + v),
              Term::Iri("http://x/k"), Term::Literal(v));
  }
  Executor ex(&store);
  auto r = ex.Execute("SELECT ?v WHERE { ?s <http://x/k> ?v . } ORDER BY ?v");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->num_rows(), 5u);
  EXPECT_EQ(r->Cell(0, "v")->lexical(), "9");
  EXPECT_EQ(r->Cell(1, "v")->lexical(), "10");
  EXPECT_EQ(r->Cell(2, "v")->lexical(), "abc");
  EXPECT_EQ(r->Cell(3, "v")->lexical(), "inf");
  EXPECT_EQ(r->Cell(4, "v")->lexical(), "nan");
}

TEST(OrderByTest, MixedNumericColumnIsAStrictWeakOrder) {
  // "2" < "10" numerically, "10" < "1z" lexically, "1z" < "2" lexically —
  // a same-tier-only comparator cycles (UB under std::stable_sort). The
  // tiered order puts numerics first: 2, 10, then 1z.
  rdf::TripleStore store;
  int i = 0;
  for (const char* v : {"10", "1z", "2"}) {
    store.Add(Term::Iri("http://x/r" + std::to_string(i++)),
              Term::Iri("http://x/k"), Term::Literal(v));
  }
  Executor ex(&store);
  auto r = ex.Execute("SELECT ?v WHERE { ?s <http://x/k> ?v . } ORDER BY ?v");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->Cell(0, "v")->lexical(), "2");
  EXPECT_EQ(r->Cell(1, "v")->lexical(), "10");
  EXPECT_EQ(r->Cell(2, "v")->lexical(), "1z");
}

}  // namespace
}  // namespace hbold::sparql
