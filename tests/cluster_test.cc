// Unit + property tests for src/cluster: graph, modularity, Louvain, label
// propagation, greedy merge, and the Cluster Schema builder.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "cluster/cluster_schema.h"
#include "cluster/greedy_merge.h"
#include "cluster/label_propagation.h"
#include "cluster/louvain.h"
#include "cluster/modularity.h"
#include "cluster/ugraph.h"
#include "common/random.h"
#include "extraction/indexes.h"
#include "schema/schema_summary.h"

namespace hbold::cluster {
namespace {

/// Two K4 cliques joined by a single bridge edge — the canonical
/// two-community graph.
UGraph TwoCliques() {
  UGraph g(8);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) {
      g.AddEdge(i, j);
      g.AddEdge(i + 4, j + 4);
    }
  }
  g.AddEdge(3, 4);  // bridge
  return g;
}

/// A ring of `k` cliques of size `size`, classic Louvain test graph.
UGraph CliqueRing(size_t k, size_t size) {
  UGraph g(k * size);
  for (size_t c = 0; c < k; ++c) {
    size_t base = c * size;
    for (size_t i = 0; i < size; ++i) {
      for (size_t j = i + 1; j < size; ++j) {
        g.AddEdge(base + i, base + j);
      }
    }
    g.AddEdge(base, ((c + 1) % k) * size);  // bridge to next clique
  }
  return g;
}

// ---------------------------------------------------------------- UGraph

TEST(UGraphTest, AddEdgeMergesParallels) {
  UGraph g(3);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(0, 1, 3.0);
  ASSERT_EQ(g.NeighborsOf(0).size(), 1u);
  EXPECT_DOUBLE_EQ(g.NeighborsOf(0)[0].weight, 5.0);
  EXPECT_DOUBLE_EQ(g.NeighborsOf(1)[0].weight, 5.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 5.0);
}

TEST(UGraphTest, SelfLoopDegreeCountsTwice) {
  UGraph g(2);
  g.AddEdge(0, 0, 1.5);
  g.AddEdge(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(g.SelfLoop(0), 1.5);
  EXPECT_DOUBLE_EQ(g.SelfLoop(1), 0.0);
  EXPECT_DOUBLE_EQ(g.Degree(0), 1.5 * 2 + 1.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 2.5);
}

TEST(UGraphTest, PartitionHelpers) {
  Partition p{5, 5, 9, 2, 9};
  EXPECT_EQ(CommunityCount(p), 3u);
  size_t k = NormalizePartition(&p);
  EXPECT_EQ(k, 3u);
  EXPECT_EQ(p, (Partition{0, 0, 1, 2, 1}));
}

// ---------------------------------------------------------------- Modularity

TEST(ModularityTest, SingletonPartitionOfCliquePairIsLow) {
  UGraph g = TwoCliques();
  Partition singletons(8);
  std::iota(singletons.begin(), singletons.end(), 0);
  Partition ideal{0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_GT(Modularity(g, ideal), Modularity(g, singletons));
  EXPECT_NEAR(Modularity(g, ideal), 0.5 - 2 * (6.5 / 13) * (6.5 / 13) + 0.5 -
                                        1.0 / 13,
              0.2);
}

TEST(ModularityTest, AllInOnePartitionIsZero) {
  UGraph g = TwoCliques();
  Partition one(8, 0);
  EXPECT_NEAR(Modularity(g, one), 0.0, 1e-12);
}

TEST(ModularityTest, EmptyGraphIsZero) {
  UGraph g(0);
  EXPECT_DOUBLE_EQ(Modularity(g, {}), 0.0);
  UGraph g2(3);  // nodes but no edges
  EXPECT_DOUBLE_EQ(Modularity(g2, {0, 1, 2}), 0.0);
}

TEST(ModularityTest, KnownValueOnBridgeGraph) {
  // Two triangles joined by one edge; ideal split Q = 2*(3/7 - (7/14)^2)
  UGraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(3, 5);
  g.AddEdge(2, 3);
  Partition ideal{0, 0, 0, 1, 1, 1};
  double expected = 2 * (3.0 / 7 - (7.0 / 14) * (7.0 / 14));
  EXPECT_NEAR(Modularity(g, ideal), expected, 1e-12);
}

// ---------------------------------------------------------------- Louvain

TEST(LouvainTest, RecoversTwoCliques) {
  UGraph g = TwoCliques();
  Partition p = Louvain(g);
  EXPECT_EQ(CommunityCount(p), 2u);
  // All of clique 1 together, all of clique 2 together.
  for (size_t i = 1; i < 4; ++i) EXPECT_EQ(p[i], p[0]);
  for (size_t i = 5; i < 8; ++i) EXPECT_EQ(p[i], p[4]);
  EXPECT_NE(p[0], p[4]);
}

TEST(LouvainTest, RecoversCliqueRing) {
  UGraph g = CliqueRing(8, 5);
  Partition p = Louvain(g);
  EXPECT_EQ(CommunityCount(p), 8u);
  for (size_t c = 0; c < 8; ++c) {
    for (size_t i = 1; i < 5; ++i) EXPECT_EQ(p[c * 5 + i], p[c * 5]);
  }
}

TEST(LouvainTest, EmptyAndSingletonGraphs) {
  UGraph empty(0);
  EXPECT_TRUE(Louvain(empty).empty());
  UGraph one(1);
  EXPECT_EQ(Louvain(one).size(), 1u);
  UGraph isolated(4);  // no edges: everyone stays alone
  Partition p = Louvain(isolated);
  EXPECT_EQ(CommunityCount(p), 4u);
}

TEST(LouvainTest, DeterministicForFixedSeed) {
  UGraph g = CliqueRing(6, 4);
  LouvainOptions opt;
  opt.seed = 7;
  EXPECT_EQ(Louvain(g, opt), Louvain(g, opt));
}

TEST(LouvainTest, BeatsOrMatchesSingletonModularity) {
  Rng rng(17);
  UGraph g(40);
  for (int e = 0; e < 120; ++e) {
    size_t u = rng.Uniform(40);
    size_t v = rng.Uniform(40);
    if (u != v) g.AddEdge(u, v);
  }
  Partition p = Louvain(g);
  Partition singletons(40);
  std::iota(singletons.begin(), singletons.end(), 0);
  EXPECT_GE(Modularity(g, p), Modularity(g, singletons));
}

// ---------------------------------------------------------------- Baselines

TEST(LabelPropagationTest, RecoversTwoCliques) {
  UGraph g = TwoCliques();
  Partition p = LabelPropagation(g);
  // LPA can merge across a single bridge occasionally, but on K4-K4 it
  // should keep two groups with the default seed.
  EXPECT_LE(CommunityCount(p), 2u);
  for (size_t i = 1; i < 4; ++i) EXPECT_EQ(p[i], p[0]);
  for (size_t i = 5; i < 8; ++i) EXPECT_EQ(p[i], p[4]);
}

TEST(LabelPropagationTest, IsolatedNodesKeepOwnLabels) {
  UGraph g(3);
  Partition p = LabelPropagation(g);
  EXPECT_EQ(CommunityCount(p), 3u);
}

TEST(GreedyMergeTest, RecoversTwoCliques) {
  UGraph g = TwoCliques();
  Partition p = GreedyMerge(g);
  EXPECT_EQ(CommunityCount(p), 2u);
  for (size_t i = 1; i < 4; ++i) EXPECT_EQ(p[i], p[0]);
}

TEST(GreedyMergeTest, EmptyGraph) {
  UGraph g(0);
  EXPECT_TRUE(GreedyMerge(g).empty());
}

// Property sweep: on random graphs every algorithm returns a valid
// partition (size n, every node assigned) and Louvain's modularity is at
// least as good as LPA's and the singleton baseline's.
class AlgorithmPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgorithmPropertyTest, ValidPartitionsAndLouvainDominance) {
  Rng rng(GetParam());
  size_t n = 20 + rng.Uniform(60);
  UGraph g(n);
  size_t edges = n * 3;
  for (size_t e = 0; e < edges; ++e) {
    size_t u = rng.Uniform(n);
    size_t v = rng.Uniform(n);
    g.AddEdge(u, v, 1.0 + static_cast<double>(rng.Uniform(5)));
  }
  for (auto algo : {Louvain(g, {}), LabelPropagation(g, {}), GreedyMerge(g)}) {
    ASSERT_EQ(algo.size(), n);
    size_t k = CommunityCount(algo);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, n);
  }
  Partition louvain = Louvain(g);
  Partition lpa = LabelPropagation(g);
  Partition singles(n);
  std::iota(singles.begin(), singles.end(), 0);
  EXPECT_GE(Modularity(g, louvain) + 1e-9, Modularity(g, lpa));
  EXPECT_GE(Modularity(g, louvain), Modularity(g, singles));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgorithmPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------- ClusterSchema

schema::SchemaSummary MakeSummary() {
  extraction::IndexSummary idx;
  idx.endpoint_url = "http://test/sparql";
  // Two groups of classes: {A,B,C} densely linked, {D,E} linked, one weak
  // cross arc.
  auto cls = [](const std::string& iri, size_t n) {
    extraction::ClassInfo c;
    c.iri = iri;
    c.instance_count = n;
    return c;
  };
  auto obj = [](const std::string& p, const std::string& range, size_t n) {
    extraction::PropertyInfo info;
    info.iri = p;
    info.count = n;
    info.is_object_property = true;
    info.range_classes[range] = n;
    return info;
  };
  extraction::ClassInfo a = cls("http://x/A", 50);
  a.properties.push_back(obj("http://x/ab", "http://x/B", 30));
  a.properties.push_back(obj("http://x/ac", "http://x/C", 20));
  extraction::ClassInfo b = cls("http://x/B", 40);
  b.properties.push_back(obj("http://x/bc", "http://x/C", 25));
  extraction::ClassInfo c = cls("http://x/C", 30);
  extraction::ClassInfo d = cls("http://x/D", 20);
  d.properties.push_back(obj("http://x/de", "http://x/E", 15));
  d.properties.push_back(obj("http://x/da", "http://x/A", 1));  // weak bridge
  extraction::ClassInfo e = cls("http://x/E", 10);
  idx.classes = {a, b, c, d, e};
  idx.num_classes = 5;
  idx.num_instances = 150;
  return schema::SchemaSummary::FromIndexes(idx);
}

TEST(ClusterSchemaTest, BuildClassGraphDropsSelfLoops) {
  extraction::IndexSummary idx;
  idx.endpoint_url = "u";
  extraction::ClassInfo a;
  a.iri = "http://x/A";
  a.instance_count = 5;
  extraction::PropertyInfo self;
  self.iri = "http://x/self";
  self.count = 3;
  self.is_object_property = true;
  self.range_classes["http://x/A"] = 3;
  a.properties.push_back(self);
  idx.classes = {a};
  schema::SchemaSummary s = schema::SchemaSummary::FromIndexes(idx);
  ASSERT_EQ(s.ArcCount(), 1u);
  UGraph g = BuildClassGraph(s);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 0.0);
}

TEST(ClusterSchemaTest, LouvainPartitionGroupsDenseClasses) {
  schema::SchemaSummary s = MakeSummary();
  UGraph g = BuildClassGraph(s);
  Partition p = Louvain(g);
  ClusterSchema cs = ClusterSchema::FromPartition(s, p);
  EXPECT_EQ(cs.ClusterCount(), 2u);
  // {A,B,C} together; {D,E} together.
  int a = s.FindNode("http://x/A");
  int b = s.FindNode("http://x/B");
  int d = s.FindNode("http://x/D");
  int e = s.FindNode("http://x/E");
  EXPECT_EQ(cs.ClusterOf(static_cast<size_t>(a)),
            cs.ClusterOf(static_cast<size_t>(b)));
  EXPECT_EQ(cs.ClusterOf(static_cast<size_t>(d)),
            cs.ClusterOf(static_cast<size_t>(e)));
  EXPECT_NE(cs.ClusterOf(static_cast<size_t>(a)),
            cs.ClusterOf(static_cast<size_t>(d)));
}

TEST(ClusterSchemaTest, EveryClassInExactlyOneCluster) {
  schema::SchemaSummary s = MakeSummary();
  ClusterSchema cs =
      ClusterSchema::FromPartition(s, Louvain(BuildClassGraph(s)));
  std::set<size_t> seen;
  for (const Cluster& c : cs.clusters()) {
    for (size_t node : c.class_nodes) {
      EXPECT_TRUE(seen.insert(node).second) << "node in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), s.NodeCount());
}

TEST(ClusterSchemaTest, LabelIsHighestDegreeMember) {
  schema::SchemaSummary s = MakeSummary();
  ClusterSchema cs =
      ClusterSchema::FromPartition(s, Louvain(BuildClassGraph(s)));
  size_t a = static_cast<size_t>(s.FindNode("http://x/A"));
  int cluster_a = cs.ClusterOf(a);
  ASSERT_GE(cluster_a, 0);
  // A has degree 3 (ab, ac, da) — the highest in {A,B,C}.
  EXPECT_EQ(cs.clusters()[static_cast<size_t>(cluster_a)].label, "A");
}

TEST(ClusterSchemaTest, ClusterInstanceTotals) {
  schema::SchemaSummary s = MakeSummary();
  ClusterSchema cs =
      ClusterSchema::FromPartition(s, Louvain(BuildClassGraph(s)));
  size_t total = 0;
  for (const Cluster& c : cs.clusters()) total += c.total_instances;
  EXPECT_EQ(total, s.total_instances());
}

TEST(ClusterSchemaTest, ArcsAggregateAcrossCut) {
  schema::SchemaSummary s = MakeSummary();
  ClusterSchema cs =
      ClusterSchema::FromPartition(s, Louvain(BuildClassGraph(s)));
  // Single bridge arc D->A with weight 1.
  ASSERT_EQ(cs.arcs().size(), 1u);
  EXPECT_EQ(cs.arcs()[0].weight, 1u);
  EXPECT_EQ(cs.arcs()[0].property_count, 1u);
}

TEST(ClusterSchemaTest, SingletonPartitionKeepsAllArcs) {
  schema::SchemaSummary s = MakeSummary();
  Partition singles(s.NodeCount());
  std::iota(singles.begin(), singles.end(), 0);
  ClusterSchema cs = ClusterSchema::FromPartition(s, singles);
  EXPECT_EQ(cs.ClusterCount(), s.NodeCount());
  EXPECT_EQ(cs.arcs().size(), s.ArcCount());
}

TEST(ClusterSchemaTest, JsonRoundTrip) {
  schema::SchemaSummary s = MakeSummary();
  ClusterSchema cs =
      ClusterSchema::FromPartition(s, Louvain(BuildClassGraph(s)));
  auto round = ClusterSchema::FromJson(cs.ToJson());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->ToJson().Dump(), cs.ToJson().Dump());
  EXPECT_EQ(round->ClusterCount(), cs.ClusterCount());
  // ClusterOf survives the round trip.
  for (size_t node = 0; node < s.NodeCount(); ++node) {
    EXPECT_EQ(round->ClusterOf(node), cs.ClusterOf(node));
  }
}

TEST(ClusterSchemaTest, FromJsonRejectsBadArc) {
  Json j = Json::MakeObject();
  j.Set("endpoint_url", "u");
  j.Set("clusters", Json::MakeArray());
  Json arcs = Json::MakeArray();
  Json arc = Json::MakeObject();
  arc.Set("src", 3);
  arc.Set("dst", 0);
  arcs.Append(std::move(arc));
  j.Set("arcs", std::move(arcs));
  EXPECT_FALSE(ClusterSchema::FromJson(j).ok());
}

}  // namespace
}  // namespace hbold::cluster
