// Unit tests for src/store: collection filtering, unique indexes, updates,
// persistence round-trips.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/json.h"
#include "store/collection.h"
#include "store/database.h"
#include "store/snapshot.h"

namespace hbold::store {
namespace {

Json Obj(const std::string& text) {
  auto r = Json::Parse(text);
  EXPECT_TRUE(r.ok()) << text << " " << r.status();
  return r.ok() ? *r : Json::MakeObject();
}

class CollectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(c_.Insert(Obj(R"({"name":"a","n":1,"tags":["x"]})")).ok());
    ASSERT_TRUE(c_.Insert(Obj(R"({"name":"b","n":2})")).ok());
    ASSERT_TRUE(c_.Insert(Obj(R"({"name":"c","n":3,"meta":{"k":9}})")).ok());
  }
  Collection c_{"test"};
};

TEST_F(CollectionTest, InsertAssignsSequentialIds) {
  EXPECT_EQ(c_.size(), 3u);
  auto doc = c_.FindOne(Obj(R"({"name":"b"})"));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->GetInt("_id"), 2);
}

TEST_F(CollectionTest, InsertRejectsNonObject) {
  EXPECT_FALSE(c_.Insert(Json(5)).ok());
}

TEST_F(CollectionTest, FindByEquality) {
  EXPECT_EQ(c_.Find(Obj(R"({"name":"a"})")).size(), 1u);
  EXPECT_EQ(c_.Find(Obj(R"({})")).size(), 3u);
  EXPECT_EQ(c_.Find(Obj(R"({"name":"zzz"})")).size(), 0u);
}

TEST_F(CollectionTest, FindByComparisonOperators) {
  EXPECT_EQ(c_.Find(Obj(R"({"n":{"$gt":1}})")).size(), 2u);
  EXPECT_EQ(c_.Find(Obj(R"({"n":{"$gte":1}})")).size(), 3u);
  EXPECT_EQ(c_.Find(Obj(R"({"n":{"$lt":3}})")).size(), 2u);
  EXPECT_EQ(c_.Find(Obj(R"({"n":{"$lte":1}})")).size(), 1u);
  EXPECT_EQ(c_.Find(Obj(R"({"n":{"$ne":2}})")).size(), 2u);
  EXPECT_EQ(c_.Find(Obj(R"({"n":{"$gt":1,"$lt":3}})")).size(), 1u);
}

TEST_F(CollectionTest, FindByInAndExists) {
  EXPECT_EQ(c_.Find(Obj(R"({"name":{"$in":["a","c"]}})")).size(), 2u);
  EXPECT_EQ(c_.Find(Obj(R"({"meta":{"$exists":true}})")).size(), 1u);
  EXPECT_EQ(c_.Find(Obj(R"({"meta":{"$exists":false}})")).size(), 2u);
}

TEST_F(CollectionTest, DottedPathsDescend) {
  EXPECT_EQ(c_.Find(Obj(R"({"meta.k":9})")).size(), 1u);
  EXPECT_EQ(c_.Find(Obj(R"({"meta.k":{"$gt":5}})")).size(), 1u);
  EXPECT_EQ(c_.Find(Obj(R"({"meta.missing":1})")).size(), 0u);
}

TEST_F(CollectionTest, MultipleKeysAreAnded) {
  EXPECT_EQ(c_.Find(Obj(R"({"name":"a","n":1})")).size(), 1u);
  EXPECT_EQ(c_.Find(Obj(R"({"name":"a","n":2})")).size(), 0u);
}

TEST_F(CollectionTest, FindByIdAndCount) {
  EXPECT_TRUE(c_.FindById(1).has_value());
  EXPECT_FALSE(c_.FindById(99).has_value());
  EXPECT_EQ(c_.CountMatching(Obj(R"({"n":{"$gte":2}})")), 2u);
}

TEST_F(CollectionTest, UpdateMergesFields) {
  auto n = c_.Update(Obj(R"({"name":"a"})"), Obj(R"({"n":10,"fresh":true})"));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  auto doc = c_.FindOne(Obj(R"({"name":"a"})"));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->GetInt("n"), 10);
  EXPECT_TRUE(doc->GetBool("fresh"));
  EXPECT_EQ(doc->GetInt("_id"), 1);  // _id preserved
}

TEST_F(CollectionTest, UpdateManyReturnsCount) {
  auto n = c_.Update(Obj(R"({"n":{"$gt":0}})"), Obj(R"({"seen":1})"));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
}

TEST_F(CollectionTest, RemoveByFilter) {
  EXPECT_EQ(c_.Remove(Obj(R"({"n":{"$lt":3}})")), 2u);
  EXPECT_EQ(c_.size(), 1u);
  EXPECT_EQ(c_.Remove(Obj(R"({})")), 1u);
  EXPECT_EQ(c_.size(), 0u);
}

TEST_F(CollectionTest, UniqueIndexBlocksDuplicates) {
  ASSERT_TRUE(c_.CreateUniqueIndex("name").ok());
  auto r = c_.Insert(Obj(R"({"name":"a"})"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
  // Missing field is allowed.
  EXPECT_TRUE(c_.Insert(Obj(R"({"other":1})")).ok());
}

TEST_F(CollectionTest, UniqueIndexBlocksUpdateCollisions) {
  ASSERT_TRUE(c_.CreateUniqueIndex("name").ok());
  auto r = c_.Update(Obj(R"({"name":"b"})"), Obj(R"({"name":"a"})"));
  EXPECT_FALSE(r.ok());
  // Atomicity: b unchanged.
  EXPECT_TRUE(c_.FindOne(Obj(R"({"name":"b"})")).has_value());
}

TEST_F(CollectionTest, UniqueIndexRejectsExistingDuplicates) {
  ASSERT_TRUE(c_.Insert(Obj(R"({"name":"a"})")).ok());  // duplicate of row 1
  EXPECT_FALSE(c_.CreateUniqueIndex("name").ok());
}

TEST_F(CollectionTest, JsonlRoundTrip) {
  std::string dump = c_.DumpJsonl();
  Collection other("copy");
  ASSERT_TRUE(other.LoadJsonl(dump).ok());
  EXPECT_EQ(other.size(), 3u);
  EXPECT_EQ(other.DumpJsonl(), dump);
  // next_id resumes after the max loaded id.
  auto id = other.Insert(Obj(R"({"name":"d"})"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 4);
}

TEST_F(CollectionTest, LoadJsonlRejectsMissingId) {
  Collection other("bad");
  EXPECT_FALSE(other.LoadJsonl("{\"name\":\"x\"}\n").ok());
  EXPECT_FALSE(other.LoadJsonl("not json\n").ok());
}

TEST(CollectionMatchTest, StaticMatcher) {
  Json doc = Obj(R"({"a":1,"s":"hello"})");
  EXPECT_TRUE(Collection::Matches(doc, Obj(R"({"a":1})")));
  EXPECT_FALSE(Collection::Matches(doc, Obj(R"({"a":2})")));
  EXPECT_TRUE(Collection::Matches(doc, Obj(R"({"s":{"$gte":"hello"}})")));
  EXPECT_FALSE(Collection::Matches(doc, Obj(R"({"a":{"$bogus":1}})")));
}

// ---------------------------------------------------------------- Database

TEST(DatabaseTest, GetCollectionCreatesOnce) {
  Database db;
  Collection* a = db.GetCollection("x");
  Collection* b = db.GetCollection("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(db.CollectionNames(), (std::vector<std::string>{"x"}));
  EXPECT_EQ(db.FindCollection("missing"), nullptr);
}

TEST(DatabaseTest, DropCollection) {
  Database db;
  db.GetCollection("x");
  EXPECT_TRUE(db.DropCollection("x"));
  EXPECT_FALSE(db.DropCollection("x"));
}

TEST(DatabaseTest, SaveAndLoadDirectory) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "hbold_store_test";
  fs::remove_all(dir);

  Database db;
  Collection* summaries = db.GetCollection("summaries");
  ASSERT_TRUE(summaries->Insert(Obj(R"({"endpoint":"http://a","classes":3})"))
                  .ok());
  ASSERT_TRUE(summaries->Insert(Obj(R"({"endpoint":"http://b","classes":7})"))
                  .ok());
  db.GetCollection("clusters");
  ASSERT_TRUE(db.SaveToDirectory(dir.string()).ok());

  Database loaded;
  ASSERT_TRUE(loaded.LoadFromDirectory(dir.string()).ok());
  const Collection* got = loaded.FindCollection("summaries");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->size(), 2u);
  EXPECT_EQ(got->FindOne(Obj(R"({"endpoint":"http://b"})"))->GetInt("classes"),
            7);
  fs::remove_all(dir);
}

TEST(DatabaseTest, LoadMissingDirectoryFails) {
  Database db;
  EXPECT_FALSE(db.LoadFromDirectory("/nonexistent/hbold").ok());
}

TEST(DatabaseTest, SaveLeavesNoTempFiles) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "hbold_store_tmp_test";
  fs::remove_all(dir);

  Database db;
  ASSERT_TRUE(db.GetCollection("summaries")
                  ->Insert(Obj(R"({"endpoint":"http://a"})"))
                  .ok());
  ASSERT_TRUE(db.SaveToDirectory(dir.string()).ok());
  // Saving again over existing files must atomically replace them.
  ASSERT_TRUE(db.SaveToDirectory(dir.string()).ok());

  size_t snapshots = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp")
        << "temp file left behind: " << entry.path();
    if (entry.path().extension() == ".hbsnap") ++snapshots;
  }
  EXPECT_EQ(snapshots, 1u);

  // A stale .tmp from a crashed save must not be loaded as a collection —
  // and the loader cleans it up so later saves start from a tidy directory.
  std::ofstream(dir / "summaries.hbsnap.tmp") << "garbage\n";
  Database loaded;
  ASSERT_TRUE(loaded.LoadFromDirectory(dir.string()).ok());
  EXPECT_EQ(loaded.CollectionNames(), (std::vector<std::string>{"summaries"}));
  EXPECT_FALSE(fs::exists(dir / "summaries.hbsnap.tmp"));
  fs::remove_all(dir);
}

TEST(DatabaseTest, BinarySnapshotRoundTripIsByteIdentical) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "hbold_store_snap_test";
  fs::remove_all(dir);

  Database db;
  Collection* summaries = db.GetCollection("summaries");
  ASSERT_TRUE(
      summaries->Insert(Obj(R"({"endpoint":"http://a","classes":3})")).ok());
  ASSERT_TRUE(
      summaries->Insert(Obj(R"({"endpoint":"http://b","classes":7})")).ok());
  ASSERT_TRUE(db.GetCollection("clusters")
                  ->Insert(Obj(R"({"cluster":1,"members":["a","b"]})"))
                  .ok());
  db.GetCollection("empty");
  ASSERT_TRUE(db.SaveToDirectory(dir.string()).ok());

  Database loaded;
  ASSERT_TRUE(loaded.LoadFromDirectory(dir.string()).ok());
  EXPECT_EQ(loaded.CanonicalDump(), db.CanonicalDump());
  fs::remove_all(dir);
}

TEST(DatabaseTest, CollectionNamesRoundTripExactly) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "hbold_store_names_test";
  fs::remove_all(dir);

  // Names that defeat filename-based persistence: an embedded ".jsonl"
  // suffix, case-only differences (collide on case-insensitive
  // filesystems), spaces, and a literal '%' (collides with the escape
  // character unless the codec round-trips it).
  const std::vector<std::string> names = {
      "data.jsonl", "Summaries", "summaries", "with space", "pct%20name"};
  Database db;
  for (const std::string& name : names) {
    ASSERT_TRUE(db.GetCollection(name)
                    ->Insert(Obj(R"({"owner":")" + name + R"("})"))
                    .ok());
  }
  ASSERT_TRUE(db.SaveToDirectory(dir.string()).ok());

  Database loaded;
  ASSERT_TRUE(loaded.LoadFromDirectory(dir.string()).ok());
  std::vector<std::string> expected = names;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(loaded.CollectionNames(), expected);
  for (const std::string& name : names) {
    const Collection* c = loaded.FindCollection(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_EQ(c->FindOne(Obj("{}"))->GetString("owner"), name);
  }
  EXPECT_EQ(loaded.CanonicalDump(), db.CanonicalDump());
  fs::remove_all(dir);
}

TEST(DatabaseTest, SnapshotFilenameCodecAvoidsCaseCollisions) {
  // Distinct names must encode to filenames that stay distinct even under
  // case folding: uppercase bytes are escaped, and the escape hex is
  // always uppercase while literal letters are always lowercase.
  const std::string a = EncodeSnapshotFilename("Summaries");
  const std::string b = EncodeSnapshotFilename("summaries");
  auto lower = [](std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    return s;
  };
  EXPECT_NE(lower(a), lower(b));
  for (const std::string& name :
       {std::string("data.jsonl"), std::string("A/B c%"),
        std::string("\xff\x00x", 3)}) {
    auto decoded = DecodeSnapshotFilename(EncodeSnapshotFilename(name));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, name);
  }
}

TEST(DatabaseTest, LegacyJsonlMigratesToBinary) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "hbold_store_migrate_test";
  fs::remove_all(dir);

  Database legacy;
  ASSERT_TRUE(legacy.GetCollection("summaries")
                  ->Insert(Obj(R"({"endpoint":"http://a"})"))
                  .ok());
  ASSERT_TRUE(
      legacy.SaveToDirectory(dir.string(), Database::SnapshotFormat::kJsonl)
          .ok());
  ASSERT_TRUE(fs::exists(dir / "summaries.jsonl"));

  // A database saved as JSONL loads transparently...
  Database db;
  ASSERT_TRUE(db.LoadFromDirectory(dir.string()).ok());
  EXPECT_EQ(db.CanonicalDump(), legacy.CanonicalDump());

  // ...and its next (binary) save supersedes the legacy file: loading a
  // directory holding both formats must not double-apply or prefer the
  // stale JSONL.
  ASSERT_TRUE(db.GetCollection("summaries")
                  ->Insert(Obj(R"({"endpoint":"http://b"})"))
                  .ok());
  ASSERT_TRUE(db.SaveToDirectory(dir.string()).ok());
  ASSERT_TRUE(fs::exists(dir / "summaries.jsonl"));  // stale, still present

  Database reloaded;
  ASSERT_TRUE(reloaded.LoadFromDirectory(dir.string()).ok());
  EXPECT_EQ(reloaded.CanonicalDump(), db.CanonicalDump());
  EXPECT_EQ(reloaded.FindCollection("summaries")->size(), 2u);
  fs::remove_all(dir);
}

TEST(DatabaseTest, CorruptedSnapshotIsRejectedWithCleanStatus) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "hbold_store_corrupt_test";
  fs::remove_all(dir);

  Database db;
  ASSERT_TRUE(db.GetCollection("summaries")
                  ->Insert(Obj(R"({"endpoint":"http://a"})"))
                  .ok());
  ASSERT_TRUE(db.SaveToDirectory(dir.string()).ok());
  fs::path snap = dir / "summaries.hbsnap";
  ASSERT_TRUE(fs::exists(snap));

  // Truncated header.
  {
    std::ofstream(snap, std::ios::trunc | std::ios::binary) << "HBSN";
    Database loaded;
    Status st = loaded.LoadFromDirectory(dir.string());
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kParseError);
  }
  // Bad magic, full-size file.
  {
    std::string bogus(64, 'x');
    std::ofstream(snap, std::ios::trunc | std::ios::binary) << bogus;
    Database loaded;
    Status st = loaded.LoadFromDirectory(dir.string());
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kParseError);
  }
  // Single flipped payload byte: checksum must catch it.
  {
    ASSERT_TRUE(db.SaveToDirectory(dir.string()).ok());
    std::string bytes;
    {
      std::ifstream in(snap, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      bytes = buf.str();
    }
    ASSERT_GT(bytes.size(), 40u);
    bytes[bytes.size() - 1] ^= 0x01;
    std::ofstream(snap, std::ios::trunc | std::ios::binary) << bytes;
    Database loaded;
    Status st = loaded.LoadFromDirectory(dir.string());
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kParseError);
  }
  fs::remove_all(dir);
}

// ------------------------------------------------------------- Concurrency

TEST(CollectionSnapshotTest, SnapshotIsImmutableView) {
  Collection c("snap");
  ASSERT_TRUE(c.Insert(Obj(R"({"k":1})")).ok());
  ASSERT_TRUE(c.Insert(Obj(R"({"k":2})")).ok());
  std::vector<Document> snapshot = c.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].GetInt("k"), 1);
  c.Remove(Obj(R"({"k":1})"));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(snapshot.size(), 2u);  // unaffected by the removal
}

TEST(ConcurrencyTest, ParallelWritersToDistinctCollections) {
  Database db;
  constexpr int kWriters = 8;
  constexpr int kDocsPerWriter = 200;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&db, w] {
      Collection* c = db.GetCollection("c" + std::to_string(w));
      for (int i = 0; i < kDocsPerWriter; ++i) {
        Json doc = Json::MakeObject();
        doc.Set("writer", w);
        doc.Set("seq", i);
        ASSERT_TRUE(c->Insert(std::move(doc)).ok());
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(db.CollectionNames().size(), static_cast<size_t>(kWriters));
  for (int w = 0; w < kWriters; ++w) {
    const Collection* c = db.FindCollection("c" + std::to_string(w));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->size(), static_cast<size_t>(kDocsPerWriter));
  }
}

TEST(ConcurrencyTest, ParallelWritersToSameCollection) {
  Database db;
  Collection* c = db.GetCollection("shared");
  constexpr int kWriters = 4;
  constexpr int kDocsPerWriter = 250;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([c, w] {
      for (int i = 0; i < kDocsPerWriter; ++i) {
        Json doc = Json::MakeObject();
        doc.Set("writer", w);
        ASSERT_TRUE(c->Insert(std::move(doc)).ok());
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(c->size(), static_cast<size_t>(kWriters * kDocsPerWriter));
  // Every document got a distinct id.
  std::set<int64_t> ids;
  for (const Document& doc : c->Snapshot()) ids.insert(doc.GetInt("_id"));
  EXPECT_EQ(ids.size(), static_cast<size_t>(kWriters * kDocsPerWriter));
}

TEST(ConcurrencyTest, ReadersDuringWrites) {
  Database db;
  Collection* c = db.GetCollection("mixed");
  c->CreateIndex("k");
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};

  std::thread writer([c, &stop] {
    for (int i = 0; i < 500; ++i) {
      Json doc = Json::MakeObject();
      doc.Set("k", i % 10);
      doc.Set("seq", i);
      ASSERT_TRUE(c->Insert(std::move(doc)).ok());
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([c, &stop, &read_errors] {
      Json filter = Json::MakeObject();
      filter.Set("k", 3);
      while (!stop) {
        // Every doc an indexed read returns must actually match.
        for (const Document& doc : c->Find(filter)) {
          if (doc.GetInt("k") != 3) ++read_errors;
        }
        c->Snapshot();
        c->CountMatching(filter);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(read_errors.load(), 0);
  EXPECT_EQ(c->size(), 500u);
  Json filter = Json::MakeObject();
  filter.Set("k", 3);
  EXPECT_EQ(c->CountMatching(filter), 50u);
}

}  // namespace
}  // namespace hbold::store
