// Delta-extraction differential tests: the incremental pipeline (change
// probes, dirty-class re-extraction, schema/cluster patching) must land on
// byte-identical artifacts to a full re-extraction of the same churning
// world, across deployment shapes, while issuing strictly fewer queries.
// Plus unit-level checks for MergeDirtyClasses and PatchedFromIndexes.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "endpoint/simulated_endpoint.h"
#include "extraction/indexes.h"
#include "hbold/fleet.h"
#include "hbold/server.h"
#include "rdf/graph.h"
#include "schema/schema_summary.h"
#include "store/database.h"
#include "workload/ld_generator.h"

namespace hbold {
namespace {

using endpoint::AvailabilityModel;
using endpoint::Dialect;
using endpoint::EndpointRecord;
using endpoint::MutationModel;
using endpoint::ProbeFaultModel;
using endpoint::SimulatedRemoteEndpoint;
using extraction::ClassInfo;
using extraction::IndexSummary;
using extraction::PropertyInfo;

constexpr size_t kEndpoints = 8;
constexpr int64_t kDays = 6;
constexpr double kChurnFraction = 0.06;

std::map<std::string, std::string> CanonicalCollection(
    const store::Database& db, const std::string& collection) {
  std::map<std::string, std::string> canonical;
  const store::Collection* c = db.FindCollection(collection);
  if (c == nullptr) return canonical;
  for (store::Document doc : c->Snapshot()) {
    std::string url = doc.GetString("endpoint_url");
    doc.Set("_id", 0);
    canonical[url] = doc.Dump();
  }
  return canonical;
}

std::map<std::string, std::string> MergedCanonicalCollection(
    const Fleet& fleet, const std::string& collection) {
  std::map<std::string, std::string> merged;
  for (size_t s = 0; s < fleet.num_shards(); ++s) {
    for (auto& [url, dump] :
         CanonicalCollection(fleet.shard_db(s), collection)) {
      merged.emplace(url, dump);
    }
  }
  return merged;
}

std::string DumpStore(const rdf::TripleStore& store) {
  std::string out;
  for (const rdf::Triple& t : store.MatchAll(rdf::TriplePattern{})) {
    out += store.dict().Get(t.s).lexical();
    out += ' ';
    out += store.dict().Get(t.p).lexical();
    out += ' ';
    out += store.dict().Get(t.o).lexical();
    out += '\n';
  }
  return out;
}

/// One seeded churning world. Unlike FleetWorld, every run regenerates its
/// stores: the mutation model rewrites them day by day, so sharing stores
/// across runs would leak one run's churn into the next. Two DeltaWorlds
/// built from the same options replay bit-identical histories.
class DeltaWorld {
 public:
  static std::string Url(size_t i) {
    return "http://delta" + std::to_string(i) + ".example.org/sparql";
  }

  explicit DeltaWorld(FleetOptions options, double churn = kChurnFraction) {
    options.server.refresh_age_days = 1;  // churn-sensitive: due daily
    fleet_ = std::make_unique<Fleet>(&clock_, options);
    for (size_t i = 0; i < kEndpoints; ++i) {
      auto store = std::make_unique<rdf::TripleStore>();
      workload::SyntheticLdConfig config;
      config.namespace_iri = "http://delta" + std::to_string(i) +
                             ".example.org/";
      config.num_classes = 6 + i * 2;
      config.max_instances_per_class = 20;
      config.seed = 2600 + i;
      workload::GenerateSyntheticLd(config, store.get());

      Dialect dialect = Dialect::Full();
      if (i % 4 == 1) dialect = Dialect::NoGroupBy();
      if (i % 4 == 2) dialect = Dialect::NoAggregates();
      if (i % 4 == 3) dialect = Dialect::RowCapped(64);
      MutationModel mutation;
      // A third of the fleet never changes — realistic (most LD sources
      // are quiet) and what makes the probe-skip path reachable in the
      // churning differential runs.
      mutation.daily_churn_fraction = (i % 3 == 0) ? 0.0 : churn;
      mutation.seed = 500 + i * 104729;
      auto ep = std::make_unique<SimulatedRemoteEndpoint>(
          Url(i), "Delta " + std::to_string(i), store.get(), &clock_,
          dialect, endpoint::AvailabilityModel{}, endpoint::LatencyModel{},
          mutation);
      EndpointRecord record;
      record.url = Url(i);
      record.name = ep->name();
      fleet_->RegisterEndpoint(record);
      fleet_->AttachEndpoint(Url(i), ep.get());
      stores_.push_back(std::move(store));
      endpoints_.push_back(std::move(ep));
    }
  }

  Fleet& fleet() { return *fleet_; }

  size_t TotalQueriesServed() const {
    size_t total = 0;
    for (const auto& ep : endpoints_) total += ep->queries_served();
    return total;
  }

  std::string DumpAllStores() const {
    std::string out;
    for (const auto& store : stores_) out += DumpStore(*store);
    return out;
  }

 private:
  SimClock clock_;
  std::vector<std::unique_ptr<rdf::TripleStore>> stores_;
  std::vector<std::unique_ptr<SimulatedRemoteEndpoint>> endpoints_;
  std::unique_ptr<Fleet> fleet_;
};

FleetOptions Config(int shards, int parallelism, IncrementalMode mode) {
  FleetOptions options;
  options.num_shards = shards;
  options.server.parallelism = parallelism;
  options.server.incremental.mode = mode;
  if (shards == 1 && parallelism == 1) options.fleet_workers = 1;
  return options;
}

struct RunResult {
  FleetReport report;
  std::map<std::string, std::string> summaries;
  std::map<std::string, std::string> clusters;
  std::map<std::string, std::string> indexes;
  std::string stores;
  size_t queries = 0;
  size_t probe_skips = 0;
  size_t delta_extractions = 0;
};

RunResult RunWorld(FleetOptions options, double churn = kChurnFraction) {
  DeltaWorld world(options, churn);
  RunResult r;
  r.report = world.fleet().RunSimulation(kDays);
  r.summaries = MergedCanonicalCollection(world.fleet(), kSummariesCollection);
  r.clusters = MergedCanonicalCollection(world.fleet(), kClustersCollection);
  r.indexes = MergedCanonicalCollection(world.fleet(), kIndexesCollection);
  r.stores = world.DumpAllStores();
  r.queries = world.TotalQueriesServed();
  for (const auto& day : r.report.days) {
    r.probe_skips += day.probe_skips;
    r.delta_extractions += day.delta_extractions;
  }
  return r;
}

// ------------------------------------------------ the differential gate

/// kDelta must compute exactly what kTrack (probe + always-full, the
/// control arm) and kOff (the seed pipeline) compute, with fewer queries.
TEST(DeltaExtractionTest, DeltaMatchesFullReextraction) {
  RunResult off = RunWorld(Config(1, 1, IncrementalMode::kOff));
  RunResult track = RunWorld(Config(1, 1, IncrementalMode::kTrack));
  RunResult delta = RunWorld(Config(1, 1, IncrementalMode::kDelta));

  // Identical seeded worlds evolve identically whatever the crawler does.
  ASSERT_EQ(track.stores, off.stores);
  ASSERT_EQ(delta.stores, off.stores);

  // Content identity across all three modes.
  EXPECT_EQ(track.report.ContentDump(), off.report.ContentDump());
  EXPECT_EQ(delta.report.ContentDump(), off.report.ContentDump());
  EXPECT_EQ(delta.report.ContentFingerprint(), off.report.ContentFingerprint());

  // Persisted artifacts: byte-identical summaries and cluster schemas.
  EXPECT_EQ(track.summaries, off.summaries);
  EXPECT_EQ(delta.summaries, off.summaries);
  EXPECT_EQ(delta.clusters, off.clusters);
  // Index summaries are persisted only under incremental modes; the two
  // arms must agree with each other.
  EXPECT_TRUE(off.indexes.empty());
  ASSERT_FALSE(track.indexes.empty());
  EXPECT_EQ(delta.indexes, track.indexes);

  // The delta arm actually took the cheap paths, and they paid off.
  EXPECT_GT(delta.probe_skips, 0u);
  EXPECT_GT(delta.delta_extractions, 0u);
  EXPECT_EQ(track.probe_skips, 0u);
  EXPECT_LT(delta.queries, track.queries);
  EXPECT_LT(delta.queries, off.queries);
}

/// Within kDelta the usual deployment-invariance contract holds: shard
/// count and parallelism never change the canonical history.
TEST(DeltaExtractionTest, DeltaInvariantAcrossDeployments) {
  RunResult baseline = RunWorld(Config(1, 1, IncrementalMode::kDelta));
  ASSERT_GT(baseline.probe_skips + baseline.delta_extractions, 0u);
  const std::string baseline_dump = baseline.report.CanonicalDump();

  struct Deployment {
    int shards, parallelism;
  };
  const Deployment deployments[] = {{2, 1}, {4, 1}, {1, 4}, {4, 4}};
  for (const Deployment& dep : deployments) {
    SCOPED_TRACE("shards=" + std::to_string(dep.shards) +
                 " parallelism=" + std::to_string(dep.parallelism));
    RunResult run = RunWorld(Config(dep.shards, dep.parallelism,
                               IncrementalMode::kDelta));
    EXPECT_EQ(run.report.CanonicalDump(), baseline_dump);
    EXPECT_EQ(run.report.Fingerprint(), baseline.report.Fingerprint());
    EXPECT_EQ(run.summaries, baseline.summaries);
    EXPECT_EQ(run.clusters, baseline.clusters);
    EXPECT_EQ(run.indexes, baseline.indexes);
    EXPECT_EQ(run.stores, baseline.stores);
  }
}

/// An all-quiet fleet costs one probe per endpoint per day after the first
/// full extraction — the O(1)-queries steady state the probe exists for.
TEST(DeltaExtractionTest, QuietFleetSettlesIntoProbeSkips) {
  DeltaWorld world(Config(1, 1, IncrementalMode::kDelta), /*churn=*/0.0);
  FleetReport first = world.fleet().RunSimulation(1);
  ASSERT_EQ(first.days[0].probe_skips, 0u);  // nothing stored yet
  ASSERT_EQ(first.days[0].succeeded, kEndpoints);
  size_t queries_after_first = world.TotalQueriesServed();

  FleetReport rest = world.fleet().RunSimulation(3);
  for (const auto& day : rest.days) {
    EXPECT_EQ(day.due, kEndpoints);
    EXPECT_EQ(day.succeeded, kEndpoints);
    EXPECT_EQ(day.probes, kEndpoints);
    EXPECT_EQ(day.probe_skips, kEndpoints);
    EXPECT_EQ(day.delta_extractions, 0u);
  }
  // Three quiet days: exactly one probe query per endpoint per day.
  EXPECT_EQ(world.TotalQueriesServed() - queries_after_first,
            3 * kEndpoints);
}

/// full_refresh_fraction = 0 disables the restricted path entirely; the
/// pipeline must fall back to full re-extraction and still agree.
TEST(DeltaExtractionTest, ZeroThresholdFallsBackToFullAndStaysExact) {
  FleetOptions always_full = Config(1, 1, IncrementalMode::kDelta);
  always_full.server.incremental.full_refresh_fraction = 0.0;
  RunResult fallback = RunWorld(always_full);
  RunResult delta = RunWorld(Config(1, 1, IncrementalMode::kDelta));

  EXPECT_EQ(fallback.delta_extractions, 0u);
  EXPECT_GT(fallback.probe_skips, 0u);  // quiet days still skip
  EXPECT_EQ(fallback.report.ContentFingerprint(),
            delta.report.ContentFingerprint());
  EXPECT_EQ(fallback.summaries, delta.summaries);
  EXPECT_EQ(fallback.clusters, delta.clusters);
}

// ----------------------------------------------- adversarial endpoints

/// Merged canonical collection with the bookkeeping fields that legally
/// differ between arms zeroed out: a converged kBounded fleet may have
/// last re-extracted an endpoint days after (or before) the oracle arm
/// did, so `extracted_day` is provenance, not content.
std::map<std::string, std::string> NormalizedCollection(
    const Fleet& fleet, const std::string& collection) {
  std::map<std::string, std::string> merged;
  for (size_t s = 0; s < fleet.num_shards(); ++s) {
    const store::Collection* c =
        fleet.shard_db(s).FindCollection(collection);
    if (c == nullptr) continue;
    for (store::Document doc : c->Snapshot()) {
      const std::string url = doc.GetString("endpoint_url");
      doc.Set("_id", 0);
      doc.Set("extracted_day", 0);
      merged[url] = doc.Dump();
    }
  }
  return merged;
}

constexpr int64_t kAdvFreezeDay = 5;   // last day of churn and lies
constexpr int64_t kAdvBudget = 3;      // kBounded staleness budget
constexpr int64_t kAdvDays = 12;       // 6 adversarial days + 2 budget windows

/// A fleet where most endpoints are adversarial: lying generations and
/// fingerprints, partial and truncated probes, transient probe failures,
/// and structural churn — one endpoint hides class births behind a stale
/// quiet snapshot. World and adversary both freeze after
/// `freeze_after_day`, so convergence tests can assert the hardened
/// pipeline catches back up to the ground truth.
class AdversarialWorld {
 public:
  static std::string Url(size_t i) {
    return "http://adv" + std::to_string(i) + ".example.org/sparql";
  }

  AdversarialWorld(FleetOptions options, int64_t freeze_after_day) {
    options.server.refresh_age_days = 1;
    fleet_ = std::make_unique<Fleet>(&clock_, options);
    for (size_t i = 0; i < kEndpoints; ++i) {
      auto store = std::make_unique<rdf::TripleStore>();
      workload::SyntheticLdConfig config;
      config.namespace_iri =
          "http://adv" + std::to_string(i) + ".example.org/";
      config.num_classes = 5 + i;
      config.max_instances_per_class = 16;
      config.seed = 4200 + i;
      workload::GenerateSyntheticLd(config, store.get());

      Dialect dialect = Dialect::Full();
      if (i % 4 == 1) dialect = Dialect::NoGroupBy();
      if (i % 4 == 2) dialect = Dialect::NoAggregates();
      if (i % 4 == 3) dialect = Dialect::RowCapped(96);

      MutationModel mutation;
      mutation.daily_churn_fraction = (i % 3 == 0) ? 0.0 : 0.08;
      mutation.hot_class_fraction = 0.5;
      mutation.seed = 900 + i * 7919;
      mutation.class_birth_probability = (i % 2 == 0) ? 0.2 : 0.0;
      mutation.class_retire_probability = (i == 4) ? 0.15 : 0.0;
      mutation.quiet_structural_changes = (i == 2);
      mutation.freeze_after_day = freeze_after_day;

      ProbeFaultModel faults;
      faults.seed = 1300 + i * 31337;
      faults.freeze_after_day = freeze_after_day;
      switch (i % 4) {
        case 0:  // honest control arm
          break;
        case 1:  // the quiet liar: stale generations and fingerprints
          faults.lie_generation_probability = 0.35;
          faults.lie_fingerprint_probability = 0.35;
          break;
        case 2:  // partial / truncated fingerprint sets
          faults.partial_probability = 0.4;
          faults.truncate_probability = 0.25;
          break;
        case 3:  // flapping probe channel (transient mid-cycle failures)
          faults.transient_failure_probability = 0.3;
          break;
      }

      auto ep = std::make_unique<SimulatedRemoteEndpoint>(
          Url(i), "Adv " + std::to_string(i), store.get(), &clock_, dialect,
          AvailabilityModel{}, endpoint::LatencyModel{}, mutation, faults);
      EndpointRecord record;
      record.url = Url(i);
      record.name = ep->name();
      fleet_->RegisterEndpoint(record);
      fleet_->AttachEndpoint(Url(i), ep.get());
      stores_.push_back(std::move(store));
      endpoints_.push_back(std::move(ep));
    }
  }

  Fleet& fleet() { return *fleet_; }

  std::string DumpAllStores() const {
    std::string out;
    for (const auto& store : stores_) out += DumpStore(*store);
    return out;
  }

 private:
  SimClock clock_;
  std::vector<std::unique_ptr<rdf::TripleStore>> stores_;
  std::vector<std::unique_ptr<SimulatedRemoteEndpoint>> endpoints_;
  std::unique_ptr<Fleet> fleet_;
};

FleetOptions AdversarialConfig(int shards, int parallelism) {
  FleetOptions options =
      Config(shards, parallelism, IncrementalMode::kBounded);
  options.server.incremental.staleness_budget_days = kAdvBudget;
  options.server.incremental.quarantine_strikes = 2;
  options.server.incremental.quarantine_days = 2;
  return options;
}

/// The hardening contract end to end: under every injected fault class the
/// bounded arm must detect divergences (probe mismatches, forced
/// refreshes), never let a cycle start more than the staleness budget past
/// its last verified full refresh, and — once the world and the adversary
/// freeze — land on artifacts byte-identical to a probe-less full
/// re-extraction of the same world.
TEST(AdversarialDeltaTest, BoundedArmDetectsLiesAndConvergesToTruth) {
  AdversarialWorld world(AdversarialConfig(1, 1), kAdvFreezeDay);
  FleetReport report = world.fleet().RunSimulation(kAdvDays);

  size_t mismatches = 0;
  size_t forced = 0;
  for (const auto& day : report.days) {
    mismatches += day.probe_mismatches;
    forced += day.forced_refreshes;
    for (const auto& [days_stale, n] : day.staleness_histogram) {
      EXPECT_LE(days_stale, kAdvBudget) << "day " << day.day;
    }
  }
  EXPECT_GT(mismatches, 0u);
  EXPECT_GT(forced, 0u);

  AdversarialWorld oracle(Config(1, 1, IncrementalMode::kOff),
                          kAdvFreezeDay);
  oracle.fleet().RunSimulation(kAdvDays);

  // Identical seeded worlds evolve identically whatever the crawler does.
  ASSERT_EQ(world.DumpAllStores(), oracle.DumpAllStores());
  EXPECT_EQ(NormalizedCollection(world.fleet(), kSummariesCollection),
            NormalizedCollection(oracle.fleet(), kSummariesCollection));
  EXPECT_EQ(NormalizedCollection(world.fleet(), kClustersCollection),
            NormalizedCollection(oracle.fleet(), kClustersCollection));
}

/// Fault coins are salted by (seed, day, per-day attempt index) — never by
/// wall clock or worker thread — so an adversarial history must replay
/// bit-identically across every shard x parallelism deployment shape.
TEST(AdversarialDeltaTest, AdversarialRunsAreDeploymentInvariant) {
  AdversarialWorld baseline_world(AdversarialConfig(1, 1), kAdvFreezeDay);
  FleetReport baseline = baseline_world.fleet().RunSimulation(kAdvDays);
  const std::string baseline_dump = baseline.CanonicalDump();
  const auto baseline_summaries =
      NormalizedCollection(baseline_world.fleet(), kSummariesCollection);
  const auto baseline_indexes =
      NormalizedCollection(baseline_world.fleet(), kIndexesCollection);
  const std::string baseline_stores = baseline_world.DumpAllStores();

  struct Deployment {
    int shards, parallelism;
  };
  const Deployment deployments[] = {{2, 1}, {4, 1}, {1, 4}, {4, 4}};
  for (const Deployment& dep : deployments) {
    SCOPED_TRACE("shards=" + std::to_string(dep.shards) +
                 " parallelism=" + std::to_string(dep.parallelism));
    AdversarialWorld world(AdversarialConfig(dep.shards, dep.parallelism),
                           kAdvFreezeDay);
    FleetReport report = world.fleet().RunSimulation(kAdvDays);
    EXPECT_EQ(report.CanonicalDump(), baseline_dump);
    EXPECT_EQ(report.Fingerprint(), baseline.Fingerprint());
    EXPECT_EQ(NormalizedCollection(world.fleet(), kSummariesCollection),
              baseline_summaries);
    EXPECT_EQ(NormalizedCollection(world.fleet(), kIndexesCollection),
              baseline_indexes);
    EXPECT_EQ(world.DumpAllStores(), baseline_stores);
  }
}

/// Restricted dialects (no aggregates, row caps) must get incremental
/// refresh through the paginated-scan fallback: its dirty-class mode
/// prices itself against a full scan using last cycle's magnitudes and
/// wins whenever few classes are dirty — and the merged artifacts must be
/// byte-identical to the always-full control arm's.
TEST(AdversarialDeltaTest, RestrictedDialectDeltaRunsThroughPaginatedScan) {
  const std::string url = "http://restricted.example.org/sparql";
  constexpr int64_t kRunDays = 6;

  struct ArmResult {
    std::map<std::string, std::string> summaries;
    std::map<std::string, std::string> clusters;
    std::vector<std::string> delta_strategies;
    std::string store_dump;
  };
  auto run = [&](IncrementalMode mode) {
    ArmResult result;
    SimClock clock;
    store::Database db;
    ServerOptions so;
    so.refresh_age_days = 1;
    so.incremental.mode = mode;
    // Small pages so this small simulated store exercises the multi-page
    // cost model the way a real million-triple endpoint would.
    so.paginated_page_size = 16;
    Server server(&db, &clock, so);

    rdf::TripleStore store;
    workload::SyntheticLdConfig config;
    config.namespace_iri = "http://restricted.example.org/";
    config.num_classes = 12;
    config.max_instances_per_class = 40;
    config.seed = 77;
    workload::GenerateSyntheticLd(config, &store);
    MutationModel mutation;
    mutation.daily_churn_fraction = 0.04;
    mutation.hot_class_fraction = 0.2;
    mutation.seed = 31415;
    SimulatedRemoteEndpoint ep(url, "restricted", &store, &clock,
                               Dialect::NoAggregates(), {}, {}, mutation);
    server.AttachEndpoint(url, &ep);
    EndpointRecord record;
    record.url = url;
    server.RegisterEndpoint(record);

    for (int64_t day = 0; day < kRunDays; ++day) {
      if (day > 0) clock.AdvanceDays(1);
      ep.AdvanceDataDay(day);
      auto r = server.ProcessEndpoint(url);
      EXPECT_TRUE(r.ok()) << "day " << day << ": " << r.status();
      if (r.ok() && r->delta_extracted) {
        result.delta_strategies.push_back(r->extraction.strategy_used);
      }
    }
    result.summaries = CanonicalCollection(db, kSummariesCollection);
    result.clusters = CanonicalCollection(db, kClustersCollection);
    result.store_dump = DumpStore(store);
    return result;
  };

  ArmResult delta = run(IncrementalMode::kDelta);
  ArmResult track = run(IncrementalMode::kTrack);

  ASSERT_EQ(delta.store_dump, track.store_dump);
  ASSERT_FALSE(delta.delta_strategies.empty())
      << "no dirty-class extraction ran on the restricted dialect";
  for (const std::string& strategy : delta.delta_strategies) {
    EXPECT_EQ(strategy, "paginated-scan");
  }
  EXPECT_TRUE(track.delta_strategies.empty());
  // kTrack extracts every day while kDelta may have skipped the last quiet
  // days, so compare content with the provenance day normalized.
  auto normalize = [](std::map<std::string, std::string> docs) {
    for (auto& [doc_url, dump] : docs) {
      auto parsed = Json::Parse(dump);
      if (!parsed.ok()) continue;
      parsed->Set("extracted_day", 0);
      dump = parsed->Dump();
    }
    return docs;
  };
  EXPECT_EQ(normalize(delta.summaries), normalize(track.summaries));
  EXPECT_EQ(normalize(delta.clusters), normalize(track.clusters));
}

// --------------------------------------------------- probe edge cases

/// An empty store's probe (zero classes) must never authorize a
/// probe-skip: generation equality over an empty fingerprint set proves
/// nothing about the content's provenance.
TEST(ProbeEdgeCaseTest, EmptyStoreNeverProbeSkips) {
  SimClock clock;
  store::Database db;
  ServerOptions so;
  so.refresh_age_days = 1;
  so.incremental.mode = IncrementalMode::kDelta;
  Server server(&db, &clock, so);
  rdf::TripleStore store;  // stays empty: zero classes forever
  SimulatedRemoteEndpoint ep("http://empty.example.org/sparql", "empty",
                             &store, &clock);
  server.AttachEndpoint(ep.url(), &ep);
  EndpointRecord record;
  record.url = ep.url();
  server.RegisterEndpoint(record);

  for (int64_t day = 0; day < 3; ++day) {
    if (day > 0) clock.AdvanceDays(1);
    auto r = server.ProcessEndpoint(ep.url());
    ASSERT_TRUE(r.ok()) << "day " << day << ": " << r.status();
    EXPECT_TRUE(r->probed);
    EXPECT_FALSE(r->probe_skipped) << "day " << day;
    EXPECT_FALSE(r->delta_extracted) << "day " << day;
  }
}

/// A probe arriving the same day an endpoint recovers from an outage must
/// reflect the churn the outage window hid: the endpoint catches its data
/// up before answering, so the reported generation never spuriously
/// matches the one persisted before the outage.
TEST(ProbeEdgeCaseTest, OutageRecoveryProbeSeesTheMissedChurn) {
  const std::string url = "http://flaky.example.org/sparql";
  auto make_mutation = [] {
    MutationModel mutation;
    mutation.daily_churn_fraction = 0.3;
    mutation.hot_class_fraction = 1.0;
    mutation.seed = 2718;
    return mutation;
  };
  auto make_store = [](rdf::TripleStore* store) {
    workload::SyntheticLdConfig config;
    config.namespace_iri = "http://flaky.example.org/";
    config.num_classes = 6;
    config.max_instances_per_class = 20;
    config.seed = 99;
    workload::GenerateSyntheticLd(config, store);
  };
  AvailabilityModel avail;
  avail.forced_outage_days = {1};

  // Delta arm: nobody advances the endpoint's data explicitly — the probe
  // itself must catch up on the recovery day (the regression under test).
  SimClock clock;
  store::Database db;
  ServerOptions so;
  so.refresh_age_days = 1;
  so.incremental.mode = IncrementalMode::kDelta;
  Server server(&db, &clock, so);
  rdf::TripleStore store;
  make_store(&store);
  SimulatedRemoteEndpoint ep(url, "flaky", &store, &clock, Dialect::Full(),
                             avail, {}, make_mutation());
  server.AttachEndpoint(url, &ep);
  EndpointRecord record;
  record.url = url;
  server.RegisterEndpoint(record);

  ASSERT_TRUE(server.ProcessEndpoint(url).ok());
  clock.AdvanceDays(1);
  EXPECT_FALSE(server.ProcessEndpoint(url).ok());  // outage day
  clock.AdvanceDays(1);
  auto recovered = server.ProcessEndpoint(url);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  // Two days of churn happened behind the outage; a stale-store probe
  // would have reported a spurious generation match and skipped.
  EXPECT_FALSE(recovered->probe_skipped);

  // Oracle arm: the identical world crawled probe-less, with the data
  // advanced the way the fleet layer does it.
  SimClock oracle_clock;
  store::Database oracle_db;
  ServerOptions oracle_so;
  oracle_so.refresh_age_days = 1;
  Server oracle(&oracle_db, &oracle_clock, oracle_so);
  rdf::TripleStore oracle_store;
  make_store(&oracle_store);
  SimulatedRemoteEndpoint oracle_ep(url, "flaky", &oracle_store,
                                    &oracle_clock, Dialect::Full(), avail,
                                    {}, make_mutation());
  oracle.AttachEndpoint(url, &oracle_ep);
  EndpointRecord oracle_record;
  oracle_record.url = url;
  oracle.RegisterEndpoint(oracle_record);
  for (int64_t day = 0; day < 3; ++day) {
    if (day > 0) oracle_clock.AdvanceDays(1);
    oracle_ep.AdvanceDataDay(day);
    auto r = oracle.ProcessEndpoint(url);
    EXPECT_EQ(r.ok(), day != 1) << "day " << day;
  }

  ASSERT_EQ(DumpStore(store), DumpStore(oracle_store));
  EXPECT_EQ(CanonicalCollection(db, kSummariesCollection),
            CanonicalCollection(oracle_db, kSummariesCollection));
  EXPECT_EQ(CanonicalCollection(db, kClustersCollection),
            CanonicalCollection(oracle_db, kClustersCollection));
}

// --------------------------------------------------------- merge units

ClassInfo MakeClass(const std::string& iri, size_t instances,
                    std::vector<PropertyInfo> props) {
  ClassInfo c;
  c.iri = iri;
  c.instance_count = instances;
  c.properties = std::move(props);
  return c;
}

PropertyInfo DataProp(const std::string& iri, size_t count) {
  PropertyInfo p;
  p.iri = iri;
  p.count = count;
  return p;
}

PropertyInfo ObjectProp(const std::string& iri, size_t count,
                        const std::string& range, size_t range_count) {
  PropertyInfo p;
  p.iri = iri;
  p.count = count;
  p.is_object_property = true;
  p.range_classes[range] = range_count;
  return p;
}

/// Yesterday's world: classes A, B, C. Today: B grew a property, C is
/// gone, D appeared (externally — the model itself never mints classes,
/// but the merge must handle probe-reported unknowns).
struct MergeFixture {
  IndexSummary prior;     // persisted yesterday
  IndexSummary today;     // what a full re-extraction would see
  IndexSummary partial;   // restricted extraction of the dirty classes
  std::vector<std::string> dirty = {"http://x/B", "http://x/D"};
  std::vector<std::string> removed = {"http://x/C"};

  MergeFixture() {
    prior.endpoint_url = "http://x/sparql";
    prior.num_triples = 100;
    prior.num_instances = 18;
    prior.classes = {
        MakeClass("http://x/A", 10,
                  {DataProp("http://x/name", 10),
                   ObjectProp("http://x/knows", 4, "http://x/B", 4)}),
        MakeClass("http://x/B", 5, {DataProp("http://x/name", 5)}),
        MakeClass("http://x/C", 3, {DataProp("http://x/age", 3)}),
    };
    CanonicalizeIndexSummary(&prior);

    today = prior;
    today.num_triples = 104;
    today.num_instances = 19;
    today.classes = {
        today.classes[0],  // A untouched (canonical order: biggest first)
        MakeClass("http://x/B", 7,
                  {DataProp("http://x/name", 7),
                   DataProp("http://x/age", 2)}),
        MakeClass("http://x/D", 2, {DataProp("http://x/name", 2)}),
    };
    CanonicalizeIndexSummary(&today);

    partial.endpoint_url = "http://x/sparql";
    partial.num_triples = today.num_triples;
    partial.num_instances = today.num_instances;
    for (const ClassInfo& c : today.classes) {
      if (c.iri == "http://x/B" || c.iri == "http://x/D") {
        partial.classes.push_back(c);
      }
    }
    CanonicalizeIndexSummary(&partial);
  }
};

TEST(MergeDirtyClassesTest, MergeEqualsFullReextraction) {
  MergeFixture f;
  IndexSummary merged =
      extraction::MergeDirtyClasses(f.prior, f.partial, f.dirty, f.removed);
  EXPECT_EQ(merged.ToJson().Dump(), f.today.ToJson().Dump());
}

TEST(MergeDirtyClassesTest, DirtyClassExtractedToZeroIsDropped) {
  MergeFixture f;
  // B re-extracts to nothing (all its instances retyped away): the merge
  // must drop it, exactly as a full pass would never see it.
  IndexSummary partial;
  partial.endpoint_url = f.partial.endpoint_url;
  partial.num_triples = 90;
  partial.num_instances = 12;
  for (const ClassInfo& c : f.partial.classes) {
    if (c.iri != "http://x/B") partial.classes.push_back(c);
  }
  CanonicalizeIndexSummary(&partial);
  IndexSummary merged =
      extraction::MergeDirtyClasses(f.prior, partial, f.dirty, f.removed);
  for (const ClassInfo& c : merged.classes) {
    EXPECT_NE(c.iri, "http://x/B");
    EXPECT_NE(c.iri, "http://x/C");
  }
  EXPECT_EQ(merged.num_classes, 2u);  // A and D
  EXPECT_EQ(merged.num_triples, 90u);
}

TEST(SchemaPatchTest, PatchedFromIndexesEqualsFromIndexes) {
  MergeFixture f;
  schema::SchemaSummary prior_summary =
      schema::SchemaSummary::FromIndexes(f.prior);
  IndexSummary merged =
      extraction::MergeDirtyClasses(f.prior, f.partial, f.dirty, f.removed);
  schema::SchemaSummary patched = schema::SchemaSummary::PatchedFromIndexes(
      prior_summary, merged, f.dirty);
  schema::SchemaSummary full = schema::SchemaSummary::FromIndexes(merged);
  EXPECT_EQ(patched.ToJson().Dump(), full.ToJson().Dump());
}

TEST(SchemaPatchTest, PatchWithNoDirtyClassesReproducesPrior) {
  MergeFixture f;
  schema::SchemaSummary prior_summary =
      schema::SchemaSummary::FromIndexes(f.prior);
  schema::SchemaSummary patched = schema::SchemaSummary::PatchedFromIndexes(
      prior_summary, f.prior, {});
  EXPECT_EQ(patched.ToJson().Dump(), prior_summary.ToJson().Dump());
}

}  // namespace
}  // namespace hbold
