// Delta-extraction differential tests: the incremental pipeline (change
// probes, dirty-class re-extraction, schema/cluster patching) must land on
// byte-identical artifacts to a full re-extraction of the same churning
// world, across deployment shapes, while issuing strictly fewer queries.
// Plus unit-level checks for MergeDirtyClasses and PatchedFromIndexes.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "endpoint/simulated_endpoint.h"
#include "extraction/indexes.h"
#include "hbold/fleet.h"
#include "hbold/server.h"
#include "rdf/graph.h"
#include "schema/schema_summary.h"
#include "store/database.h"
#include "workload/ld_generator.h"

namespace hbold {
namespace {

using endpoint::Dialect;
using endpoint::EndpointRecord;
using endpoint::MutationModel;
using endpoint::SimulatedRemoteEndpoint;
using extraction::ClassInfo;
using extraction::IndexSummary;
using extraction::PropertyInfo;

constexpr size_t kEndpoints = 8;
constexpr int64_t kDays = 6;
constexpr double kChurnFraction = 0.06;

std::map<std::string, std::string> CanonicalCollection(
    const store::Database& db, const std::string& collection) {
  std::map<std::string, std::string> canonical;
  const store::Collection* c = db.FindCollection(collection);
  if (c == nullptr) return canonical;
  for (store::Document doc : c->Snapshot()) {
    std::string url = doc.GetString("endpoint_url");
    doc.Set("_id", 0);
    canonical[url] = doc.Dump();
  }
  return canonical;
}

std::map<std::string, std::string> MergedCanonicalCollection(
    const Fleet& fleet, const std::string& collection) {
  std::map<std::string, std::string> merged;
  for (size_t s = 0; s < fleet.num_shards(); ++s) {
    for (auto& [url, dump] :
         CanonicalCollection(fleet.shard_db(s), collection)) {
      merged.emplace(url, dump);
    }
  }
  return merged;
}

std::string DumpStore(const rdf::TripleStore& store) {
  std::string out;
  for (const rdf::Triple& t : store.MatchAll(rdf::TriplePattern{})) {
    out += store.dict().Get(t.s).lexical();
    out += ' ';
    out += store.dict().Get(t.p).lexical();
    out += ' ';
    out += store.dict().Get(t.o).lexical();
    out += '\n';
  }
  return out;
}

/// One seeded churning world. Unlike FleetWorld, every run regenerates its
/// stores: the mutation model rewrites them day by day, so sharing stores
/// across runs would leak one run's churn into the next. Two DeltaWorlds
/// built from the same options replay bit-identical histories.
class DeltaWorld {
 public:
  static std::string Url(size_t i) {
    return "http://delta" + std::to_string(i) + ".example.org/sparql";
  }

  explicit DeltaWorld(FleetOptions options, double churn = kChurnFraction) {
    options.server.refresh_age_days = 1;  // churn-sensitive: due daily
    fleet_ = std::make_unique<Fleet>(&clock_, options);
    for (size_t i = 0; i < kEndpoints; ++i) {
      auto store = std::make_unique<rdf::TripleStore>();
      workload::SyntheticLdConfig config;
      config.namespace_iri = "http://delta" + std::to_string(i) +
                             ".example.org/";
      config.num_classes = 6 + i * 2;
      config.max_instances_per_class = 20;
      config.seed = 2600 + i;
      workload::GenerateSyntheticLd(config, store.get());

      Dialect dialect = Dialect::Full();
      if (i % 4 == 1) dialect = Dialect::NoGroupBy();
      if (i % 4 == 2) dialect = Dialect::NoAggregates();
      if (i % 4 == 3) dialect = Dialect::RowCapped(64);
      MutationModel mutation;
      // A third of the fleet never changes — realistic (most LD sources
      // are quiet) and what makes the probe-skip path reachable in the
      // churning differential runs.
      mutation.daily_churn_fraction = (i % 3 == 0) ? 0.0 : churn;
      mutation.seed = 500 + i * 104729;
      auto ep = std::make_unique<SimulatedRemoteEndpoint>(
          Url(i), "Delta " + std::to_string(i), store.get(), &clock_,
          dialect, endpoint::AvailabilityModel{}, endpoint::LatencyModel{},
          mutation);
      EndpointRecord record;
      record.url = Url(i);
      record.name = ep->name();
      fleet_->RegisterEndpoint(record);
      fleet_->AttachEndpoint(Url(i), ep.get());
      stores_.push_back(std::move(store));
      endpoints_.push_back(std::move(ep));
    }
  }

  Fleet& fleet() { return *fleet_; }

  size_t TotalQueriesServed() const {
    size_t total = 0;
    for (const auto& ep : endpoints_) total += ep->queries_served();
    return total;
  }

  std::string DumpAllStores() const {
    std::string out;
    for (const auto& store : stores_) out += DumpStore(*store);
    return out;
  }

 private:
  SimClock clock_;
  std::vector<std::unique_ptr<rdf::TripleStore>> stores_;
  std::vector<std::unique_ptr<SimulatedRemoteEndpoint>> endpoints_;
  std::unique_ptr<Fleet> fleet_;
};

FleetOptions Config(int shards, int parallelism, IncrementalMode mode) {
  FleetOptions options;
  options.num_shards = shards;
  options.server.parallelism = parallelism;
  options.server.incremental.mode = mode;
  if (shards == 1 && parallelism == 1) options.fleet_workers = 1;
  return options;
}

struct RunResult {
  FleetReport report;
  std::map<std::string, std::string> summaries;
  std::map<std::string, std::string> clusters;
  std::map<std::string, std::string> indexes;
  std::string stores;
  size_t queries = 0;
  size_t probe_skips = 0;
  size_t delta_extractions = 0;
};

RunResult RunWorld(FleetOptions options, double churn = kChurnFraction) {
  DeltaWorld world(options, churn);
  RunResult r;
  r.report = world.fleet().RunSimulation(kDays);
  r.summaries = MergedCanonicalCollection(world.fleet(), kSummariesCollection);
  r.clusters = MergedCanonicalCollection(world.fleet(), kClustersCollection);
  r.indexes = MergedCanonicalCollection(world.fleet(), kIndexesCollection);
  r.stores = world.DumpAllStores();
  r.queries = world.TotalQueriesServed();
  for (const auto& day : r.report.days) {
    r.probe_skips += day.probe_skips;
    r.delta_extractions += day.delta_extractions;
  }
  return r;
}

// ------------------------------------------------ the differential gate

/// kDelta must compute exactly what kTrack (probe + always-full, the
/// control arm) and kOff (the seed pipeline) compute, with fewer queries.
TEST(DeltaExtractionTest, DeltaMatchesFullReextraction) {
  RunResult off = RunWorld(Config(1, 1, IncrementalMode::kOff));
  RunResult track = RunWorld(Config(1, 1, IncrementalMode::kTrack));
  RunResult delta = RunWorld(Config(1, 1, IncrementalMode::kDelta));

  // Identical seeded worlds evolve identically whatever the crawler does.
  ASSERT_EQ(track.stores, off.stores);
  ASSERT_EQ(delta.stores, off.stores);

  // Content identity across all three modes.
  EXPECT_EQ(track.report.ContentDump(), off.report.ContentDump());
  EXPECT_EQ(delta.report.ContentDump(), off.report.ContentDump());
  EXPECT_EQ(delta.report.ContentFingerprint(), off.report.ContentFingerprint());

  // Persisted artifacts: byte-identical summaries and cluster schemas.
  EXPECT_EQ(track.summaries, off.summaries);
  EXPECT_EQ(delta.summaries, off.summaries);
  EXPECT_EQ(delta.clusters, off.clusters);
  // Index summaries are persisted only under incremental modes; the two
  // arms must agree with each other.
  EXPECT_TRUE(off.indexes.empty());
  ASSERT_FALSE(track.indexes.empty());
  EXPECT_EQ(delta.indexes, track.indexes);

  // The delta arm actually took the cheap paths, and they paid off.
  EXPECT_GT(delta.probe_skips, 0u);
  EXPECT_GT(delta.delta_extractions, 0u);
  EXPECT_EQ(track.probe_skips, 0u);
  EXPECT_LT(delta.queries, track.queries);
  EXPECT_LT(delta.queries, off.queries);
}

/// Within kDelta the usual deployment-invariance contract holds: shard
/// count and parallelism never change the canonical history.
TEST(DeltaExtractionTest, DeltaInvariantAcrossDeployments) {
  RunResult baseline = RunWorld(Config(1, 1, IncrementalMode::kDelta));
  ASSERT_GT(baseline.probe_skips + baseline.delta_extractions, 0u);
  const std::string baseline_dump = baseline.report.CanonicalDump();

  struct Deployment {
    int shards, parallelism;
  };
  const Deployment deployments[] = {{2, 1}, {4, 1}, {1, 4}, {4, 4}};
  for (const Deployment& dep : deployments) {
    SCOPED_TRACE("shards=" + std::to_string(dep.shards) +
                 " parallelism=" + std::to_string(dep.parallelism));
    RunResult run = RunWorld(Config(dep.shards, dep.parallelism,
                               IncrementalMode::kDelta));
    EXPECT_EQ(run.report.CanonicalDump(), baseline_dump);
    EXPECT_EQ(run.report.Fingerprint(), baseline.report.Fingerprint());
    EXPECT_EQ(run.summaries, baseline.summaries);
    EXPECT_EQ(run.clusters, baseline.clusters);
    EXPECT_EQ(run.indexes, baseline.indexes);
    EXPECT_EQ(run.stores, baseline.stores);
  }
}

/// An all-quiet fleet costs one probe per endpoint per day after the first
/// full extraction — the O(1)-queries steady state the probe exists for.
TEST(DeltaExtractionTest, QuietFleetSettlesIntoProbeSkips) {
  DeltaWorld world(Config(1, 1, IncrementalMode::kDelta), /*churn=*/0.0);
  FleetReport first = world.fleet().RunSimulation(1);
  ASSERT_EQ(first.days[0].probe_skips, 0u);  // nothing stored yet
  ASSERT_EQ(first.days[0].succeeded, kEndpoints);
  size_t queries_after_first = world.TotalQueriesServed();

  FleetReport rest = world.fleet().RunSimulation(3);
  for (const auto& day : rest.days) {
    EXPECT_EQ(day.due, kEndpoints);
    EXPECT_EQ(day.succeeded, kEndpoints);
    EXPECT_EQ(day.probes, kEndpoints);
    EXPECT_EQ(day.probe_skips, kEndpoints);
    EXPECT_EQ(day.delta_extractions, 0u);
  }
  // Three quiet days: exactly one probe query per endpoint per day.
  EXPECT_EQ(world.TotalQueriesServed() - queries_after_first,
            3 * kEndpoints);
}

/// full_refresh_fraction = 0 disables the restricted path entirely; the
/// pipeline must fall back to full re-extraction and still agree.
TEST(DeltaExtractionTest, ZeroThresholdFallsBackToFullAndStaysExact) {
  FleetOptions always_full = Config(1, 1, IncrementalMode::kDelta);
  always_full.server.incremental.full_refresh_fraction = 0.0;
  RunResult fallback = RunWorld(always_full);
  RunResult delta = RunWorld(Config(1, 1, IncrementalMode::kDelta));

  EXPECT_EQ(fallback.delta_extractions, 0u);
  EXPECT_GT(fallback.probe_skips, 0u);  // quiet days still skip
  EXPECT_EQ(fallback.report.ContentFingerprint(),
            delta.report.ContentFingerprint());
  EXPECT_EQ(fallback.summaries, delta.summaries);
  EXPECT_EQ(fallback.clusters, delta.clusters);
}

// --------------------------------------------------------- merge units

ClassInfo MakeClass(const std::string& iri, size_t instances,
                    std::vector<PropertyInfo> props) {
  ClassInfo c;
  c.iri = iri;
  c.instance_count = instances;
  c.properties = std::move(props);
  return c;
}

PropertyInfo DataProp(const std::string& iri, size_t count) {
  PropertyInfo p;
  p.iri = iri;
  p.count = count;
  return p;
}

PropertyInfo ObjectProp(const std::string& iri, size_t count,
                        const std::string& range, size_t range_count) {
  PropertyInfo p;
  p.iri = iri;
  p.count = count;
  p.is_object_property = true;
  p.range_classes[range] = range_count;
  return p;
}

/// Yesterday's world: classes A, B, C. Today: B grew a property, C is
/// gone, D appeared (externally — the model itself never mints classes,
/// but the merge must handle probe-reported unknowns).
struct MergeFixture {
  IndexSummary prior;     // persisted yesterday
  IndexSummary today;     // what a full re-extraction would see
  IndexSummary partial;   // restricted extraction of the dirty classes
  std::vector<std::string> dirty = {"http://x/B", "http://x/D"};
  std::vector<std::string> removed = {"http://x/C"};

  MergeFixture() {
    prior.endpoint_url = "http://x/sparql";
    prior.num_triples = 100;
    prior.num_instances = 18;
    prior.classes = {
        MakeClass("http://x/A", 10,
                  {DataProp("http://x/name", 10),
                   ObjectProp("http://x/knows", 4, "http://x/B", 4)}),
        MakeClass("http://x/B", 5, {DataProp("http://x/name", 5)}),
        MakeClass("http://x/C", 3, {DataProp("http://x/age", 3)}),
    };
    CanonicalizeIndexSummary(&prior);

    today = prior;
    today.num_triples = 104;
    today.num_instances = 19;
    today.classes = {
        today.classes[0],  // A untouched (canonical order: biggest first)
        MakeClass("http://x/B", 7,
                  {DataProp("http://x/name", 7),
                   DataProp("http://x/age", 2)}),
        MakeClass("http://x/D", 2, {DataProp("http://x/name", 2)}),
    };
    CanonicalizeIndexSummary(&today);

    partial.endpoint_url = "http://x/sparql";
    partial.num_triples = today.num_triples;
    partial.num_instances = today.num_instances;
    for (const ClassInfo& c : today.classes) {
      if (c.iri == "http://x/B" || c.iri == "http://x/D") {
        partial.classes.push_back(c);
      }
    }
    CanonicalizeIndexSummary(&partial);
  }
};

TEST(MergeDirtyClassesTest, MergeEqualsFullReextraction) {
  MergeFixture f;
  IndexSummary merged =
      extraction::MergeDirtyClasses(f.prior, f.partial, f.dirty, f.removed);
  EXPECT_EQ(merged.ToJson().Dump(), f.today.ToJson().Dump());
}

TEST(MergeDirtyClassesTest, DirtyClassExtractedToZeroIsDropped) {
  MergeFixture f;
  // B re-extracts to nothing (all its instances retyped away): the merge
  // must drop it, exactly as a full pass would never see it.
  IndexSummary partial;
  partial.endpoint_url = f.partial.endpoint_url;
  partial.num_triples = 90;
  partial.num_instances = 12;
  for (const ClassInfo& c : f.partial.classes) {
    if (c.iri != "http://x/B") partial.classes.push_back(c);
  }
  CanonicalizeIndexSummary(&partial);
  IndexSummary merged =
      extraction::MergeDirtyClasses(f.prior, partial, f.dirty, f.removed);
  for (const ClassInfo& c : merged.classes) {
    EXPECT_NE(c.iri, "http://x/B");
    EXPECT_NE(c.iri, "http://x/C");
  }
  EXPECT_EQ(merged.num_classes, 2u);  // A and D
  EXPECT_EQ(merged.num_triples, 90u);
}

TEST(SchemaPatchTest, PatchedFromIndexesEqualsFromIndexes) {
  MergeFixture f;
  schema::SchemaSummary prior_summary =
      schema::SchemaSummary::FromIndexes(f.prior);
  IndexSummary merged =
      extraction::MergeDirtyClasses(f.prior, f.partial, f.dirty, f.removed);
  schema::SchemaSummary patched = schema::SchemaSummary::PatchedFromIndexes(
      prior_summary, merged, f.dirty);
  schema::SchemaSummary full = schema::SchemaSummary::FromIndexes(merged);
  EXPECT_EQ(patched.ToJson().Dump(), full.ToJson().Dump());
}

TEST(SchemaPatchTest, PatchWithNoDirtyClassesReproducesPrior) {
  MergeFixture f;
  schema::SchemaSummary prior_summary =
      schema::SchemaSummary::FromIndexes(f.prior);
  schema::SchemaSummary patched = schema::SchemaSummary::PatchedFromIndexes(
      prior_summary, f.prior, {});
  EXPECT_EQ(patched.ToJson().Dump(), prior_summary.ToJson().Dump());
}

}  // namespace
}  // namespace hbold
