// Unit + property tests for src/viz: hierarchy, treemap, sunburst, circle
// packing, edge bundling, force layout, SVG output.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/random.h"
#include "viz/circle_pack.h"
#include "viz/color.h"
#include "viz/edge_bundling.h"
#include "viz/force_layout.h"
#include "viz/hierarchy.h"
#include "viz/render.h"
#include "viz/sunburst.h"
#include "viz/svg.h"
#include "viz/treemap.h"

namespace hbold::viz {
namespace {

/// Fixed two-cluster hierarchy used by several layout tests:
///   root -> C1 {A:60, B:30}, C2 {C:10}
Hierarchy FixedHierarchy() {
  Hierarchy a{"A", 60, {}};
  Hierarchy b{"B", 30, {}};
  Hierarchy c{"C", 10, {}};
  Hierarchy c1{"C1", 0, {a, b}};
  Hierarchy c2{"C2", 0, {c}};
  return Hierarchy{"root", 0, {c1, c2}};
}

/// Random hierarchy for property sweeps: `clusters` clusters with 1..6
/// leaves of value 1..100 (some zero-valued to exercise the equal-share
/// rule).
Hierarchy RandomHierarchy(uint64_t seed, size_t clusters) {
  Rng rng(seed);
  Hierarchy root{"root", 0, {}};
  for (size_t c = 0; c < clusters; ++c) {
    Hierarchy cluster{"cl" + std::to_string(c), 0, {}};
    size_t leaves = 1 + rng.Uniform(6);
    for (size_t l = 0; l < leaves; ++l) {
      double value =
          rng.Chance(0.15) ? 0 : static_cast<double>(1 + rng.Uniform(100));
      cluster.children.push_back(
          Hierarchy{"leaf" + std::to_string(c) + "_" + std::to_string(l),
                    value,
                    {}});
    }
    root.children.push_back(std::move(cluster));
  }
  return root;
}

// ---------------------------------------------------------------- Hierarchy

TEST(HierarchyTest, EffectiveValueSumsLeaves) {
  Hierarchy h = FixedHierarchy();
  EXPECT_DOUBLE_EQ(h.EffectiveValue(), 100.0);
  EXPECT_DOUBLE_EQ(h.children[0].EffectiveValue(), 90.0);
}

TEST(HierarchyTest, ZeroLeafGetsEqualShare) {
  Hierarchy z{"z", 0, {}};
  Hierarchy a{"a", 40, {}};
  Hierarchy b{"b", 20, {}};
  Hierarchy parent{"p", 0, {a, z, b}};
  std::vector<double> values = parent.ChildValues();
  // Zero leaf gets the mean of non-zero siblings: (40+20)/2 = 30.
  EXPECT_DOUBLE_EQ(values[1], 30.0);
  EXPECT_DOUBLE_EQ(values[0], 40.0);
}

TEST(HierarchyTest, AllZeroLeavesShareEqually) {
  Hierarchy parent{"p", 0, {{"a", 0, {}}, {"b", 0, {}}}};
  std::vector<double> values = parent.ChildValues();
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 1.0);
}

TEST(HierarchyTest, TreeSizeAndDepth) {
  Hierarchy h = FixedHierarchy();
  EXPECT_EQ(h.TreeSize(), 6u);
  EXPECT_EQ(h.MaxDepth(), 2u);
  EXPECT_EQ(Hierarchy{}.MaxDepth(), 0u);
}

// ---------------------------------------------------------------- Treemap

TEST(TreemapTest, FixedLayoutShape) {
  TreemapOptions opt;
  opt.padding = 0;
  opt.header = 0;
  auto cells = TreemapLayout(FixedHierarchy(), Rect{0, 0, 400, 300}, opt);
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].depth, 0u);
  // Depth-1 areas proportional to 90 / 10 of the canvas.
  double cluster_area = 0;
  for (const TreemapCell& c : cells) {
    if (c.depth == 1) cluster_area += c.rect.Area();
    if (c.name == "C1") {
      EXPECT_NEAR(c.rect.Area(), 400 * 300 * 0.9, 1.0);
    }
  }
  EXPECT_NEAR(cluster_area, 400 * 300, 1.0);
}

class TreemapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreemapPropertyTest, CellsNestDontOverlapAndAreasAreProportional) {
  Hierarchy root = RandomHierarchy(GetParam(), 2 + GetParam() % 5);
  TreemapOptions opt;
  opt.padding = 0;
  opt.header = 0;
  Rect bounds{0, 0, 640, 480};
  auto cells = TreemapLayout(root, bounds, opt);

  std::vector<const TreemapCell*> clusters;
  std::vector<const TreemapCell*> leaves;
  for (const TreemapCell& c : cells) {
    if (c.depth == 1) clusters.push_back(&c);
    if (c.depth == 2) leaves.push_back(&c);
  }
  // Nesting: every cluster inside bounds; every leaf inside some cluster.
  for (const TreemapCell* c : clusters) {
    EXPECT_TRUE(bounds.ContainsRect(c->rect, 1e-6)) << c->name;
  }
  for (const TreemapCell* l : leaves) {
    bool inside = false;
    for (const TreemapCell* c : clusters) {
      if (c->rect.ContainsRect(l->rect, 1e-6)) inside = true;
    }
    EXPECT_TRUE(inside) << l->name;
  }
  // Sibling clusters don't overlap.
  for (size_t i = 0; i < clusters.size(); ++i) {
    for (size_t j = i + 1; j < clusters.size(); ++j) {
      EXPECT_FALSE(clusters[i]->rect.Overlaps(clusters[j]->rect, 1e-6))
          << clusters[i]->name << " vs " << clusters[j]->name;
    }
  }
  // Leaves of the same cluster don't overlap.
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t j = i + 1; j < leaves.size(); ++j) {
      if (leaves[i]->group != leaves[j]->group) continue;
      EXPECT_FALSE(leaves[i]->rect.Overlaps(leaves[j]->rect, 1e-6));
    }
  }
  // Areas proportional to effective values (cluster level).
  std::vector<double> values = root.ChildValues();
  double total_value = std::accumulate(values.begin(), values.end(), 0.0);
  for (size_t i = 0; i < clusters.size(); ++i) {
    // Cells are emitted in child order at depth 1.
    double expected = values[i] / total_value * bounds.Area();
    EXPECT_NEAR(clusters[i]->rect.Area(), expected, bounds.Area() * 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreemapPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(TreemapTest, PaddingAndHeaderInset) {
  TreemapOptions opt;
  opt.padding = 4;
  opt.header = 12;
  auto cells = TreemapLayout(FixedHierarchy(), Rect{0, 0, 400, 300}, opt);
  // Leaves sit strictly inside their cluster (below the header strip).
  for (const TreemapCell& leaf : cells) {
    if (leaf.depth != 2) continue;
    for (const TreemapCell& cluster : cells) {
      if (cluster.depth != 1) continue;
      if (cluster.rect.ContainsRect(leaf.rect, 1e-6)) {
        EXPECT_GE(leaf.rect.y, cluster.rect.y + opt.header - 1e-6);
      }
    }
  }
}

TEST(TreemapTest, SingleLeafFillsBounds) {
  Hierarchy solo{"only", 5, {}};
  auto cells = TreemapLayout(solo, Rect{0, 0, 100, 50}, {});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_DOUBLE_EQ(cells[0].rect.Area(), 5000.0);
}

// ---------------------------------------------------------------- Sunburst

TEST(SunburstTest, AnglesPartitionTheCircle) {
  auto slices = SunburstLayout(FixedHierarchy(), {});
  double depth1_span = 0;
  for (const SunburstSlice& s : slices) {
    if (s.depth == 1) depth1_span += s.a1 - s.a0;
    EXPECT_LE(s.a0, s.a1 + 1e-12);
  }
  EXPECT_NEAR(depth1_span, 2 * kPi, 1e-9);
}

TEST(SunburstTest, AngleProportionalToValue) {
  auto slices = SunburstLayout(FixedHierarchy(), {});
  const SunburstSlice* a = nullptr;
  const SunburstSlice* b = nullptr;
  for (const SunburstSlice& s : slices) {
    if (s.name == "A") a = &s;
    if (s.name == "B") b = &s;
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NEAR((a->a1 - a->a0) / (b->a1 - b->a0), 2.0, 1e-9);
}

TEST(SunburstTest, ChildrenNestWithinParentAngles) {
  auto slices = SunburstLayout(FixedHierarchy(), {});
  const SunburstSlice* c1 = nullptr;
  for (const SunburstSlice& s : slices) {
    if (s.name == "C1") c1 = &s;
  }
  ASSERT_NE(c1, nullptr);
  for (const SunburstSlice& s : slices) {
    if (s.depth == 2 && (s.name == "A" || s.name == "B")) {
      EXPECT_GE(s.a0, c1->a0 - 1e-9);
      EXPECT_LE(s.a1, c1->a1 + 1e-9);
      // Outer ring sits outside the inner ring.
      EXPECT_GE(s.r0, c1->r1 - 1e-9);
    }
  }
}

TEST(SunburstTest, RingRadiiOrdered) {
  SunburstOptions opt;
  opt.radius = 200;
  auto slices = SunburstLayout(FixedHierarchy(), opt);
  for (const SunburstSlice& s : slices) {
    EXPECT_LT(s.r0, s.r1);
    EXPECT_LE(s.r1, opt.radius + 1e-9);
    EXPECT_GE(s.r0, opt.radius * opt.inner_hole - 1e-9);
  }
}

TEST(SunburstTest, EmptyHierarchy) {
  EXPECT_TRUE(SunburstLayout(Hierarchy{"x", 1, {}}, {}).empty());
}

// ---------------------------------------------------------------- CirclePack

TEST(PackSiblingsTest, TwoCirclesTangent) {
  auto pos = PackSiblings({10, 5});
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_NEAR(Distance(pos[0], pos[1]), 15.0, 1e-9);
}

class PackSiblingsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PackSiblingsPropertyTest, NoOverlapsAndCompact) {
  Rng rng(GetParam());
  size_t n = 2 + rng.Uniform(40);
  std::vector<double> radii;
  double sum_r = 0;
  for (size_t i = 0; i < n; ++i) {
    radii.push_back(1.0 + static_cast<double>(rng.Uniform(20)));
    sum_r += radii.back();
  }
  auto pos = PackSiblings(radii);
  ASSERT_EQ(pos.size(), n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double d = Distance(pos[i], pos[j]);
      EXPECT_GE(d, radii[i] + radii[j] - 1e-5)
          << "overlap between " << i << " and " << j << " seed " << GetParam();
    }
  }
  // Compactness sanity: everything fits inside a circle of radius
  // sum of radii (a line arrangement would already achieve this).
  Circle enclosing = EncloseCircles([&] {
    std::vector<Circle> cs;
    for (size_t i = 0; i < n; ++i) {
      cs.push_back(Circle{pos[i].x, pos[i].y, radii[i]});
    }
    return cs;
  }());
  EXPECT_LE(enclosing.r, sum_r + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackSiblingsPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST(EncloseCirclesTest, ContainsAllInputs) {
  std::vector<Circle> cs{{0, 0, 5}, {20, 0, 3}, {10, 15, 4}};
  Circle e = EncloseCircles(cs);
  for (const Circle& c : cs) {
    EXPECT_TRUE(e.ContainsCircle(c, 1e-5));
  }
  EXPECT_TRUE(EncloseCircles({}).r == 0);
}

class CirclePackPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CirclePackPropertyTest, ContainmentAndDisjointness) {
  Hierarchy root = RandomHierarchy(GetParam() + 100, 2 + GetParam() % 4);
  CirclePackOptions opt;
  opt.radius = 250;
  auto circles = CirclePackLayout(root, opt);
  ASSERT_EQ(circles.size(), root.TreeSize());
  const PackedCircle* outer = &circles[0];
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_NEAR(outer->circle.r, 250, 1e-6);

  // Every cluster inside the dataset circle; clusters pairwise disjoint.
  std::vector<const PackedCircle*> clusters;
  std::vector<const PackedCircle*> leaves;
  for (const PackedCircle& c : circles) {
    if (c.depth == 1) clusters.push_back(&c);
    if (c.depth == 2) leaves.push_back(&c);
  }
  for (const PackedCircle* c : clusters) {
    EXPECT_TRUE(outer->circle.ContainsCircle(c->circle, 1e-4)) << c->name;
  }
  for (size_t i = 0; i < clusters.size(); ++i) {
    for (size_t j = i + 1; j < clusters.size(); ++j) {
      EXPECT_FALSE(clusters[i]->circle.Overlaps(clusters[j]->circle, 1e-4));
    }
  }
  // Leaves inside their cluster; same-cluster leaves disjoint.
  for (const PackedCircle* l : leaves) {
    bool inside = false;
    for (const PackedCircle* c : clusters) {
      if (c->group == l->group && c->circle.ContainsCircle(l->circle, 1e-4)) {
        inside = true;
      }
    }
    EXPECT_TRUE(inside) << l->name;
  }
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (size_t j = i + 1; j < leaves.size(); ++j) {
      if (leaves[i]->group != leaves[j]->group) continue;
      EXPECT_FALSE(leaves[i]->circle.Overlaps(leaves[j]->circle, 1e-4));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CirclePackPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(CirclePackTest, LeafAreasProportionalWithinCluster) {
  auto circles = CirclePackLayout(FixedHierarchy(), {});
  const PackedCircle* a = nullptr;
  const PackedCircle* b = nullptr;
  for (const PackedCircle& c : circles) {
    if (c.name == "A") a = &c;
    if (c.name == "B") b = &c;
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NEAR(a->circle.r * a->circle.r / (b->circle.r * b->circle.r), 2.0,
              1e-6);
}

// ---------------------------------------------------------------- Bundling

TEST(BSplineTest, EndpointsInterpolated) {
  std::vector<Point> control{{0, 0}, {50, 100}, {100, 0}};
  auto curve = SampleBSpline(control, 8);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_NEAR(curve.front().x, 0, 1e-9);
  EXPECT_NEAR(curve.front().y, 0, 1e-9);
  EXPECT_NEAR(curve.back().x, 100, 1e-9);
  EXPECT_NEAR(curve.back().y, 0, 1e-9);
}

TEST(BSplineTest, CurvePullsTowardControlPoints) {
  std::vector<Point> control{{0, 0}, {50, 100}, {100, 0}};
  auto curve = SampleBSpline(control, 16);
  double max_y = 0;
  for (const Point& p : curve) max_y = std::max(max_y, p.y);
  EXPECT_GT(max_y, 20.0);
  EXPECT_LT(max_y, 100.0);  // B-splines do not interpolate interior points
}

/// Schema + clusters for bundling tests: two clusters of two classes each.
struct BundleFixture {
  schema::SchemaSummary summary;
  cluster::ClusterSchema clusters;
};

BundleFixture MakeBundleFixture() {
  extraction::IndexSummary idx;
  idx.endpoint_url = "u";
  auto add_class = [&](const std::string& iri, size_t n) {
    extraction::ClassInfo c;
    c.iri = iri;
    c.instance_count = n;
    idx.classes.push_back(c);
  };
  add_class("http://x/A", 10);
  add_class("http://x/B", 10);
  add_class("http://x/C", 10);
  add_class("http://x/D", 10);
  auto link = [&](size_t from, const std::string& p, const std::string& to,
                  size_t n) {
    extraction::PropertyInfo info;
    info.iri = p;
    info.count = n;
    info.is_object_property = true;
    info.range_classes[to] = n;
    idx.classes[from].properties.push_back(info);
  };
  link(0, "http://x/ab", "http://x/B", 5);   // within cluster 0
  link(0, "http://x/ac", "http://x/C", 3);   // cross-cluster
  link(2, "http://x/cd", "http://x/D", 4);   // within cluster 1
  BundleFixture f;
  f.summary = schema::SchemaSummary::FromIndexes(idx);
  cluster::Partition part{0, 0, 1, 1};
  f.clusters = cluster::ClusterSchema::FromPartition(f.summary, part);
  return f;
}

TEST(EdgeBundlingTest, LeavesOnCircleGroupedByCluster) {
  BundleFixture f = MakeBundleFixture();
  EdgeBundlingOptions opt;
  opt.radius = 100;
  auto layout = BundleSchemaSummary(f.summary, f.clusters, opt);
  ASSERT_EQ(layout.leaves.size(), 4u);
  for (const BundleLeaf& leaf : layout.leaves) {
    EXPECT_NEAR(std::hypot(leaf.position.x, leaf.position.y), 100, 1e-9);
  }
  // Cluster-mates are angularly adjacent.
  EXPECT_EQ(layout.leaves[0].cluster, layout.leaves[1].cluster);
  EXPECT_EQ(layout.leaves[2].cluster, layout.leaves[3].cluster);
}

TEST(EdgeBundlingTest, EdgesAnchoredAtLeaves) {
  BundleFixture f = MakeBundleFixture();
  auto layout = BundleSchemaSummary(f.summary, f.clusters, {});
  ASSERT_EQ(layout.edges.size(), 3u);
  for (const BundledEdge& e : layout.edges) {
    const Point& src = layout.leaves[e.src_leaf].position;
    const Point& dst = layout.leaves[e.dst_leaf].position;
    EXPECT_NEAR(e.polyline.front().x, src.x, 1e-9);
    EXPECT_NEAR(e.polyline.front().y, src.y, 1e-9);
    EXPECT_NEAR(e.polyline.back().x, dst.x, 1e-9);
    EXPECT_NEAR(e.polyline.back().y, dst.y, 1e-9);
  }
}

TEST(EdgeBundlingTest, BetaZeroIsNearStraight) {
  BundleFixture f = MakeBundleFixture();
  EdgeBundlingOptions opt;
  opt.beta = 0.0;
  auto layout = BundleSchemaSummary(f.summary, f.clusters, opt);
  // With beta=0 all control points lie on the chord: ink == straight ink.
  EXPECT_NEAR(layout.TotalInk(), layout.StraightInk(),
              layout.StraightInk() * 0.01);
}

TEST(EdgeBundlingTest, BundlingCurvesCrossClusterEdges) {
  BundleFixture f = MakeBundleFixture();
  EdgeBundlingOptions strong;
  strong.beta = 1.0;
  auto bundled = BundleSchemaSummary(f.summary, f.clusters, strong);
  // Bundled ink exceeds chord ink per edge (detours through the
  // hierarchy), which is the Holten trade: longer paths, less clutter.
  EXPECT_GT(bundled.TotalInk(), bundled.StraightInk() * 0.99);
  // And beta interpolates monotonically toward straight.
  EdgeBundlingOptions mid;
  mid.beta = 0.5;
  auto half = BundleSchemaSummary(f.summary, f.clusters, mid);
  EXPECT_LT(half.TotalInk(), bundled.TotalInk() + 1e-9);
}

TEST(EdgeBundlingTest, EmptySummary) {
  schema::SchemaSummary empty;
  cluster::ClusterSchema cs;
  auto layout = BundleSchemaSummary(empty, cs, {});
  EXPECT_TRUE(layout.leaves.empty());
  EXPECT_TRUE(layout.edges.empty());
}

// ---------------------------------------------------------------- Force

TEST(ForceLayoutTest, PositionsInsideFrame) {
  std::vector<ForceEdge> edges{{0, 1}, {1, 2}, {2, 0}, {2, 3}};
  ForceLayoutOptions opt;
  opt.width = 300;
  opt.height = 200;
  opt.iterations = 80;
  auto pos = ForceLayout(5, edges, opt);
  ASSERT_EQ(pos.size(), 5u);
  for (const Point& p : pos) {
    EXPECT_GE(p.x, 0);
    EXPECT_LE(p.x, 300);
    EXPECT_GE(p.y, 0);
    EXPECT_LE(p.y, 200);
  }
}

TEST(ForceLayoutTest, DeterministicForSeed) {
  std::vector<ForceEdge> edges{{0, 1}, {1, 2}};
  ForceLayoutOptions opt;
  opt.seed = 9;
  auto a = ForceLayout(4, edges, opt);
  auto b = ForceLayout(4, edges, opt);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

TEST(ForceLayoutTest, ConnectedNodesCloserThanDisconnected) {
  // Path 0-1 plus isolated far node 2; attraction should pull 0,1 together.
  std::vector<ForceEdge> edges{{0, 1, 3.0}};
  ForceLayoutOptions opt;
  opt.iterations = 400;
  auto pos = ForceLayout(3, edges, opt);
  double d01 = Distance(pos[0], pos[1]);
  double d02 = Distance(pos[0], pos[2]);
  double d12 = Distance(pos[1], pos[2]);
  EXPECT_LT(d01, std::max(d02, d12));
}

TEST(ForceLayoutTest, EdgeCases) {
  EXPECT_TRUE(ForceLayout(0, {}, {}).empty());
  auto one = ForceLayout(1, {}, {});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].x, 400);  // centered in default 800x600
}

// ---------------------------------------------------------------- Color/SVG

TEST(ColorTest, HexFormat) {
  EXPECT_EQ((Color{255, 0, 16}).ToHex(), "#ff0010");
}

TEST(ColorTest, HslRoundValues) {
  EXPECT_EQ(FromHsl(0, 1, 0.5).ToHex(), "#ff0000");
  EXPECT_EQ(FromHsl(120, 1, 0.5).ToHex(), "#00ff00");
  EXPECT_EQ(FromHsl(240, 1, 0.5).ToHex(), "#0000ff");
  EXPECT_EQ(FromHsl(0, 0, 1).ToHex(), "#ffffff");
}

TEST(ColorTest, CategoricalDistinctForSmallIndexes) {
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = i + 1; j < 10; ++j) {
      EXPECT_NE(CategoricalColor(i).ToHex(), CategoricalColor(j).ToHex());
    }
  }
}

TEST(ColorTest, LightenMovesTowardWhite) {
  Color c{100, 50, 200};
  Color l = Lighten(c, 0.5);
  EXPECT_GT(l.r, c.r);
  EXPECT_GT(l.g, c.g);
  EXPECT_GT(l.b, c.b);
  EXPECT_EQ(Lighten(c, 1.0).ToHex(), "#ffffff");
}

TEST(SvgTest, DocumentStructure) {
  SvgDocument doc(200, 100);
  doc.AddRect(Rect{10, 10, 50, 20}, Style::Fill(Color{255, 0, 0}));
  doc.AddCircle(Circle{50, 50, 10}, Style::Stroke(Color{0, 0, 255}, 2));
  doc.AddLine(Point{0, 0}, Point{10, 10}, Style::Stroke(Color{0, 0, 0}));
  doc.AddPolyline({{0, 0}, {5, 5}, {10, 0}}, Style::Stroke(Color{0, 128, 0}));
  doc.AddText(Point{5, 5}, "hi <&> there", 10);
  doc.AddAnnularSector(Point{100, 50}, 10, 20, 0, 1.0,
                       Style::Fill(Color{1, 2, 3}));
  EXPECT_EQ(doc.ElementCount(), 6u);
  std::string svg = doc.ToString();
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(svg.find("viewBox=\"0 0 200.00 100.00\""), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("<path"), std::string::npos);
  EXPECT_NE(svg.find("hi &lt;&amp;&gt; there"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgTest, PolylineNeedsTwoPoints) {
  SvgDocument doc(10, 10);
  doc.AddPolyline({{1, 1}}, Style::Stroke(Color{0, 0, 0}));
  EXPECT_EQ(doc.ElementCount(), 0u);
}

TEST(SvgTest, WriteFile) {
  SvgDocument doc(10, 10);
  doc.AddCircle(Circle{5, 5, 2}, Style::Fill(Color{0, 0, 0}));
  std::string path = ::testing::TempDir() + "/hbold_svg_test.svg";
  ASSERT_TRUE(doc.WriteFile(path).ok());
  EXPECT_FALSE(doc.WriteFile("/nonexistent-dir/x.svg").ok());
}

// ---------------------------------------------------------------- Renderers

TEST(RenderTest, AllRenderersProduceElements) {
  Hierarchy h = FixedHierarchy();
  auto treemap = RenderTreemap(TreemapLayout(h, Rect{0, 0, 400, 300}, {}),
                               400, 300);
  EXPECT_GT(treemap.ElementCount(), 3u);

  auto sunburst = RenderSunburst(SunburstLayout(h, {}), 300);
  EXPECT_GT(sunburst.ElementCount(), 2u);

  auto pack = RenderCirclePack(CirclePackLayout(h, {}), 300);
  EXPECT_GT(pack.ElementCount(), 3u);

  BundleFixture f = MakeBundleFixture();
  auto bundling = RenderEdgeBundling(
      BundleSchemaSummary(f.summary, f.clusters, {}), 300, /*focus_leaf=*/0);
  EXPECT_GT(bundling.ElementCount(), 6u);

  std::vector<GraphNode> nodes{{"A", 8, 0}, {"B", 8, 1}};
  std::vector<ForceEdge> edges{{0, 1}};
  auto graph =
      RenderGraph(nodes, edges, ForceLayout(2, edges, {}), 800, 600);
  EXPECT_GT(graph.ElementCount(), 3u);
}

// ------------------------------------------ degenerate-input properties

/// Hierarchies that historically broke layout math: NaN and infinite
/// weights, all-zero clusters, a single leaf, a childless cluster.
std::vector<Hierarchy> DegenerateHierarchies() {
  double nan = std::nan("");
  double inf = std::numeric_limits<double>::infinity();
  std::vector<Hierarchy> cases;
  cases.push_back(Hierarchy{
      "nan_leaves", 0, {Hierarchy{"c", 0, {{"a", nan, {}}, {"b", 5, {}}}}}});
  cases.push_back(Hierarchy{
      "inf_leaf", 0, {Hierarchy{"c", 0, {{"a", inf, {}}, {"b", 2, {}}}}}});
  cases.push_back(Hierarchy{
      "negative", 0, {Hierarchy{"c", 0, {{"a", -3, {}}, {"b", 1, {}}}}}});
  cases.push_back(Hierarchy{
      "all_nan", 0, {Hierarchy{"c", 0, {{"a", nan, {}}, {"b", nan, {}}}}}});
  cases.push_back(Hierarchy{"single", 7, {}});
  cases.push_back(Hierarchy{
      "zero_cluster", 0, {Hierarchy{"c1", 0, {{"a", 0, {}}, {"b", 0, {}}}},
                          Hierarchy{"c2", 0, {{"d", 9, {}}}}}});
  return cases;
}

TEST(DegenerateInputTest, TreemapStaysFiniteInBoundsNonOverlapping) {
  const Rect bounds{0, 0, 400, 300};
  for (const Hierarchy& h : DegenerateHierarchies()) {
    TreemapOptions opt;
    opt.padding = 0;
    opt.header = 0;
    auto cells = TreemapLayout(h, bounds, opt);
    ASSERT_FALSE(cells.empty()) << h.name;
    size_t max_depth = 0;
    for (const TreemapCell& c : cells) {
      EXPECT_TRUE(std::isfinite(c.rect.x) && std::isfinite(c.rect.y) &&
                  std::isfinite(c.rect.w) && std::isfinite(c.rect.h))
          << h.name << "/" << c.name;
      EXPECT_GE(c.rect.w, 0.0) << h.name << "/" << c.name;
      EXPECT_GE(c.rect.h, 0.0) << h.name << "/" << c.name;
      EXPECT_GE(c.rect.x, bounds.x - 1e-6) << h.name << "/" << c.name;
      EXPECT_GE(c.rect.y, bounds.y - 1e-6) << h.name << "/" << c.name;
      EXPECT_LE(c.rect.x + c.rect.w, bounds.x + bounds.w + 1e-6)
          << h.name << "/" << c.name;
      EXPECT_LE(c.rect.y + c.rect.h, bounds.y + bounds.h + 1e-6)
          << h.name << "/" << c.name;
      max_depth = std::max(max_depth, c.depth);
    }
    // Leaves never overlap (intersection area ~ 0).
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].depth != max_depth) continue;
      for (size_t j = i + 1; j < cells.size(); ++j) {
        if (cells[j].depth != max_depth) continue;
        const Rect& a = cells[i].rect;
        const Rect& b = cells[j].rect;
        double ox = std::min(a.x + a.w, b.x + b.w) - std::max(a.x, b.x);
        double oy = std::min(a.y + a.h, b.y + b.h) - std::max(a.y, b.y);
        double overlap = std::max(0.0, ox) * std::max(0.0, oy);
        EXPECT_LT(overlap, 1e-6)
            << h.name << ": " << cells[i].name << " vs " << cells[j].name;
      }
    }
  }
}

TEST(DegenerateInputTest, SunburstRingsStayFiniteAndOrdered) {
  for (const Hierarchy& h : DegenerateHierarchies()) {
    SunburstOptions opt;
    auto slices = SunburstLayout(h, opt);
    for (const SunburstSlice& s : slices) {
      EXPECT_TRUE(std::isfinite(s.a0) && std::isfinite(s.a1) &&
                  std::isfinite(s.r0) && std::isfinite(s.r1))
          << h.name << "/" << s.name;
      EXPECT_LE(s.a0, s.a1 + 1e-9) << h.name << "/" << s.name;
      EXPECT_LE(s.r0, s.r1 + 1e-9) << h.name << "/" << s.name;
      EXPECT_LE(s.r1, opt.radius + 1e-6) << h.name << "/" << s.name;
    }
    // Same-depth slices partition the angle range: no angular overlap.
    for (size_t i = 0; i < slices.size(); ++i) {
      for (size_t j = i + 1; j < slices.size(); ++j) {
        if (slices[i].depth != slices[j].depth) continue;
        double lo = std::max(slices[i].a0, slices[j].a0);
        double hi = std::min(slices[i].a1, slices[j].a1);
        EXPECT_LT(hi - lo, 1e-6)
            << h.name << ": " << slices[i].name << " vs " << slices[j].name;
      }
    }
  }
}

TEST(DegenerateInputTest, SunburstThinRingClampsInsteadOfInverting) {
  // A ring gap wider than the rings themselves used to produce r1 < r0
  // (negative annulus thickness). Now the outer radius clamps to r0.
  Hierarchy deep{"root", 0, {}};
  Hierarchy* cursor = &deep;
  for (int d = 0; d < 12; ++d) {
    cursor->children.push_back(Hierarchy{"d" + std::to_string(d), 1, {}});
    cursor = &cursor->children[0];
  }
  SunburstOptions opt;
  opt.radius = 40;
  opt.ring_gap = 10;  // gap * depth >> radius
  for (const SunburstSlice& s : SunburstLayout(deep, opt)) {
    EXPECT_TRUE(std::isfinite(s.r0) && std::isfinite(s.r1)) << s.name;
    EXPECT_GE(s.r1, s.r0) << s.name;
  }
}

TEST(DegenerateInputTest, CirclePackStaysFiniteAndSiblingsDisjoint) {
  for (const Hierarchy& h : DegenerateHierarchies()) {
    CirclePackOptions opt;
    auto circles = CirclePackLayout(h, opt);
    ASSERT_FALSE(circles.empty()) << h.name;
    for (const PackedCircle& c : circles) {
      EXPECT_TRUE(std::isfinite(c.circle.x) && std::isfinite(c.circle.y) &&
                  std::isfinite(c.circle.r))
          << h.name << "/" << c.name;
      EXPECT_GT(c.circle.r, 0.0) << h.name << "/" << c.name;
      EXPECT_LE(c.circle.r, opt.radius * (1 + 1e-6)) << h.name << "/" << c.name;
    }
    // Leaves of the same cluster (same depth + group) must not overlap.
    size_t max_depth = 0;
    for (const PackedCircle& c : circles)
      max_depth = std::max(max_depth, c.depth);
    for (size_t i = 0; i < circles.size(); ++i) {
      if (circles[i].depth != max_depth) continue;
      for (size_t j = i + 1; j < circles.size(); ++j) {
        if (circles[j].depth != max_depth ||
            circles[j].group != circles[i].group) {
          continue;
        }
        const Circle& a = circles[i].circle;
        const Circle& b = circles[j].circle;
        double dist = std::hypot(a.x - b.x, a.y - b.y);
        EXPECT_GE(dist + 1e-6, a.r + b.r)
            << h.name << ": " << circles[i].name << " vs " << circles[j].name;
      }
    }
  }
}

TEST(DegenerateInputTest, DegenerateHierarchiesRenderToSvg) {
  for (const Hierarchy& h : DegenerateHierarchies()) {
    auto treemap = RenderTreemap(TreemapLayout(h, Rect{0, 0, 400, 300}, {}),
                                 400, 300);
    auto sunburst = RenderSunburst(SunburstLayout(h, {}), 300);
    auto pack = RenderCirclePack(CirclePackLayout(h, {}), 300);
    if (!h.children.empty()) {
      // A root-only hierarchy legitimately renders nothing (the renderers
      // skip depth 0); everything else must produce visible elements.
      EXPECT_GT(treemap.ElementCount(), 0u) << h.name;
      EXPECT_GT(sunburst.ElementCount(), 0u) << h.name;
      EXPECT_GT(pack.ElementCount(), 0u) << h.name;
    }
    // The SVG bytes are the geometry fingerprint input: NaN would print
    // as "nan" — assert it never reaches the document.
    EXPECT_EQ(treemap.ToString().find("nan"), std::string::npos) << h.name;
    EXPECT_EQ(sunburst.ToString().find("nan"), std::string::npos) << h.name;
    EXPECT_EQ(pack.ToString().find("nan"), std::string::npos) << h.name;
  }
}

}  // namespace
}  // namespace hbold::viz
