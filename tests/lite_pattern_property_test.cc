// Property test pitting string_util::LitePatternMatch against std::regex
// (ECMAScript) on ~1000 randomly generated patterns drawn from the
// supported subset — anchors, '.', character classes, '*' '+' '?',
// top-level alternation, escapes — plus a generator for out-of-subset
// patterns that must be *rejected* by LitePatternSupported (and evaluate
// to an error on the SPARQL FILTER path) rather than matched wrongly.

#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "endpoint/local_endpoint.h"
#include "rdf/graph.h"

namespace hbold {
namespace {

/// Characters LitePatternMatch treats as metacharacters; everything the
/// generator escapes comes from this set, so the escapes are valid
/// ECMAScript too.
constexpr char kMeta[] = {'.', '*', '+', '?', '[', ']',
                          '|', '\\', '^', '$', '(', ')'};

/// Random-pattern generator over the supported subset. Every emitted
/// pattern is simultaneously a valid ECMAScript regex with the same
/// meaning, so std::regex is a usable oracle.
class PatternGen {
 public:
  explicit PatternGen(uint64_t seed) : rng_(seed) {}

  std::string Literal() {
    static const char kAlphabet[] = "abcxyz019 _-:/";
    return std::string(1, kAlphabet[rng_.Uniform(sizeof(kAlphabet) - 1)]);
  }

  std::string EscapedMeta() {
    char c = kMeta[rng_.Uniform(sizeof(kMeta))];
    return std::string("\\") + c;
  }

  std::string CharClass() {
    std::string body;
    if (rng_.Chance(0.3)) body += '^';
    size_t items = 1 + rng_.Uniform(3);
    for (size_t i = 0; i < items; ++i) {
      switch (rng_.Uniform(3)) {
        case 0:
          body += "a-z";
          break;
        case 1:
          body += "0-9";
          break;
        default:
          body += Literal();
          // '-' or ':' adjacent to a range could parse differently in
          // the two engines; keep class members unambiguous.
          if (body.back() == '-') body.back() = 'q';
          break;
      }
    }
    return "[" + body + "]";
  }

  std::string Atom() {
    switch (rng_.Uniform(4)) {
      case 0:
        return ".";
      case 1:
        return CharClass();
      case 2:
        return EscapedMeta();
      default:
        return Literal();
    }
  }

  /// One '|'-free alternative: optional '^', atoms with optional
  /// quantifiers, optional '$'.
  std::string Alternative() {
    std::string out;
    if (rng_.Chance(0.3)) out += '^';
    size_t atoms = 1 + rng_.Uniform(5);
    for (size_t i = 0; i < atoms; ++i) {
      out += Atom();
      if (rng_.Chance(0.3)) {
        static const char kQuant[] = {'*', '+', '?'};
        out += kQuant[rng_.Uniform(3)];
      }
    }
    if (rng_.Chance(0.3)) out += '$';
    return out;
  }

  std::string Pattern() {
    std::string out = Alternative();
    while (rng_.Chance(0.25)) {
      out += '|';
      out += Alternative();
    }
    return out;
  }

  /// Random text, occasionally seeded with pattern fragments so matches
  /// actually happen (pure random text nearly always misses).
  std::string Text(const std::string& pattern) {
    std::string out;
    size_t len = rng_.Uniform(12);
    for (size_t i = 0; i < len; ++i) {
      if (rng_.Chance(0.35) && !pattern.empty()) {
        // Splice a literal run of the pattern (metacharacters stripped).
        size_t start = rng_.Uniform(pattern.size());
        size_t take = 1 + rng_.Uniform(4);
        for (size_t j = start; j < pattern.size() && take > 0; ++j) {
          char c = pattern[j];
          bool meta = false;
          for (char m : kMeta) meta = meta || c == m;
          if (!meta) {
            out += c;
            --take;
          }
        }
      } else {
        out += Literal();
      }
    }
    return out;
  }

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

TEST(LitePatternPropertyTest, AgreesWithStdRegexOnSupportedSubset) {
  PatternGen gen(20260731);
  size_t patterns_checked = 0;
  size_t comparisons = 0;
  size_t matches_seen = 0;
  while (patterns_checked < 1000) {
    std::string pattern = gen.Pattern();
    // The generator stays inside the subset by construction; the gate
    // must agree, otherwise the gate is too strict for its own subset.
    ASSERT_TRUE(LitePatternSupported(pattern)) << pattern;
    ++patterns_checked;

    const bool icase = gen.rng().Chance(0.25);
    auto flags = std::regex::ECMAScript;
    if (icase) flags |= std::regex::icase;
    std::regex oracle;
    try {
      oracle = std::regex(pattern, flags);
    } catch (const std::regex_error&) {
      FAIL() << "supported pattern rejected by std::regex: " << pattern;
    }

    for (int t = 0; t < 8; ++t) {
      std::string text = gen.Text(pattern);
      bool expected = std::regex_search(text, oracle);
      bool got = LitePatternMatch(text, pattern, icase);
      EXPECT_EQ(got, expected)
          << "pattern=\"" << pattern << "\" text=\"" << text
          << "\" icase=" << icase;
      ++comparisons;
      if (expected) ++matches_seen;
    }
  }
  // The harness must have exercised both outcomes, or the oracle check
  // proves nothing.
  EXPECT_GT(matches_seen, comparisons / 20);
  EXPECT_LT(matches_seen, comparisons);
}

TEST(LitePatternPropertyTest, OutOfSubsetPatternsAreRejectedNotMisread) {
  PatternGen gen(77);
  // Wrap supported cores with constructs outside the subset; every one
  // must be rejected by the gate (the FILTER path then errors out the
  // row instead of matching '(' or '{' literally).
  for (int i = 0; i < 200; ++i) {
    std::string core = gen.Pattern();
    std::string bad;
    switch (i % 8) {
      case 0:
        bad = "(" + core + ")";
        break;
      case 1:
        bad = core + "{2,3}";
        break;
      case 2:
        bad = "\\d" + core;
        break;
      case 3:
        bad = core + "\\w";
        break;
      case 4:
        bad = "a" + std::string("**") + core;
        break;
      case 5:
        bad = "+" + core;
        break;
      case 6:
        bad = core + "a^b";
        break;
      default:
        bad = core + "\\";
        break;
    }
    EXPECT_FALSE(LitePatternSupported(bad)) << bad;
  }
}

TEST(LitePatternPropertyTest, UnsupportedFilterPatternErrorsRowsOut) {
  // End-to-end: on the SPARQL FILTER path an out-of-subset regex must
  // evaluate to an error (filtering the row out), never to a literal
  // interpretation of the metacharacters.
  rdf::TripleStore store;
  auto iri = [](const std::string& s) { return rdf::Term::Iri(s); };
  store.Add(iri("http://x/d1"), iri("http://www.w3.org/ns/dcat#accessURL"),
            iri("http://x/sparql"));
  endpoint::LocalEndpoint ep("http://x/sparql", "x", &store);

  const std::string select =
      "SELECT ?u WHERE { ?d <http://www.w3.org/ns/dcat#accessURL> ?u . "
      "FILTER ( regex(?u, \"";
  auto supported = ep.Query(select + "sparql\") ) . }");
  ASSERT_TRUE(supported.ok()) << supported.status();
  EXPECT_EQ(supported->table.num_rows(), 1u);

  // "(sparql)" matches in ECMAScript; taken literally it never would.
  // The gate forces the error path: zero rows, not a wrong answer.
  auto grouped = ep.Query(select + "(sparql)\") ) . }");
  ASSERT_TRUE(grouped.ok()) << grouped.status();
  EXPECT_EQ(grouped->table.num_rows(), 0u);
}

}  // namespace
}  // namespace hbold
