// Unit + integration tests for src/extraction: the three pattern
// strategies must produce identical IndexSummaries on a full-featured
// endpoint; the fallback chain must pick the right strategy per dialect;
// the refresh scheduler must implement the §3.1 policy.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "endpoint/simulated_endpoint.h"
#include "extraction/extractor.h"
#include "extraction/indexes.h"
#include "extraction/scheduler.h"
#include "extraction/strategies.h"
#include "rdf/turtle.h"

namespace hbold::extraction {
namespace {

using endpoint::AvailabilityModel;
using endpoint::Dialect;
using endpoint::EndpointRecord;
using endpoint::EndpointRegistry;
using endpoint::SimulatedRemoteEndpoint;

/// Fixture dataset: 3 classes, mixed object/datatype properties,
/// a multi-typed instance, and an untyped resource.
class ExtractionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto n = rdf::ParseTurtle(R"(
@prefix ex: <http://x/> .
ex:p1 a ex:Person ; ex:name "P1" ; ex:worksAt ex:o1 ; ex:knows ex:p2 .
ex:p2 a ex:Person ; ex:name "P2" ; ex:worksAt ex:o1 .
ex:p3 a ex:Person ; ex:name "P3" .
ex:o1 a ex:Org ; ex:name "O1" ; ex:inCity ex:c1 .
ex:c1 a ex:City ; ex:name "C1" .
ex:dual a ex:Person, ex:Org ; ex:name "Dual" .
ex:p1 ex:likes ex:untyped .
)",
                              &store_);
    ASSERT_TRUE(n.ok()) << n.status();
  }

  SimulatedRemoteEndpoint MakeEndpoint(Dialect d,
                                       AvailabilityModel avail = {}) {
    return SimulatedRemoteEndpoint("http://test/sparql", "test", &store_,
                                   &clock_, d, avail);
  }

  rdf::TripleStore store_;
  SimClock clock_;
};

void CheckSummaryShape(const IndexSummary& s) {
  // 4 Person (incl. dual), 2 Org (incl. dual), 1 City.
  ASSERT_EQ(s.num_classes, 3u);
  EXPECT_EQ(s.num_instances, 6u);  // distinct typed subjects
  ASSERT_EQ(s.classes.size(), 3u);
  // Canonical order: descending instance count.
  EXPECT_EQ(s.classes[0].iri, "http://x/Person");
  EXPECT_EQ(s.classes[0].instance_count, 4u);
  EXPECT_EQ(s.classes[1].iri, "http://x/Org");
  EXPECT_EQ(s.classes[1].instance_count, 2u);
  EXPECT_EQ(s.classes[2].iri, "http://x/City");
  EXPECT_EQ(s.classes[2].instance_count, 1u);

  const ClassInfo* person = s.FindClass("http://x/Person");
  ASSERT_NE(person, nullptr);
  // Person properties: knows (object->Person), likes (to untyped: datatype-
  // classified), name (datatype), worksAt (object->Org).
  ASSERT_EQ(person->properties.size(), 4u);
  const PropertyInfo* works = nullptr;
  const PropertyInfo* name = nullptr;
  const PropertyInfo* likes = nullptr;
  for (const PropertyInfo& p : person->properties) {
    if (p.iri == "http://x/worksAt") works = &p;
    if (p.iri == "http://x/name") name = &p;
    if (p.iri == "http://x/likes") likes = &p;
  }
  ASSERT_NE(works, nullptr);
  EXPECT_TRUE(works->is_object_property);
  EXPECT_EQ(works->count, 2u);
  ASSERT_EQ(works->range_classes.size(), 1u);
  EXPECT_EQ(works->range_classes.at("http://x/Org"), 2u);
  ASSERT_NE(name, nullptr);
  EXPECT_FALSE(name->is_object_property);
  EXPECT_EQ(name->count, 4u);
  ASSERT_NE(likes, nullptr);
  // Object is an untyped IRI: no observable range, not an object property
  // from the extractor's point of view.
  EXPECT_FALSE(likes->is_object_property);
}

// --------------------------------------------------- strategy equivalence

TEST_F(ExtractionTest, DirectAggregationShape) {
  auto ep = MakeEndpoint(Dialect::Full());
  ExtractionReport report;
  auto s = DirectAggregationStrategy().Extract(&ep, &report);
  ASSERT_TRUE(s.ok()) << s.status();
  CheckSummaryShape(*s);
  EXPECT_EQ(report.strategy_used, "direct-aggregation");
  EXPECT_GT(report.queries_issued, 0u);
}

TEST_F(ExtractionTest, PerClassCountShape) {
  auto ep = MakeEndpoint(Dialect::NoGroupBy());
  ExtractionReport report;
  auto s = PerClassCountStrategy().Extract(&ep, &report);
  ASSERT_TRUE(s.ok()) << s.status();
  CheckSummaryShape(*s);
}

TEST_F(ExtractionTest, PaginatedScanShape) {
  auto ep = MakeEndpoint(Dialect::NoAggregates());
  ExtractionReport report;
  auto s = PaginatedScanStrategy(/*page_size=*/3).Extract(&ep, &report);
  ASSERT_TRUE(s.ok()) << s.status();
  CheckSummaryShape(*s);
}

TEST_F(ExtractionTest, AllStrategiesAgreeExactly) {
  auto ep = MakeEndpoint(Dialect::Full());
  auto a = DirectAggregationStrategy().Extract(&ep, nullptr);
  auto b = PerClassCountStrategy().Extract(&ep, nullptr);
  auto c = PaginatedScanStrategy(4).Extract(&ep, nullptr);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  // Identical canonical JSON => identical summaries.
  EXPECT_EQ(a->ToJson().Dump(), b->ToJson().Dump());
  EXPECT_EQ(a->ToJson().Dump(), c->ToJson().Dump());
}

TEST_F(ExtractionTest, PaginatedScanHandlesRowCappedEndpoint) {
  // Cap below the page size: pages come back truncated; the scan must
  // still see everything.
  Dialect d = Dialect::NoAggregates();
  d.max_result_rows = 2;
  auto ep = MakeEndpoint(d);
  auto s = PaginatedScanStrategy(10).Extract(&ep, nullptr);
  ASSERT_TRUE(s.ok()) << s.status();
  CheckSummaryShape(*s);
}

TEST_F(ExtractionTest, QueryCostOrderingAcrossStrategies) {
  auto ep_direct = MakeEndpoint(Dialect::Full());
  auto ep_perclass = MakeEndpoint(Dialect::Full());
  ExtractionReport direct, perclass;
  ASSERT_TRUE(DirectAggregationStrategy().Extract(&ep_direct, &direct).ok());
  ASSERT_TRUE(PerClassCountStrategy().Extract(&ep_perclass, &perclass).ok());
  // The whole point of pattern strategies: direct aggregation is far
  // cheaper in query count.
  EXPECT_LT(direct.queries_issued, perclass.queries_issued);
}

// --------------------------------------------------- extractor fallback

TEST_F(ExtractionTest, ExtractorUsesDirectOnFullEndpoint) {
  auto ep = MakeEndpoint(Dialect::Full());
  ExtractionReport report;
  auto s = IndexExtractor().Extract(&ep, &report);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(report.strategy_used, "direct-aggregation");
  EXPECT_TRUE(report.fallbacks.empty());
}

TEST_F(ExtractionTest, ExtractorFallsBackOnNoGroupBy) {
  auto ep = MakeEndpoint(Dialect::NoGroupBy());
  ExtractionReport report;
  auto s = IndexExtractor().Extract(&ep, &report);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(report.strategy_used, "per-class-count");
  EXPECT_EQ(report.fallbacks,
            (std::vector<std::string>{"direct-aggregation"}));
  CheckSummaryShape(*s);
}

TEST_F(ExtractionTest, ExtractorFallsBackTwiceOnNoAggregates) {
  auto ep = MakeEndpoint(Dialect::NoAggregates());
  ExtractionReport report;
  auto s = IndexExtractor().Extract(&ep, &report);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(report.strategy_used, "paginated-scan");
  EXPECT_EQ(report.fallbacks.size(), 2u);
  CheckSummaryShape(*s);
}

TEST_F(ExtractionTest, ExtractorAbortsWhenUnavailable) {
  AvailabilityModel avail;
  avail.forced_outage_days = {0};
  auto ep = MakeEndpoint(Dialect::Full(), avail);
  auto s = IndexExtractor().Extract(&ep, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.status().IsUnavailable());
}

TEST_F(ExtractionTest, ExtractorFallsBackOnTimeout) {
  // Direct aggregation's range query joins explode past the budget; the
  // paginated scan stays within it per page.
  Dialect d;
  d.work_budget_bindings = 12;
  auto ep = MakeEndpoint(d);
  ExtractionReport report;
  auto s = IndexExtractor().Extract(&ep, &report);
  // Whatever strategy wins, fallbacks must be recorded and the result sane.
  if (s.ok()) {
    EXPECT_FALSE(report.fallbacks.empty());
  } else {
    EXPECT_TRUE(s.status().IsTimeout());
  }
}

// --------------------------------------------------- summary serialization

TEST_F(ExtractionTest, IndexSummaryJsonRoundTrip) {
  auto ep = MakeEndpoint(Dialect::Full());
  auto s = DirectAggregationStrategy().Extract(&ep, nullptr);
  ASSERT_TRUE(s.ok());
  s->extracted_day = 5;
  auto round = IndexSummary::FromJson(s->ToJson());
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->ToJson().Dump(), s->ToJson().Dump());
  EXPECT_EQ(round->extracted_day, 5);
  EXPECT_EQ(round->TotalClassInstances(), s->TotalClassInstances());
}

TEST(IndexSummaryTest, FromJsonRejectsNonObject) {
  EXPECT_FALSE(IndexSummary::FromJson(Json(3)).ok());
}

TEST(IndexSummaryTest, TotalClassInstancesSums) {
  IndexSummary s;
  s.classes.push_back({"a", 3, {}});
  s.classes.push_back({"b", 5, {}});
  EXPECT_EQ(s.TotalClassInstances(), 8u);
  EXPECT_NE(s.FindClass("a"), nullptr);
  EXPECT_EQ(s.FindClass("zz"), nullptr);
}

// --------------------------------------------------- refresh scheduler

TEST(SchedulerTest, NeverAttemptedIsDue) {
  RefreshScheduler sched(7);
  EndpointRecord r;
  EXPECT_TRUE(sched.IsDue(r, 0));
  EXPECT_TRUE(sched.IsDue(r, 100));
}

TEST(SchedulerTest, FreshSuccessIsNotDueUntilSevenDays) {
  RefreshScheduler sched(7);
  EndpointRecord r;
  RefreshScheduler::RecordAttempt(&r, 10, /*success=*/true);
  EXPECT_FALSE(sched.IsDue(r, 10));  // already ran today
  EXPECT_FALSE(sched.IsDue(r, 13));
  EXPECT_FALSE(sched.IsDue(r, 16));
  EXPECT_TRUE(sched.IsDue(r, 17));  // 7 days later
}

TEST(SchedulerTest, FailedAttemptRetriesDaily) {
  RefreshScheduler sched(7);
  EndpointRecord r;
  RefreshScheduler::RecordAttempt(&r, 10, /*success=*/true);
  RefreshScheduler::RecordAttempt(&r, 17, /*success=*/false);
  EXPECT_FALSE(sched.IsDue(r, 17));  // attempted today already
  EXPECT_TRUE(sched.IsDue(r, 18));   // daily retry
  RefreshScheduler::RecordAttempt(&r, 18, /*success=*/true);
  EXPECT_FALSE(sched.IsDue(r, 19));
  EXPECT_TRUE(sched.IsDue(r, 25));
}

TEST(SchedulerTest, RecordAttemptSetsIndexedOnSuccess) {
  EndpointRecord r;
  RefreshScheduler::RecordAttempt(&r, 3, false);
  EXPECT_FALSE(r.indexed);
  EXPECT_TRUE(r.last_attempt_failed);
  EXPECT_EQ(r.last_success_day, -1);
  RefreshScheduler::RecordAttempt(&r, 4, true);
  EXPECT_TRUE(r.indexed);
  EXPECT_FALSE(r.last_attempt_failed);
  EXPECT_EQ(r.last_success_day, 4);
}

TEST(SchedulerTest, DueTodayScansRegistry) {
  RefreshScheduler sched(7);
  EndpointRegistry reg;
  EndpointRecord fresh;
  fresh.url = "http://fresh";
  RefreshScheduler::RecordAttempt(&fresh, 9, true);
  EndpointRecord stale;
  stale.url = "http://stale";
  RefreshScheduler::RecordAttempt(&stale, 1, true);
  EndpointRecord failed;
  failed.url = "http://failed";
  RefreshScheduler::RecordAttempt(&failed, 9, false);
  EndpointRecord never;
  never.url = "http://never";
  reg.Add(fresh);
  reg.Add(stale);
  reg.Add(failed);
  reg.Add(never);

  auto due = sched.DueToday(reg, 10);
  EXPECT_EQ(due, (std::vector<std::string>{"http://stale", "http://failed",
                                           "http://never"}));

  // The snapshot overload (used by the parallel daily cycle) must agree
  // with the registry overload, in the same (insertion) order.
  EXPECT_EQ(sched.DueToday(reg.Snapshot(), 10), due);
}

TEST(SchedulerTest, ExactlyRefreshAgeOldIsDue) {
  RefreshScheduler sched(7);
  EndpointRecord r;
  RefreshScheduler::RecordAttempt(&r, 100, /*success=*/true);
  EXPECT_FALSE(sched.IsDue(r, 106));  // 6 days: one short
  EXPECT_TRUE(sched.IsDue(r, 107));   // exactly refresh_age_days old
  EXPECT_TRUE(sched.IsDue(r, 108));
}

TEST(SchedulerTest, CustomRefreshAgeBoundary) {
  RefreshScheduler daily(1);
  EndpointRecord r;
  RefreshScheduler::RecordAttempt(&r, 5, /*success=*/true);
  EXPECT_FALSE(daily.IsDue(r, 5));
  EXPECT_TRUE(daily.IsDue(r, 6));  // age 1: due every next day

  RefreshScheduler monthly(30);
  EndpointRecord m;
  RefreshScheduler::RecordAttempt(&m, 0, /*success=*/true);
  EXPECT_FALSE(monthly.IsDue(m, 29));
  EXPECT_TRUE(monthly.IsDue(m, 30));
}

TEST(SchedulerTest, FailedAttemptRetriesEveryDayUntilSuccess) {
  RefreshScheduler sched(7);
  EndpointRecord r;
  RefreshScheduler::RecordAttempt(&r, 0, /*success=*/false);
  for (int64_t day = 1; day <= 5; ++day) {
    EXPECT_TRUE(sched.IsDue(r, day)) << "day " << day;
    RefreshScheduler::RecordAttempt(&r, day, /*success=*/false);
  }
  RefreshScheduler::RecordAttempt(&r, 6, /*success=*/true);
  EXPECT_FALSE(sched.IsDue(r, 7));   // fresh again
  EXPECT_TRUE(sched.IsDue(r, 13));   // next weekly refresh
}

TEST(SchedulerTest, AttemptedButNeverSucceededIsDue) {
  RefreshScheduler sched(7);
  EndpointRecord r;
  // A record whose only attempt "succeeded" per last_attempt_failed but
  // never set last_success_day (e.g. hand-migrated registry data) must be
  // treated as stale, not fresh.
  r.last_attempt_day = 3;
  r.last_attempt_failed = false;
  r.last_success_day = -1;
  EXPECT_TRUE(sched.IsDue(r, 4));
}

// End-to-end §3.1 simulation: a flaky endpoint over 30 days.
TEST_F(ExtractionTest, ThirtyDayRefreshSimulation) {
  AvailabilityModel avail;
  avail.forced_outage_days = {7, 8};  // down exactly when refresh is due
  auto ep = MakeEndpoint(Dialect::Full(), avail);

  EndpointRegistry reg;
  EndpointRecord rec;
  rec.url = ep.url();
  reg.Add(rec);

  RefreshScheduler sched(7);
  IndexExtractor extractor;
  std::vector<int64_t> attempt_days;
  for (int64_t day = 0; day < 30; ++day) {
    clock_ = SimClock(day * SimClock::kMillisPerDay);
    for (const std::string& url : sched.DueToday(reg, day)) {
      auto s = extractor.Extract(&ep, nullptr);
      reg.UpdateRecord(url, [&](EndpointRecord& r) {
        RefreshScheduler::RecordAttempt(&r, day, s.ok());
      });
      attempt_days.push_back(day);
    }
  }
  // Expected: day 0 (initial), day 7 (refresh, fails: outage), day 8
  // (retry, fails), day 9 (retry, succeeds), day 16, 23 (weekly).
  EXPECT_EQ(attempt_days, (std::vector<int64_t>{0, 7, 8, 9, 16, 23}));
}

}  // namespace
}  // namespace hbold::extraction
