// Unit tests for src/workload: synthetic LD generator, scholarly preset,
// DCAT portal catalog generator.

#include <gtest/gtest.h>

#include "endpoint/local_endpoint.h"
#include "rdf/graph.h"
#include "rdf/vocab.h"
#include "sparql/executor.h"
#include "workload/ld_generator.h"
#include "workload/portal_generator.h"
#include "workload/scholarly.h"

namespace hbold::workload {
namespace {

TEST(LdGeneratorTest, GeneratesRequestedClasses) {
  rdf::TripleStore store;
  SyntheticLdConfig config;
  config.num_classes = 10;
  config.max_instances_per_class = 50;
  SyntheticLdStats stats = GenerateSyntheticLd(config, &store);
  EXPECT_EQ(stats.classes, 10u);
  EXPECT_GT(stats.instances, 0u);
  EXPECT_EQ(stats.triples_added, store.size());

  rdf::TermId type = store.dict().Lookup(rdf::Term::Iri(rdf::vocab::kRdfType));
  ASSERT_NE(type, rdf::kInvalidTermId);
  EXPECT_EQ(store.DistinctObjects(type).size(), 10u);
}

TEST(LdGeneratorTest, ZipfSkewMakesFirstClassLargest) {
  rdf::TripleStore store;
  SyntheticLdConfig config;
  config.num_classes = 8;
  config.max_instances_per_class = 100;
  config.zipf_skew = 1.2;
  GenerateSyntheticLd(config, &store);
  auto count_class = [&](size_t c) {
    rdf::TriplePattern pat;
    pat.p = store.dict().Lookup(rdf::Term::Iri(rdf::vocab::kRdfType));
    pat.o = store.dict().Lookup(rdf::Term::Iri(
        config.namespace_iri + "class/C" + std::to_string(c)));
    return store.Count(pat);
  };
  EXPECT_EQ(count_class(0), 100u);
  EXPECT_GT(count_class(0), count_class(3));
  EXPECT_GE(count_class(3), count_class(7));
  EXPECT_GE(count_class(7), 1u);
}

TEST(LdGeneratorTest, DeterministicForSeed) {
  SyntheticLdConfig config;
  config.num_classes = 5;
  config.seed = 11;
  rdf::TripleStore a, b;
  GenerateSyntheticLd(config, &a);
  GenerateSyntheticLd(config, &b);
  EXPECT_EQ(a.size(), b.size());
}

TEST(LdGeneratorTest, EmptyConfigProducesNothing) {
  rdf::TripleStore store;
  SyntheticLdConfig config;
  config.num_classes = 0;
  SyntheticLdStats stats = GenerateSyntheticLd(config, &store);
  EXPECT_EQ(stats.triples_added, 0u);
  EXPECT_TRUE(store.empty());
}

TEST(LdGeneratorTest, CrossDomainLinksAreRarerThanIntra) {
  // Structural sanity for community detection benches: with 2 domains the
  // generator must produce some links, predominantly intra-domain.
  rdf::TripleStore store;
  SyntheticLdConfig config;
  config.num_classes = 12;
  config.num_domains = 3;
  config.max_instances_per_class = 30;
  config.cross_domain_link_prob = 0.1;
  GenerateSyntheticLd(config, &store);
  EXPECT_GT(store.size(), 300u);
}

TEST(ScholarlyTest, GeneratesExpectedClasses) {
  rdf::TripleStore store;
  ScholarlyConfig config;
  size_t triples = GenerateScholarly(config, &store);
  EXPECT_EQ(triples, store.size());
  EXPECT_GT(triples, 1000u);

  // The Fig. 2 / Fig. 7 classes exist.
  rdf::TermId type = store.dict().Lookup(rdf::Term::Iri(rdf::vocab::kRdfType));
  auto classes = store.DistinctObjects(type);
  auto has_class = [&](const std::string& name) {
    rdf::TermId id = store.dict().Lookup(
        rdf::Term::Iri(std::string(kScholarlyNs) + name));
    if (id == rdf::kInvalidTermId) return false;
    for (rdf::TermId c : classes) {
      if (c == id) return true;
    }
    return false;
  };
  for (const char* name :
       {"Event", "Situation", "Vevent", "SessionEvent", "ConferenceSeries",
        "InformationObject", "Person", "Organisation"}) {
    EXPECT_TRUE(has_class(name)) << name;
  }
}

TEST(ScholarlyTest, EventConnectsToSituation) {
  // Fig. 7's highlighted structure must exist in the data.
  rdf::TripleStore store;
  GenerateScholarly(ScholarlyConfig{}, &store);
  endpoint::LocalEndpoint ep("http://scholarly/sparql", "scholarly", &store);
  auto r = ep.Query(R"(
PREFIX conf: <http://www.scholarlydata.org/ontology/conf-ontology.owl#>
SELECT (COUNT(*) AS ?n) WHERE {
  ?e a conf:Event .
  ?e conf:hasSituation ?s .
  ?s a conf:Situation .
})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->table.ScalarInt("n").value_or(0), 0);
}

TEST(ScholarlyTest, ScalesWithConfig) {
  rdf::TripleStore small_store, big_store;
  ScholarlyConfig small;
  small.conferences = 1;
  small.people = 50;
  ScholarlyConfig big;
  big.conferences = 8;
  big.people = 500;
  EXPECT_LT(GenerateScholarly(small, &small_store),
            GenerateScholarly(big, &big_store));
}

TEST(PortalGeneratorTest, Listing1FindsExactlyTheSparqlUrls) {
  rdf::TripleStore store;
  PortalConfig config;
  config.total_datasets = 30;
  config.sparql_urls = {"http://a.org/sparql", "http://b.org/sparql/query",
                        "http://c.org/api/sparql"};
  GeneratePortalCatalog(config, &store);

  endpoint::LocalEndpoint ep("http://portal/sparql", "portal", &store);
  auto r = ep.Query(R"(
PREFIX dcat: <http://www.w3.org/ns/dcat#>
PREFIX dc: <http://purl.org/dc/terms/>
SELECT DISTINCT ?url WHERE {
  ?dataset a dcat:Dataset .
  ?dataset dc:title ?title .
  ?dataset dcat:distribution ?d .
  ?d dcat:accessURL ?url .
  FILTER ( regex(?url, "sparql") ) .
})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->table.num_rows(), 3u);
}

TEST(PortalGeneratorTest, NonSparqlDatasetsGetFileUrls) {
  rdf::TripleStore store;
  PortalConfig config;
  config.total_datasets = 10;
  config.sparql_urls = {"http://x.org/sparql"};
  GeneratePortalCatalog(config, &store);
  endpoint::LocalEndpoint ep("u", "n", &store);
  auto all = ep.Query(R"(
PREFIX dcat: <http://www.w3.org/ns/dcat#>
SELECT (COUNT(DISTINCT ?ds) AS ?n) WHERE { ?ds a dcat:Dataset . })");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->table.ScalarInt("n"), 10);
}

TEST(PortalGeneratorTest, EveryDatasetHasTitleAndDistribution) {
  rdf::TripleStore store;
  PortalConfig config;
  config.total_datasets = 15;
  config.sparql_urls = {"http://x.org/sparql"};
  GeneratePortalCatalog(config, &store);
  endpoint::LocalEndpoint ep("u", "n", &store);
  auto r = ep.Query(R"(
PREFIX dcat: <http://www.w3.org/ns/dcat#>
PREFIX dc: <http://purl.org/dc/terms/>
SELECT (COUNT(DISTINCT ?ds) AS ?n) WHERE {
  ?ds a dcat:Dataset .
  ?ds dc:title ?t .
  ?ds dcat:distribution ?d .
  ?d dcat:accessURL ?u .
})");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.ScalarInt("n"), 15);
}

}  // namespace
}  // namespace hbold::workload
