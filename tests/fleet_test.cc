// Fleet-layer tests: stable sharding, the multi-day determinism property
// (canonical history and persisted artifacts are byte-identical across
// shard counts, parallelism, and batching), seeded churn semantics
// (arrivals schedulable the NEXT day, deaths retried daily), adaptive
// batch-width policy, the clock-advance contract, and the
// RefreshScheduler mid-cycle pickup regression.

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "endpoint/registry.h"
#include "endpoint/simulated_endpoint.h"
#include "extraction/scheduler.h"
#include "hbold/fleet.h"
#include "hbold/server.h"
#include "store/database.h"
#include "workload/ld_generator.h"

namespace hbold {
namespace {

using endpoint::AvailabilityModel;
using endpoint::Dialect;
using endpoint::EndpointRecord;
using endpoint::EndpointRegistry;
using endpoint::SimulatedRemoteEndpoint;
using extraction::RefreshScheduler;

constexpr size_t kBaseEndpoints = 10;   // last one registered, never attached
constexpr size_t kLatentEndpoints = 2;  // churn in on day 0 (processed day 1)
constexpr double kDeathProbability = 0.08;
constexpr uint64_t kChurnSeed = 77;

/// Canonical view of one collection's persisted content (same idiom as
/// async_extraction_test): endpoint_url -> dump with the
/// insertion-order-dependent _id normalized away.
std::map<std::string, std::string> CanonicalCollection(
    const store::Database& db, const std::string& collection) {
  std::map<std::string, std::string> canonical;
  const store::Collection* c = db.FindCollection(collection);
  if (c == nullptr) return canonical;
  for (store::Document doc : c->Snapshot()) {
    std::string url = doc.GetString("endpoint_url");
    doc.Set("_id", 0);
    canonical[url] = doc.Dump();
  }
  return canonical;
}

/// Union of a collection across every shard's database. Each endpoint
/// lives in exactly one shard, so the union is key-disjoint and directly
/// comparable to a 1-shard run's collection.
std::map<std::string, std::string> MergedCanonicalCollection(
    const Fleet& fleet, const std::string& collection) {
  std::map<std::string, std::string> merged;
  for (size_t s = 0; s < fleet.num_shards(); ++s) {
    for (auto& [url, dump] : CanonicalCollection(fleet.shard_db(s),
                                                 collection)) {
      merged.emplace(url, dump);
    }
  }
  return merged;
}

/// A throttling proxy: the backing store answers, but anything with a
/// GROUP BY blows the simulated work budget — so the efficient
/// direct-aggregation strategy times out (one throttle event) and the
/// extractor lands on per-class counting. Deterministic by construction.
class GroupByThrottlingEndpoint : public endpoint::SparqlEndpoint {
 public:
  explicit GroupByThrottlingEndpoint(endpoint::SparqlEndpoint* inner)
      : inner_(inner) {}

  Result<endpoint::QueryOutcome> Query(const std::string& q) override {
    if (q.find("GROUP BY") != std::string::npos) {
      return Status::Timeout("simulated throttling on " + inner_->url());
    }
    return inner_->Query(q);
  }
  const std::string& url() const override { return inner_->url(); }
  const std::string& name() const override { return inner_->name(); }
  size_t queries_served() const override { return inner_->queries_served(); }

 private:
  endpoint::SparqlEndpoint* inner_;
};

/// One seeded simulated world: stores are shared across configurations
/// (content is immutable), endpoints are rebuilt per run because they
/// bind to the run's clock.
class FleetWorld {
 public:
  /// Builds the shared stores once.
  static std::vector<std::unique_ptr<rdf::TripleStore>> BuildStores() {
    std::vector<std::unique_ptr<rdf::TripleStore>> stores;
    for (size_t i = 0; i < kBaseEndpoints + kLatentEndpoints; ++i) {
      auto store = std::make_unique<rdf::TripleStore>();
      workload::SyntheticLdConfig config;
      config.namespace_iri = Url(i).substr(0, Url(i).size() - 6);  // strip "sparql"
      config.num_classes = 5 + i * 2;
      config.max_instances_per_class = 20;
      config.seed = 1400 + i;
      workload::GenerateSyntheticLd(config, store.get());
      stores.push_back(std::move(store));
    }
    return stores;
  }

  static std::string Url(size_t i) {
    return "http://fleet" + std::to_string(i) + ".example.org/sparql";
  }

  explicit FleetWorld(const std::vector<std::unique_ptr<rdf::TripleStore>>&
                          stores,
                      FleetOptions options) {
    options.churn.death_probability = kDeathProbability;
    options.churn.seed = kChurnSeed;
    fleet_ = std::make_unique<Fleet>(&clock_, options);
    for (size_t i = 0; i < kBaseEndpoints + kLatentEndpoints; ++i) {
      Dialect dialect = Dialect::Full();
      if (i % 4 == 1) dialect = Dialect::NoGroupBy();
      if (i % 4 == 2) dialect = Dialect::NoAggregates();
      if (i % 4 == 3) dialect = Dialect::RowCapped(64);
      AvailabilityModel availability;
      if (i == 8) availability.forced_outage_days = {0};  // flaps on day 0
      if (i == 7) dialect = Dialect::Full();  // throttled via proxy below
      endpoints_.push_back(std::make_unique<SimulatedRemoteEndpoint>(
          Url(i), "Fleet " + std::to_string(i), stores[i].get(), &clock_,
          dialect, availability));
    }
    throttler_ = std::make_unique<GroupByThrottlingEndpoint>(
        endpoints_[7].get());
    for (size_t i = 0; i < kBaseEndpoints; ++i) {
      EndpointRecord record;
      record.url = Url(i);
      record.name = endpoints_[i]->name();
      fleet_->RegisterEndpoint(record);
      if (i + 1 < kBaseEndpoints) {
        // The last base endpoint has no route: a permanent §3.1 failure
        // retried every day. Endpoint 7 answers through the throttling
        // proxy so every extraction reports throttle pressure.
        fleet_->AttachEndpoint(
            Url(i), i == 7
                        ? static_cast<endpoint::SparqlEndpoint*>(
                              throttler_.get())
                        : endpoints_[i].get());
      }
    }
    for (size_t i = kBaseEndpoints; i < kBaseEndpoints + kLatentEndpoints;
         ++i) {
      EndpointRecord record;
      record.url = Url(i);
      record.name = endpoints_[i]->name();
      fleet_->churn().ScheduleArrival(/*day=*/0, std::move(record),
                                      endpoints_[i].get());
    }
  }

  Fleet& fleet() { return *fleet_; }
  SimClock& clock() { return clock_; }

 private:
  SimClock clock_;
  std::vector<std::unique_ptr<SimulatedRemoteEndpoint>> endpoints_;
  std::unique_ptr<GroupByThrottlingEndpoint> throttler_;
  std::unique_ptr<Fleet> fleet_;
};

class FleetSimulationTest : public ::testing::Test {
 protected:
  void SetUp() override { stores_ = FleetWorld::BuildStores(); }

  FleetOptions Config(int shards, int parallelism, int width,
                      bool adaptive = false) {
    FleetOptions options;
    options.num_shards = shards;
    options.server.parallelism = parallelism;
    options.server.query_batch_width = width;
    options.adaptive_width.enabled = adaptive;
    options.adaptive_width.max_width = 8;
    if (shards == 1 && parallelism == 1) options.fleet_workers = 1;
    return options;
  }

  std::vector<std::unique_ptr<rdf::TripleStore>> stores_;
};

// ------------------------------------------------------------- sharding

TEST_F(FleetSimulationTest, ShardAssignmentStableAndPartitioned) {
  FleetWorld a(stores_, Config(4, 1, 1));
  FleetWorld b(stores_, Config(4, 1, 1));
  size_t total = 0;
  std::set<size_t> used;
  for (size_t i = 0; i < kBaseEndpoints; ++i) {
    const std::string url = FleetWorld::Url(i);
    EXPECT_EQ(a.fleet().ShardOf(url), b.fleet().ShardOf(url)) << url;
    used.insert(a.fleet().ShardOf(url));
  }
  for (size_t s = 0; s < a.fleet().num_shards(); ++s) {
    total += a.fleet().shard(s).registry().size();
  }
  EXPECT_EQ(total, kBaseEndpoints);
  // 10 urls over 4 shards: the stable hash should actually spread them.
  EXPECT_GE(used.size(), 2u);
  EXPECT_EQ(a.fleet().registration_order().size(), kBaseEndpoints);
}

// ------------------------------------------------- the determinism gate

TEST_F(FleetSimulationTest, CanonicalHistoryInvariantAcrossDeployments) {
  constexpr int64_t kDays = 4;
  FleetWorld baseline_world(stores_, Config(1, 1, 1));
  FleetReport baseline = baseline_world.fleet().RunSimulation(kDays);
  const std::string baseline_dump = baseline.CanonicalDump();
  auto baseline_summaries =
      MergedCanonicalCollection(baseline_world.fleet(), kSummariesCollection);
  auto baseline_clusters =
      MergedCanonicalCollection(baseline_world.fleet(), kClustersCollection);
  ASSERT_EQ(baseline.days.size(), static_cast<size_t>(kDays));
  // The world must actually exercise the interesting machinery.
  EXPECT_EQ(baseline.days[0].arrivals, kLatentEndpoints);
  EXPECT_GE(baseline.days[0].failed, 1u);  // the unattached endpoint
  size_t total_deaths = 0;
  for (const auto& day : baseline.days) {
    total_deaths += day.deaths;
    EXPECT_FALSE(day.overran_day);
  }
  EXPECT_GE(total_deaths, 1u) << "churn seed produced no deaths; the "
                                 "differential test would not cover them";
  ASSERT_GE(baseline_summaries.size(), kBaseEndpoints - 2);

  struct Deployment {
    int shards, parallelism, width;
    bool adaptive;
  };
  const Deployment deployments[] = {
      {2, 1, 1, false}, {4, 1, 1, false}, {4, 4, 1, false},
      {2, 4, 4, false}, {4, 1, 4, false}, {4, 4, 4, true},
  };
  for (const Deployment& dep : deployments) {
    SCOPED_TRACE("shards=" + std::to_string(dep.shards) +
                 " parallelism=" + std::to_string(dep.parallelism) +
                 " width=" + std::to_string(dep.width) +
                 (dep.adaptive ? " adaptive" : ""));
    FleetWorld world(
        stores_, Config(dep.shards, dep.parallelism, dep.width, dep.adaptive));
    FleetReport report = world.fleet().RunSimulation(kDays);
    EXPECT_EQ(report.CanonicalDump(), baseline_dump);
    EXPECT_EQ(report.Fingerprint(), baseline.Fingerprint());
    EXPECT_EQ(MergedCanonicalCollection(world.fleet(), kSummariesCollection),
              baseline_summaries);
    EXPECT_EQ(MergedCanonicalCollection(world.fleet(), kClustersCollection),
              baseline_clusters);
  }
}

TEST_F(FleetSimulationTest, RepeatedRunsBitIdenticalIncludingDurations) {
  FleetWorld a(stores_, Config(4, 4, 4));
  FleetWorld b(stores_, Config(4, 4, 4));
  FleetReport ra = a.fleet().RunSimulation(3);
  FleetReport rb = b.fleet().RunSimulation(3);
  ASSERT_EQ(ra.days.size(), rb.days.size());
  EXPECT_EQ(ra.CanonicalDump(), rb.CanonicalDump());
  for (size_t d = 0; d < ra.days.size(); ++d) {
    // Same deployment => even the duration figures are bit-identical.
    EXPECT_EQ(ra.days[d].fleet_makespan_ms, rb.days[d].fleet_makespan_ms);
  }
}

// ------------------------------------------------------- clock contract

TEST_F(FleetSimulationTest, ClockAdvancesByMakespanThenSnapsToDayBoundary) {
  FleetWorld world(stores_, Config(2, 1, 1));
  EXPECT_EQ(world.clock().NowDay(), 0);
  FleetDayReport day0 = world.fleet().RunDay();
  EXPECT_EQ(day0.day, 0);
  EXPECT_GT(day0.fleet_makespan_ms, 0);
  double max_shard = 0;
  for (const DailyReport& s : day0.shard_reports) {
    max_shard = std::max(max_shard, s.batched_makespan_ms);
  }
  EXPECT_EQ(day0.fleet_makespan_ms, max_shard);
  // The makespan is far under a simulated day, so the clock snapped to
  // the next boundary exactly.
  EXPECT_FALSE(day0.overran_day);
  EXPECT_EQ(world.clock().NowMs(), SimClock::kMillisPerDay);
  EXPECT_EQ(world.clock().NowDay(), 1);
}

// ---------------------------------------------------------------- churn

TEST_F(FleetSimulationTest, ChurnArrivalsPickedUpNextDayNotSameDay) {
  FleetWorld world(stores_, Config(2, 1, 1));
  FleetDayReport day0 = world.fleet().RunDay();
  EXPECT_EQ(day0.arrivals, kLatentEndpoints);
  std::set<std::string> day0_urls;
  for (const DueOutcome& o : day0.outcomes) day0_urls.insert(o.url);
  const std::string latent = FleetWorld::Url(kBaseEndpoints);
  EXPECT_EQ(day0_urls.count(latent), 0u)
      << "an endpoint that churned in on day 0 must not be extracted on "
         "day 0";

  FleetDayReport day1 = world.fleet().RunDay();
  std::set<std::string> day1_urls;
  for (const DueOutcome& o : day1.outcomes) day1_urls.insert(o.url);
  EXPECT_EQ(day1_urls.count(latent), 1u)
      << "the day-0 arrival must be deterministically picked up on day 1";
}

TEST_F(FleetSimulationTest, DeadEndpointsFailAndRetryDaily) {
  FleetWorld world(stores_, Config(2, 1, 1));
  FleetReport report = world.fleet().RunSimulation(4);
  // Find the first death and check the url keeps failing afterwards.
  std::string victim;
  size_t death_day = 0;
  for (size_t d = 0; d < report.days.size() && victim.empty(); ++d) {
    if (report.days[d].deaths == 0) continue;
    death_day = d;
    // The victim shows up as a newly failing, previously succeeding url.
    for (const DueOutcome& o : report.days[d].outcomes) {
      if (!o.succeeded && o.url != FleetWorld::Url(kBaseEndpoints - 1)) {
        victim = o.url;
        break;
      }
    }
  }
  ASSERT_FALSE(victim.empty()) << "no death in 4 days with this seed";
  for (size_t d = death_day; d < report.days.size(); ++d) {
    bool found = false;
    for (const DueOutcome& o : report.days[d].outcomes) {
      if (o.url == victim) {
        EXPECT_FALSE(o.succeeded) << "day " << d;
        found = true;
      }
    }
    EXPECT_TRUE(found) << "a dead endpoint must be retried daily (day " << d
                       << ")";
  }
}

// ------------------------------------------------------- adaptive width

TEST(AdaptiveWidthControllerTest, BacksOffMultiplicativelyAndRecovers) {
  AdaptiveWidthOptions options;
  options.enabled = true;
  options.min_width = 1;
  options.max_width = 8;
  options.recovery_days = 2;
  AdaptiveWidthController controller(options, /*initial_width=*/8);
  const std::string url = "http://x/sparql";
  EXPECT_EQ(controller.WidthFor(url), 8);
  EXPECT_EQ(controller.Observe(url, false, /*throttle_events=*/2), 4);
  EXPECT_EQ(controller.Observe(url, false, 1), 2);
  EXPECT_EQ(controller.Observe(url, true, 0), 1);
  EXPECT_EQ(controller.Observe(url, true, 0), 1);  // clamped at min
  // Two clean days per step back up.
  EXPECT_EQ(controller.Observe(url, false, 0), 1);
  EXPECT_EQ(controller.Observe(url, false, 0), 2);
  EXPECT_EQ(controller.Observe(url, false, 0), 2);
  EXPECT_EQ(controller.Observe(url, false, 0), 3);
  // A relapse resets the streak.
  EXPECT_EQ(controller.Observe(url, false, 1), 1);
}

TEST(AdaptiveWidthControllerTest, InitialWidthClampedIntoPolicyRange) {
  AdaptiveWidthOptions options;
  options.min_width = 2;
  options.max_width = 4;
  AdaptiveWidthController controller(options, /*initial_width=*/16);
  EXPECT_EQ(controller.WidthFor("a"), 4);
  AdaptiveWidthController low(options, /*initial_width=*/1);
  EXPECT_EQ(low.WidthFor("a"), 2);
}

TEST_F(FleetSimulationTest, AdaptiveWidthNarrowsThrottledEndpointOnly) {
  FleetOptions options = Config(2, 1, 4, /*adaptive=*/true);
  FleetWorld world(stores_, options);
  Fleet& fleet = world.fleet();
  const std::string throttled = FleetWorld::Url(7);
  const std::string clean = FleetWorld::Url(0);
  FleetDayReport day0 = fleet.RunDay();
  // The throttler really did report pressure.
  bool saw_throttle = false;
  for (const PipelineReport& r : day0.reports) {
    if (r.url == throttled) saw_throttle = r.extraction.throttle_events > 0;
  }
  ASSERT_TRUE(saw_throttle)
      << "work-budget endpoint did not report throttle_events; the "
         "adaptive policy has no signal";
  fleet.RunDay();  // day 1: push the adapted widths into the shards
  EXPECT_LT(fleet.shard(fleet.ShardOf(throttled))
                .QueryBatchWidthFor(throttled),
            4);
  EXPECT_EQ(fleet.shard(fleet.ShardOf(clean)).QueryBatchWidthFor(clean), 4);
}

// ------------------------------- RefreshScheduler mid-cycle regression

TEST(SchedulerMidCycleTest, FirstEligibleDayDefersBothDuePaths) {
  RefreshScheduler scheduler(7);
  EndpointRegistry registry;
  EndpointRecord seed;
  seed.url = "http://seed/sparql";
  registry.Add(seed);

  // Mid-cycle on day 3: a crawler (or churn) adds a record. The next-day
  // eligibility horizon makes both due paths skip it today...
  EndpointRecord newcomer;
  newcomer.url = "http://new/sparql";
  newcomer.added_day = 3;
  newcomer.first_eligible_day = 4;
  registry.Add(newcomer);

  std::vector<std::string> live = scheduler.DueToday(registry, 3);
  std::vector<std::string> snap = scheduler.DueToday(registry.Snapshot(), 3);
  EXPECT_EQ(live, snap);
  EXPECT_EQ(live, std::vector<std::string>{"http://seed/sparql"});

  // ...and deterministically include it the next simulated day.
  live = scheduler.DueToday(registry, 4);
  snap = scheduler.DueToday(registry.Snapshot(), 4);
  EXPECT_EQ(live, snap);
  EXPECT_EQ(live, (std::vector<std::string>{"http://seed/sparql",
                                            "http://new/sparql"}));
}

TEST(SchedulerMidCycleTest, LegacyRecordsWithoutHorizonStayImmediate) {
  RefreshScheduler scheduler(7);
  EndpointRecord legacy;
  legacy.url = "http://old/sparql";
  legacy.added_day = 5;  // default first_eligible_day = -1
  EXPECT_TRUE(scheduler.IsDue(legacy, 5));
}

TEST(SchedulerMidCycleTest, FirstEligibleDayRoundTripsThroughJson) {
  EndpointRecord record;
  record.url = "http://r/sparql";
  record.first_eligible_day = 12;
  EndpointRecord reloaded = EndpointRecord::FromJson(record.ToJson());
  EXPECT_EQ(reloaded.first_eligible_day, 12);

  // Registries persisted before the field existed load as "immediately".
  Json old = record.ToJson();
  Json stripped = Json::MakeObject();
  stripped.Set("url", "http://r/sparql");
  stripped.Set("added_day", static_cast<int64_t>(3));
  EXPECT_EQ(EndpointRecord::FromJson(stripped).first_eligible_day, -1);
}

}  // namespace
}  // namespace hbold
