// Plan-cache lifecycle suite: normalized-AST keying (alpha-renamed queries
// share one entry), rebuild-generation invalidation after incremental
// triple loads, the stale-statistics regression (join orders must follow a
// skewed appended batch, not a frozen snapshot), capacity eviction, and a
// TSan-gated concurrent-readers test against one shared cache.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "endpoint/local_endpoint.h"
#include "rdf/graph.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/planner.h"

namespace hbold::sparql {
namespace {

using rdf::Term;

rdf::TripleStore MakeSmallStore() {
  rdf::TripleStore store;
  auto iri = [](const std::string& s) { return Term::Iri("http://x/" + s); };
  for (int i = 0; i < 12; ++i) {
    store.Add(iri("s" + std::to_string(i)), iri("p"), iri("o" + std::to_string(i % 3)));
    store.Add(iri("s" + std::to_string(i)), iri("q"), iri("s" + std::to_string((i + 1) % 12)));
  }
  store.FinalizeIndex();
  return store;
}

SelectQuery Parse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text;
  return std::move(q).value();
}

// ------------------------------------------------------- key normalization

TEST(NormalizeKeyTest, AlphaRenamedQueriesShareOneKey) {
  SelectQuery a = Parse(
      "SELECT ?a ?b WHERE { ?a <http://x/p> ?b . ?b <http://x/q> ?c . }");
  SelectQuery b = Parse(
      "SELECT ?x ?y WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?z . }");
  EXPECT_EQ(NormalizeWhereKey(a), NormalizeWhereKey(b));
}

TEST(NormalizeKeyTest, ConstantsAndStructureAreDistinguished) {
  SelectQuery base = Parse("SELECT ?a WHERE { ?a <http://x/p> ?b . }");
  SelectQuery other_const = Parse("SELECT ?a WHERE { ?a <http://x/q> ?b . }");
  SelectQuery other_shape =
      Parse("SELECT ?a WHERE { ?a <http://x/p> ?b . ?a <http://x/p> ?c . }");
  SelectQuery filtered =
      Parse("SELECT ?a WHERE { ?a <http://x/p> ?b . FILTER (BOUND(?b)) . }");
  EXPECT_NE(NormalizeWhereKey(base), NormalizeWhereKey(other_const));
  EXPECT_NE(NormalizeWhereKey(base), NormalizeWhereKey(other_shape));
  EXPECT_NE(NormalizeWhereKey(base), NormalizeWhereKey(filtered));
}

TEST(NormalizeKeyTest, VariableIdentityPatternIsKept) {
  // ?a ?p ?a (shared variable) must not collide with ?a ?p ?b.
  SelectQuery shared = Parse("SELECT ?a WHERE { ?a <http://x/p> ?a . }");
  SelectQuery distinct = Parse("SELECT ?a WHERE { ?a <http://x/p> ?b . }");
  EXPECT_NE(NormalizeWhereKey(shared), NormalizeWhereKey(distinct));
}

// ----------------------------------------------------------- hit counting

TEST(PlanCacheTest, AliasedQueriesHitTheSameEntry) {
  rdf::TripleStore store = MakeSmallStore();
  PlanCache cache;
  Executor ex(&store, ExecOptions{}, &cache);

  ExecStats s1, s2, s3;
  ASSERT_TRUE(
      ex.Execute("SELECT ?a WHERE { ?a <http://x/p> ?b . ?a <http://x/q> ?c . }", &s1)
          .ok());
  EXPECT_EQ(s1.plan_cache_misses, 1u);
  EXPECT_EQ(s1.plan_cache_hits, 0u);

  // Alpha-renamed: same normalized key, so a hit.
  ASSERT_TRUE(
      ex.Execute("SELECT ?x WHERE { ?x <http://x/p> ?y . ?x <http://x/q> ?z . }", &s2)
          .ok());
  EXPECT_EQ(s2.plan_cache_hits, 1u);
  EXPECT_EQ(s2.plan_cache_misses, 0u);

  // Different SELECT clause over the same WHERE tree still shares the plan.
  ASSERT_TRUE(
      ex.Execute(
            "SELECT ?y ?z WHERE { ?y <http://x/p> ?w . ?y <http://x/q> ?u . }",
            &s3)
          .ok());
  EXPECT_EQ(s3.plan_cache_hits, 1u);

  PlanCacheStats cs = cache.stats();
  EXPECT_EQ(cs.hits, 2u);
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.entries, 1u);
}

TEST(PlanCacheTest, DifferentConstantsMiss) {
  rdf::TripleStore store = MakeSmallStore();
  PlanCache cache;
  Executor ex(&store, ExecOptions{}, &cache);
  ASSERT_TRUE(ex.Execute("SELECT ?a WHERE { ?a <http://x/p> ?b . }").ok());
  ASSERT_TRUE(ex.Execute("SELECT ?a WHERE { ?a <http://x/q> ?b . }").ok());
  PlanCacheStats cs = cache.stats();
  EXPECT_EQ(cs.misses, 2u);
  EXPECT_EQ(cs.hits, 0u);
  EXPECT_EQ(cs.entries, 2u);
}

// ----------------------------------------------- generation invalidation

TEST(PlanCacheTest, IncrementalLoadInvalidatesByGeneration) {
  rdf::TripleStore store = MakeSmallStore();
  PlanCache cache;
  Executor ex(&store, ExecOptions{}, &cache);
  const std::string q = "SELECT ?a WHERE { ?a <http://x/p> ?b . }";

  ExecStats s1;
  ASSERT_TRUE(ex.Execute(q, &s1).ok());
  EXPECT_EQ(s1.plan_cache_misses, 1u);
  ExecStats s2;
  ASSERT_TRUE(ex.Execute(q, &s2).ok());
  EXPECT_EQ(s2.plan_cache_hits, 1u);

  // Incremental load: the store's rebuild generation advances on the next
  // read, so the cached epoch no longer matches.
  const uint64_t gen_before = store.generation();
  store.Add(Term::Iri("http://x/new"), Term::Iri("http://x/p"),
            Term::Iri("http://x/o0"));
  EXPECT_GT(store.generation(), gen_before);

  ExecStats s3;
  auto r = ex.Execute(q, &s3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(s3.plan_cache_misses, 1u) << "stale epoch must not serve";
  EXPECT_EQ(s3.plan_cache_hits, 0u);
  // The re-planned query sees the new triple.
  EXPECT_EQ(r->num_rows(), 13u);
  PlanCacheStats cs = cache.stats();
  EXPECT_EQ(cs.invalidations, 1u);

  // And the fresh epoch serves hits again.
  ExecStats s4;
  ASSERT_TRUE(ex.Execute(q, &s4).ok());
  EXPECT_EQ(s4.plan_cache_hits, 1u);
}

// ------------------------------------------------------------ group tier

TEST(GroupTierTest, SharedOptionalBodyReplansOnce) {
  rdf::TripleStore store = MakeSmallStore();
  PlanCache cache;
  Executor ex(&store, ExecOptions{}, &cache);

  // Two queries that disagree at the root but share the OPTIONAL body
  // (alias-renamed in the second — the fresh-VarCanon contract).
  ASSERT_TRUE(ex.Execute("SELECT ?a WHERE { ?a <http://x/p> ?b . "
                         "OPTIONAL { ?a <http://x/q> ?x . } }")
                  .ok());
  PlanCacheStats after_first = cache.stats();
  EXPECT_EQ(after_first.group_misses, 1u);
  EXPECT_EQ(after_first.group_hits, 0u);
  EXPECT_EQ(after_first.group_entries, 1u);

  ASSERT_TRUE(ex.Execute("SELECT ?s WHERE { ?s <http://x/q> ?t . "
                         "OPTIONAL { ?s <http://x/q> ?y . } }")
                  .ok());
  PlanCacheStats cs = cache.stats();
  EXPECT_EQ(cs.group_hits, 1u) << "alias-renamed OPTIONAL body must hit";
  EXPECT_EQ(cs.group_misses, 1u);
  EXPECT_EQ(cs.group_entries, 1u);
  // Whole-query accounting is untouched by the group tier: both queries
  // were top-level misses.
  EXPECT_EQ(cs.misses, 2u);
  EXPECT_EQ(cs.hits, 0u);

  auto reuse = cache.GroupReuseStats();
  ASSERT_EQ(reuse.size(), 1u);
  EXPECT_EQ(reuse[0].second, 1u);
}

TEST(GroupTierTest, UnionBranchesShareOneGroupEntry) {
  rdf::TripleStore store = MakeSmallStore();
  PlanCache cache;
  Executor ex(&store, ExecOptions{}, &cache);

  // Both UNION branches have the same canonical triple list, so the right
  // branch is served from the entry the left branch just inserted.
  ASSERT_TRUE(ex.Execute("SELECT ?s WHERE { ?s <http://x/p> ?o . "
                         "{ ?s <http://x/q> ?w . } UNION "
                         "{ ?s <http://x/q> ?v . } }")
                  .ok());
  PlanCacheStats cs = cache.stats();
  EXPECT_EQ(cs.group_misses, 1u);
  EXPECT_EQ(cs.group_hits, 1u);
  EXPECT_EQ(cs.group_entries, 1u);
}

TEST(GroupTierTest, FlushedWithTheEpoch) {
  rdf::TripleStore store = MakeSmallStore();
  PlanCache cache;
  Executor ex(&store, ExecOptions{}, &cache);
  const std::string q =
      "SELECT ?a WHERE { ?a <http://x/p> ?b . "
      "OPTIONAL { ?a <http://x/q> ?x . } }";
  ASSERT_TRUE(ex.Execute(q).ok());
  EXPECT_EQ(cache.stats().group_entries, 1u);

  // Generation bump: the group tier was planned against stale statistics
  // and must flush with the other tiers.
  store.Add(Term::Iri("http://x/new"), Term::Iri("http://x/p"),
            Term::Iri("http://x/o0"));
  ASSERT_TRUE(ex.Execute(q).ok());
  PlanCacheStats cs = cache.stats();
  EXPECT_EQ(cs.group_hits, 0u);
  EXPECT_EQ(cs.group_misses, 2u);
  EXPECT_EQ(cs.group_entries, 1u) << "fresh epoch re-inserted the body";
}

// ------------------------------------------------- hash-join build reuse

TEST(HashBuildReuseTest, RepeatedPredicateStepsShareOneBuild) {
  rdf::TripleStore store = MakeSmallStore();
  ExecOptions forced;
  forced.hash_join = HashJoinMode::kForce;
  Executor hashed(&store, forced);
  ExecOptions off;
  off.hash_join = HashJoinMode::kOff;
  Executor nested(&store, off);

  // A chain over one predicate: after the driving scan, both remaining
  // steps probe the identical (constants, key mask) span, so the second
  // hash step reuses the first step's build.
  const std::string q =
      "SELECT ?a ?d WHERE { ?a <http://x/q> ?b . ?b <http://x/q> ?c . "
      "?c <http://x/q> ?d . }";
  ExecStats hs, ns;
  auto hr = hashed.Execute(q, &hs);
  auto nr = nested.Execute(q, &ns);
  ASSERT_TRUE(hr.ok());
  ASSERT_TRUE(nr.ok());
  EXPECT_EQ(hs.hash_join_builds, 1u) << "second step must reuse the build";
  EXPECT_GE(hs.hash_join_build_reuses, 1u);
  // The physical sharing is invisible to results and charged accounting.
  EXPECT_EQ(hr->num_rows(), nr->num_rows());
  EXPECT_EQ(hs.intermediate_bindings, ns.intermediate_bindings);
}

// ------------------------------------------------ stale-statistics guard

TEST(StaleStatsTest, JoinOrderFollowsSkewedIncrementalBatch) {
  // Before the batch: p is rare (selective), q is common — the planner
  // starts with the p pattern. After appending a skewed batch that makes
  // p ubiquitous, the refreshed statistics must flip the order; a frozen
  // snapshot (or a stale cached plan) would keep p first.
  rdf::TripleStore store;
  auto iri = [](const std::string& s) { return Term::Iri("http://x/" + s); };
  for (int i = 0; i < 4; ++i) {
    store.Add(iri("s" + std::to_string(i)), iri("p"), iri("o"));
  }
  for (int i = 0; i < 40; ++i) {
    store.Add(iri("s" + std::to_string(i)), iri("q"), iri("t"));
  }
  store.FinalizeIndex();

  SelectQuery q = Parse(
      "SELECT ?a WHERE { ?a <http://x/p> ?b . ?a <http://x/q> ?c . }");
  ExecOptions options;
  std::vector<size_t> before = PlanOrder(q.where.triples, options, &store);
  ASSERT_EQ(before.size(), 2u);
  EXPECT_EQ(before[0], 0u) << "p (4 triples) should drive before the batch";

  // Skewed batch: p explodes, q stays put.
  for (int i = 0; i < 400; ++i) {
    store.Add(iri("z" + std::to_string(i)), iri("p"),
              iri("o" + std::to_string(i)));
  }
  std::vector<size_t> after = PlanOrder(q.where.triples, options, &store);
  EXPECT_EQ(after[0], 1u) << "q (40 triples) should drive after the batch";

  // Through the executor + cache: the generation bump re-plans, so the
  // cached stale order is not used (charged bindings follow the new one).
  PlanCache cache;
  Executor ex(&store, options, &cache);
  ExecStats s;
  ASSERT_TRUE(ex.Execute(q, &s).ok());
  EXPECT_EQ(s.plan_cache_misses, 1u);
}

TEST(StaleStatsTest, SampledRefreshKeepsCountDistinctExact) {
  // Force the sampled-stats path on a small store and check that (a) the
  // stats are flagged inexact, (b) CountDistinct still answers exactly,
  // (c) the refresh is deterministic.
  rdf::TripleStore store;
  store.SetStatsSamplingThreshold(64);
  auto iri = [](const std::string& s) { return Term::Iri("http://x/" + s); };
  for (int i = 0; i < 300; ++i) {
    store.Add(iri("s" + std::to_string(i % 90)), iri("p"),
              iri("o" + std::to_string(i % 7)));
  }
  store.FinalizeIndex();

  // Small incremental batch (< 1/8 of the index) triggers sampling.
  store.Add(iri("extra"), iri("p"), iri("o1"));
  store.FinalizeIndex();

  const rdf::TermId p = store.dict().Lookup(iri("p"));
  ASSERT_NE(p, rdf::kInvalidTermId);
  rdf::PredicateStats stats = store.StatsForPredicate(p);
  EXPECT_FALSE(stats.exact);
  EXPECT_EQ(stats.triples, store.size());  // range arithmetic stays exact

  // Oracle distinct counts over the full index.
  rdf::TriplePattern pat;
  pat.p = p;
  std::set<rdf::TermId> subjects, objects;
  for (const rdf::Triple& t : store.MatchAll(pat)) {
    subjects.insert(t.s);
    objects.insert(t.o);
  }
  EXPECT_EQ(store.CountDistinct(pat, rdf::TriplePos::kS), subjects.size());
  EXPECT_EQ(store.CountDistinct(pat, rdf::TriplePos::kO), objects.size());

  // Deterministic: a second identical store produces identical stats.
  rdf::TripleStore twin;
  twin.SetStatsSamplingThreshold(64);
  for (int i = 0; i < 300; ++i) {
    twin.Add(iri("s" + std::to_string(i % 90)), iri("p"),
             iri("o" + std::to_string(i % 7)));
  }
  twin.FinalizeIndex();
  twin.Add(iri("extra"), iri("p"), iri("o1"));
  twin.FinalizeIndex();
  rdf::PredicateStats twin_stats = twin.StatsForPredicate(p);
  EXPECT_EQ(stats.triples, twin_stats.triples);
  EXPECT_EQ(stats.distinct_subjects, twin_stats.distinct_subjects);
  EXPECT_EQ(stats.distinct_objects, twin_stats.distinct_objects);
}

// --------------------------------------------------------------- capacity

TEST(PlanCacheTest, CapacityEvictionDropsTheEpoch) {
  rdf::TripleStore store = MakeSmallStore();
  PlanCache cache(4);
  Executor ex(&store, ExecOptions{}, &cache);
  for (int i = 0; i < 10; ++i) {
    // Distinct constants -> distinct keys.
    std::string q = "SELECT ?a WHERE { ?a <http://x/p" + std::to_string(i) +
                    "> ?b . }";
    ASSERT_TRUE(ex.Execute(q).ok());
  }
  EXPECT_LE(cache.size(), 4u);
}

// ------------------------------------------------- concurrent readers

// TSan-gated in CI: many threads hammer one LocalEndpoint (one shared
// plan cache) with aliased and distinct queries while reading stats.
TEST(PlanCacheConcurrencyTest, SharedCacheUnderConcurrentReaders) {
  rdf::TripleStore store = MakeSmallStore();
  endpoint::LocalEndpoint ep("http://x/sparql", "x", &store);
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 200;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        // Rotate over a few alpha-equivalent spellings plus some distinct
        // shapes so hits, misses, and inserts interleave.
        std::string v = "?x" + std::to_string((t + i) % 5);
        std::string q;
        if (i % 3 == 0) {
          q = "SELECT " + v + " WHERE { " + v + " <http://x/p> ?o . }";
        } else if (i % 3 == 1) {
          q = "SELECT " + v + " WHERE { " + v + " <http://x/q> ?o . " + v +
              " <http://x/p> ?c . }";
        } else {
          q = "SELECT (COUNT(*) AS ?n) WHERE { " + v + " <http://x/p> ?o . }";
        }
        sparql::ExecStats stats;
        auto r = ep.QueryWithStats(q, &stats);
        if (!r.ok()) failures.fetch_add(1);
        if (i % 16 == 0) (void)ep.engine_stats();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
  endpoint::QueryEngineStats es = ep.engine_stats();
  EXPECT_EQ(es.plan_cache_hits + es.plan_cache_misses,
            static_cast<uint64_t>(kThreads) * kQueriesPerThread);
  // Two distinct normalized WHERE shapes (the COUNT form shares the first
  // form's WHERE tree) -> at least one miss each; the steady state is hits.
  EXPECT_GE(es.plan_cache_misses, 2u);
  EXPECT_GT(es.plan_cache_hits, es.plan_cache_misses);
}

}  // namespace
}  // namespace hbold::sparql
