// Mutation-model and TripleStore-removal tests: staged retractions,
// removal-wins-over-add batch semantics, the seeded per-day mutation
// model's determinism (bit-identical stores across deployment shapes and
// batching on/off), generation movement iff data moved, and the change
// probe protocol.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "endpoint/simulated_endpoint.h"
#include "hbold/server.h"
#include "rdf/graph.h"
#include "rdf/vocab.h"
#include "store/database.h"
#include "workload/ld_generator.h"

namespace hbold {
namespace {

using endpoint::ChangeProbe;
using endpoint::MutationModel;
using endpoint::SimulatedRemoteEndpoint;
using rdf::Term;
using rdf::TriplePattern;

/// Canonical lexical dump of every triple, in SPO index order — the
/// bit-identity comparator for two stores.
std::string DumpStore(const rdf::TripleStore& store) {
  std::string out;
  for (const rdf::Triple& t : store.MatchAll(TriplePattern{})) {
    out += store.dict().Get(t.s).lexical();
    out += ' ';
    out += store.dict().Get(t.p).lexical();
    out += ' ';
    out += store.dict().Get(t.o).lexical();
    out += '\n';
  }
  return out;
}

void BuildLd(rdf::TripleStore* store, uint64_t seed) {
  workload::SyntheticLdConfig config;
  config.namespace_iri = "http://mut.example.org/";
  config.num_classes = 12;
  config.max_instances_per_class = 30;
  config.seed = seed;
  workload::GenerateSyntheticLd(config, store);
}

// ------------------------------------------------------ staged removals

TEST(TripleStoreRemovalTest, RemoveDropsTriple) {
  rdf::TripleStore store;
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
            Term::Iri("http://x/o"));
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
            Term::Iri("http://x/o2"));
  ASSERT_EQ(store.size(), 2u);
  store.Remove(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
               Term::Iri("http://x/o"));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.Contains(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
                              Term::Iri("http://x/o")));
  EXPECT_TRUE(store.Contains(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
                             Term::Iri("http://x/o2")));
}

TEST(TripleStoreRemovalTest, RemovingAbsentTripleIsNoOp) {
  rdf::TripleStore store;
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
            Term::Iri("http://x/o"));
  store.Remove(Term::Iri("http://x/other"), Term::Iri("http://x/p"),
               Term::Iri("http://x/o"));
  EXPECT_EQ(store.size(), 1u);
  // The removal interned its terms anyway: id assignment stays a pure
  // function of term-arrival order, present or not.
  EXPECT_NE(store.dict().Lookup(Term::Iri("http://x/other")),
            rdf::kInvalidTermId);
}

TEST(TripleStoreRemovalTest, RemovalWinsOverAddInSameBatch) {
  rdf::TripleStore store;
  store.Add(Term::Iri("http://x/keep"), Term::Iri("http://x/p"),
            Term::Iri("http://x/o"));
  store.FinalizeIndex();
  // One staged batch describing a day's end state: the triple both added
  // and retracted must end up absent.
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
            Term::Iri("http://x/o"));
  store.Remove(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
               Term::Iri("http://x/o"));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.Contains(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
                              Term::Iri("http://x/o")));
}

TEST(TripleStoreRemovalTest, RemovalBumpsGeneration) {
  rdf::TripleStore store;
  store.Add(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
            Term::Iri("http://x/o"));
  uint64_t g0 = store.generation();
  store.Remove(Term::Iri("http://x/s"), Term::Iri("http://x/p"),
               Term::Iri("http://x/o"));
  EXPECT_GT(store.generation(), g0);
  EXPECT_EQ(store.size(), 0u);
}

// ------------------------------------------------------- mutation model

TEST(MutationModelTest, AdvanceIsDeterministic) {
  rdf::TripleStore a, b;
  BuildLd(&a, 99);
  BuildLd(&b, 99);
  SimClock clock_a, clock_b;
  MutationModel mutation;
  mutation.daily_churn_fraction = 0.05;
  mutation.seed = 7;
  SimulatedRemoteEndpoint ep_a("http://a/sparql", "a", &a, &clock_a,
                               endpoint::Dialect::Full(), {}, {}, mutation);
  SimulatedRemoteEndpoint ep_b("http://b/sparql", "b", &b, &clock_b,
                               endpoint::Dialect::Full(), {}, {}, mutation);
  ep_a.AdvanceDataDay(4);
  ep_b.AdvanceDataDay(4);
  EXPECT_EQ(DumpStore(a), DumpStore(b));
  EXPECT_EQ(a.generation(), b.generation());
}

TEST(MutationModelTest, StepwiseEqualsJumpAdvance) {
  rdf::TripleStore a, b;
  BuildLd(&a, 42);
  BuildLd(&b, 42);
  SimClock clock_a, clock_b;
  MutationModel mutation;
  mutation.daily_churn_fraction = 0.04;
  mutation.seed = 3;
  SimulatedRemoteEndpoint ep_a("http://a/sparql", "a", &a, &clock_a,
                               endpoint::Dialect::Full(), {}, {}, mutation);
  SimulatedRemoteEndpoint ep_b("http://b/sparql", "b", &b, &clock_b,
                               endpoint::Dialect::Full(), {}, {}, mutation);
  for (int64_t d = 1; d <= 5; ++d) ep_a.AdvanceDataDay(d);
  ep_b.AdvanceDataDay(5);  // catch-up replays days 1..5
  EXPECT_EQ(DumpStore(a), DumpStore(b));
}

TEST(MutationModelTest, MutationActuallyChangesData) {
  rdf::TripleStore store;
  BuildLd(&store, 17);
  const std::string before = DumpStore(store);
  const uint64_t g0 = store.generation();
  SimClock clock;
  MutationModel mutation;
  mutation.daily_churn_fraction = 0.05;
  mutation.seed = 1;
  SimulatedRemoteEndpoint ep("http://m/sparql", "m", &store, &clock,
                             endpoint::Dialect::Full(), {}, {}, mutation);
  ep.AdvanceDataDay(1);
  EXPECT_NE(DumpStore(store), before);
  EXPECT_GT(store.generation(), g0);
}

TEST(MutationModelTest, ZeroChurnLeavesStoreAndGenerationAlone) {
  rdf::TripleStore store;
  BuildLd(&store, 17);
  const std::string before = DumpStore(store);
  const uint64_t g0 = store.generation();
  SimClock clock;
  SimulatedRemoteEndpoint ep("http://m/sparql", "m", &store, &clock);
  ep.AdvanceDataDay(10);
  EXPECT_EQ(DumpStore(store), before);
  EXPECT_EQ(store.generation(), g0);
}

TEST(MutationModelTest, MostClassesStayQuiet) {
  rdf::TripleStore store;
  BuildLd(&store, 23);
  SimClock clock;
  MutationModel mutation;
  mutation.daily_churn_fraction = 0.05;
  mutation.hot_class_fraction = 0.25;
  mutation.seed = 11;
  SimulatedRemoteEndpoint ep("http://m/sparql", "m", &store, &clock,
                             endpoint::Dialect::Full(), {}, {}, mutation);
  auto before = ep.ProbeChanges();
  ASSERT_TRUE(before.ok()) << before.status();
  ep.AdvanceDataDay(3);
  auto after = ep.ProbeChanges();
  ASSERT_TRUE(after.ok()) << after.status();
  // Diff the two probes: the hot-class skew must leave most classes at
  // their original version.
  size_t moved = 0;
  for (const auto& cf : after->classes) {
    for (const auto& prev : before->classes) {
      if (prev.class_iri == cf.class_iri && prev.version != cf.version) {
        ++moved;
      }
    }
  }
  ASSERT_GT(moved, 0u);
  EXPECT_LT(moved, before->classes.size() / 2);
}

// ------------------------------------------ determinism across cycles

/// The daily cycle applies mutations sequentially at cycle start, so the
/// evolved stores must be bit-identical whatever parallelism/batching the
/// cycle itself used.
TEST(MutationModelTest, StoresIdenticalAcrossCycleDeployments) {
  auto run = [](int parallelism, int width) {
    auto store = std::make_unique<rdf::TripleStore>();
    BuildLd(store.get(), 5);
    SimClock clock;
    MutationModel mutation;
    mutation.daily_churn_fraction = 0.05;
    mutation.seed = 9;
    SimulatedRemoteEndpoint ep("http://d/sparql", "d", store.get(), &clock,
                               endpoint::Dialect::Full(), {}, {}, mutation);
    store::Database db;
    ServerOptions options;
    options.refresh_age_days = 1;
    options.parallelism = parallelism;
    options.query_batch_width = width;
    Server server(&db, &clock, options);
    server.AttachEndpoint(ep.url(), &ep);
    endpoint::EndpointRecord record;
    record.url = ep.url();
    server.RegisterEndpoint(record);
    for (int day = 0; day < 4; ++day) {
      server.RunDailyUpdate();
      clock.AdvanceDays(1);
    }
    return DumpStore(*store);
  };
  const std::string sequential = run(1, 1);
  EXPECT_EQ(run(4, 1), sequential);
  EXPECT_EQ(run(4, 4), sequential);
}

// -------------------------------------------------------- change probe

TEST(ProbeTest, ProbeReportsSortedClassFingerprints) {
  rdf::TripleStore store;
  BuildLd(&store, 31);
  SimClock clock;
  SimulatedRemoteEndpoint ep("http://p/sparql", "p", &store, &clock);
  size_t served_before = ep.queries_served();
  auto probe = ep.ProbeChanges();
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_EQ(ep.queries_served(), served_before + 1);  // one batched query
  EXPECT_EQ(probe->store_generation, store.generation());
  ASSERT_FALSE(probe->classes.empty());
  EXPECT_GT(probe->latency_ms, 0.0);
  for (size_t i = 1; i < probe->classes.size(); ++i) {
    EXPECT_LT(probe->classes[i - 1].class_iri, probe->classes[i].class_iri);
  }
  // Untouched store: every version still 0.
  for (const auto& cf : probe->classes) EXPECT_EQ(cf.version, 0u);
}

TEST(ProbeTest, ProbeVersionsMoveOnlyForDirtyClasses) {
  rdf::TripleStore store;
  BuildLd(&store, 31);
  SimClock clock;
  MutationModel mutation;
  mutation.daily_churn_fraction = 0.03;
  mutation.seed = 13;
  SimulatedRemoteEndpoint ep("http://p/sparql", "p", &store, &clock,
                             endpoint::Dialect::Full(), {}, {}, mutation);
  ep.AdvanceDataDay(1);
  auto probe = ep.ProbeChanges();
  ASSERT_TRUE(probe.ok()) << probe.status();
  size_t dirty = 0;
  for (const auto& cf : probe->classes) {
    if (cf.version > 0) ++dirty;
  }
  EXPECT_GT(dirty, 0u);
  EXPECT_LT(dirty, probe->classes.size());
}

TEST(ProbeTest, ProbeRespectsAvailability) {
  rdf::TripleStore store;
  BuildLd(&store, 31);
  SimClock clock;
  endpoint::AvailabilityModel availability;
  availability.forced_outage_days = {0};
  SimulatedRemoteEndpoint ep("http://p/sparql", "p", &store, &clock,
                             endpoint::Dialect::Full(), availability);
  auto probe = ep.ProbeChanges();
  EXPECT_TRUE(probe.status().IsUnavailable());
}

TEST(ProbeTest, PlainLocalEndpointHasNoProbe) {
  rdf::TripleStore store;
  BuildLd(&store, 31);
  endpoint::LocalEndpoint ep("http://l/sparql", "l", &store);
  auto probe = ep.ProbeChanges();
  EXPECT_TRUE(probe.status().IsUnsupported());
}

}  // namespace
}  // namespace hbold
