// Simulation-core tests: EventLoop dispatch order and tie-breaks, the
// history serialization, Process single-activation semantics, seeded
// ArrivalProcess determinism, the SimulationOptions per-layer mapping,
// and the fleet-on-loop contracts — event histories invariant across
// deployment shapes, the overrun-day catch-up cycle, and the SimClock
// compatibility shim producing the same simulation as an explicit loop.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "endpoint/registry.h"
#include "endpoint/simulated_endpoint.h"
#include "hbold/fleet.h"
#include "hbold/sim_options.h"
#include "sim/event_loop.h"
#include "workload/ld_generator.h"

namespace hbold {
namespace {

using endpoint::Dialect;
using endpoint::EndpointRecord;
using endpoint::LatencyModel;
using endpoint::SimulatedRemoteEndpoint;

// ------------------------------------------------------ event-loop units

TEST(EventLoopTest, DispatchesInTimeOrderWithStableTieBreaks) {
  sim::EventLoop loop;
  std::vector<std::string> fired;
  loop.ScheduleAt(10, sim::EventKind::kGeneric, "a",
                  [&] { fired.push_back("a"); });
  loop.ScheduleAt(5, sim::EventKind::kGeneric, "b",
                  [&] { fired.push_back("b"); });
  loop.ScheduleAt(10, sim::EventKind::kGeneric, "c",
                  [&] { fired.push_back("c"); });
  EXPECT_EQ(loop.RunUntilIdle(), 3u);
  // Time order first; the two t=10 events replay in scheduling order.
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], "b");
  EXPECT_EQ(fired[1], "a");
  EXPECT_EQ(fired[2], "c");
  EXPECT_EQ(loop.NowMs(), 10);
  ASSERT_EQ(loop.history().size(), 3u);
  EXPECT_EQ(loop.history()[0].time_ms, 5);
  EXPECT_LT(loop.history()[1].sequence, loop.history()[2].sequence);
}

TEST(EventLoopTest, RunUntilStopsAtHorizonAndAdvancesClock) {
  sim::EventLoop loop;
  int fired = 0;
  loop.ScheduleAfter(100, sim::EventKind::kGeneric, "later", [&] { ++fired; });
  EXPECT_EQ(loop.RunUntil(50), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(loop.NowMs(), 50) << "a bare fast-forward still advances time";
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_EQ(loop.RunUntil(200), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.NowMs(), 200);
}

TEST(EventLoopTest, CancelledEventsNeverDispatchOrEnterHistory) {
  sim::EventLoop loop;
  int fired = 0;
  sim::EventId id =
      loop.ScheduleAt(10, sim::EventKind::kGeneric, "x", [&] { ++fired; });
  EXPECT_TRUE(loop.IsPending(id));
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.IsPending(id));
  EXPECT_FALSE(loop.Cancel(id)) << "double cancel";
  EXPECT_EQ(loop.RunUntilIdle(), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(loop.history().empty());
}

TEST(EventLoopTest, PastTimesClampToNow) {
  sim::EventLoop loop;
  loop.RunUntil(100);
  int64_t seen = -1;
  loop.ScheduleAt(10, sim::EventKind::kGeneric, "late",
                  [&] { seen = loop.NowMs(); });
  loop.RunUntilIdle();
  EXPECT_EQ(seen, 100) << "the past is not schedulable";
}

TEST(EventLoopTest, NotesAnnotateTheCurrentInstant) {
  sim::EventLoop loop;
  loop.ScheduleAt(7, sim::EventKind::kGeneric, "outer", [&] {
    loop.Note(sim::EventKind::kThrottle, "inner");
  });
  loop.RunUntilIdle();
  ASSERT_EQ(loop.history().size(), 2u);
  EXPECT_EQ(loop.history()[1].time_ms, 7);
  EXPECT_EQ(loop.history()[1].label, "inner");
  const std::string dump = loop.HistoryDump();
  EXPECT_NE(dump.find("generic|outer"), std::string::npos);
  EXPECT_NE(dump.find("throttle|inner"), std::string::npos);
}

TEST(EventLoopTest, IdenticallyDrivenLoopsHaveIdenticalHistories) {
  auto drive = [](sim::EventLoop* loop) {
    loop->ScheduleAt(3, sim::EventKind::kCycleStart, "cycle", [loop] {
      loop->Note(sim::EventKind::kPipelineComplete, "e0");
    });
    loop->ScheduleAt(3, sim::EventKind::kGeneric, "tied", nullptr);
    loop->RunUntilIdle();
  };
  sim::EventLoop a, b;
  drive(&a);
  drive(&b);
  EXPECT_EQ(a.HistoryDump(), b.HistoryDump());
  EXPECT_EQ(a.HistoryFingerprint(), b.HistoryFingerprint());
  EXPECT_EQ(a.HistoryFingerprint().size(), 16u);
}

TEST(ProcessTest, ReactivationReplacesThePendingActivation) {
  sim::EventLoop loop;
  std::vector<int64_t> fired_at;
  sim::Process p(&loop, sim::EventKind::kCycleStart, "proc");
  p.ActivateAt(10, [&] { fired_at.push_back(loop.NowMs()); });
  p.ActivateAt(20, [&] { fired_at.push_back(loop.NowMs()); });
  EXPECT_TRUE(p.active());
  loop.RunUntilIdle();
  // Only the second activation fired: a process owns one pending event.
  ASSERT_EQ(fired_at.size(), 1u);
  EXPECT_EQ(fired_at[0], 20);
  EXPECT_FALSE(p.active());
}

TEST(ProcessTest, DestructionCancelsThePendingActivation) {
  sim::EventLoop loop;
  int fired = 0;
  {
    sim::Process p(&loop, sim::EventKind::kGeneric, "doomed");
    p.ActivateAt(5, [&] { ++fired; });
  }
  EXPECT_EQ(loop.RunUntilIdle(), 0u);
  EXPECT_EQ(fired, 0) << "an activity must not fire into a destroyed owner";
}

TEST(ArrivalProcessTest, IndexAddressedAndSeedDeterministic) {
  sim::ArrivalProcess a(42, 1000.0);
  sim::ArrivalProcess same(42, 1000.0);
  sim::ArrivalProcess other(43, 1000.0);
  bool any_diff = false;
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_GE(a.GapMs(i), 1) << "gaps are at least 1ms";
    EXPECT_EQ(a.GapMs(i), same.GapMs(i)) << "same seed, same draw " << i;
    any_diff = any_diff || a.GapMs(i) != other.GapMs(i);
  }
  EXPECT_TRUE(any_diff) << "different seeds should differ somewhere";

  // ArrivalsIn is the cumulative sum of the indexed gaps.
  std::vector<int64_t> times = a.ArrivalsIn(100, 10000);
  ASSERT_FALSE(times.empty());
  int64_t expect = 100;
  for (size_t i = 0; i < times.size(); ++i) {
    expect += a.GapMs(i);
    EXPECT_EQ(times[i], expect);
    EXPECT_LT(times[i], 10000);
  }
}

// ------------------------------------------------- options consolidation

TEST(SimulationOptionsTest, SharedKnobsMapToBothLayers) {
  SimulationOptions sim;
  sim.refresh_age_days = 3;
  sim.parallelism = 4;
  sim.query_batch_width = 2;
  sim.num_shards = 2;
  sim.virtual_workers = 8;

  ServerOptions server = sim.ToServerOptions();
  EXPECT_EQ(server.refresh_age_days, 3);
  EXPECT_EQ(server.parallelism, 4);
  EXPECT_EQ(server.query_batch_width, 2);

  FleetOptions fleet = sim.ToFleetOptions();
  EXPECT_EQ(fleet.num_shards, 2);
  EXPECT_EQ(fleet.virtual_workers, 8);
  EXPECT_EQ(fleet.server.parallelism, 4);
  EXPECT_EQ(fleet.server.refresh_age_days, 3);
}

TEST(SimulationOptionsTest, PerLayerOverridesAreExplicit) {
  SimulationOptions sim;
  sim.parallelism = 4;
  sim.server_parallelism = 2;
  sim.server_batch_width = 3;
  FleetOptions fleet = sim.ToFleetOptions();
  EXPECT_EQ(fleet.server.parallelism, 2) << "override wins for the layer";
  EXPECT_EQ(fleet.server.query_batch_width, 3);
}

// ---------------------------------------------------- fleet on the loop

constexpr size_t kEndpoints = 4;

std::string WorldUrl(size_t i) {
  return "http://sim" + std::to_string(i) + ".example.org/sparql";
}

std::vector<std::unique_ptr<rdf::TripleStore>> BuildWorldStores() {
  std::vector<std::unique_ptr<rdf::TripleStore>> stores;
  for (size_t i = 0; i < kEndpoints; ++i) {
    auto store = std::make_unique<rdf::TripleStore>();
    workload::SyntheticLdConfig config;
    config.namespace_iri = WorldUrl(i).substr(0, WorldUrl(i).size() - 6);
    config.num_classes = 3 + i;
    config.max_instances_per_class = 8;
    config.seed = 900 + i;
    workload::GenerateSyntheticLd(config, store.get());
    stores.push_back(std::move(store));
  }
  return stores;
}

/// A compact seeded world bound to an explicit EventLoop (primary API —
/// no SimClock in sight). Endpoints read time through the loop's clock.
class SimWorld {
 public:
  SimWorld(const std::vector<std::unique_ptr<rdf::TripleStore>>& stores,
           const FleetOptions& options, const LatencyModel& latency = {}) {
    fleet_ = std::make_unique<Fleet>(&loop_, options);
    for (size_t i = 0; i < kEndpoints; ++i) {
      endpoints_.push_back(std::make_unique<SimulatedRemoteEndpoint>(
          WorldUrl(i), "Sim " + std::to_string(i), stores[i].get(),
          loop_.clock(), Dialect::Full(), endpoint::AvailabilityModel{},
          latency));
      EndpointRecord record;
      record.url = WorldUrl(i);
      record.name = endpoints_[i]->name();
      fleet_->RegisterEndpoint(record);
      fleet_->AttachEndpoint(WorldUrl(i), endpoints_[i].get());
    }
  }

  sim::EventLoop& loop() { return loop_; }
  Fleet& fleet() { return *fleet_; }

 private:
  sim::EventLoop loop_;
  std::vector<std::unique_ptr<SimulatedRemoteEndpoint>> endpoints_;
  std::unique_ptr<Fleet> fleet_;
};

FleetOptions Deployment(int shards, int parallelism, int width,
                        int virtual_workers = 4) {
  SimulationOptions sim;
  sim.num_shards = shards;
  sim.parallelism = parallelism;
  sim.query_batch_width = width;
  sim.virtual_workers = virtual_workers;
  if (shards == 1 && parallelism == 1) sim.fleet_workers = 1;
  return sim.ToFleetOptions();
}

TEST(SimFleetTest, EventHistoryInvariantAcrossDeployments) {
  auto stores = BuildWorldStores();
  constexpr int64_t kDays = 3;

  SimWorld baseline(stores, Deployment(1, 1, 1));
  FleetReport base_report = baseline.fleet().RunSimulation(kDays);
  const std::string base_history = baseline.loop().HistoryDump();
  ASSERT_EQ(base_report.days.size(), static_cast<size_t>(kDays));
  // The history must actually contain the full event taxonomy chain.
  for (const char* needle :
       {"day-boundary", "churn", "cycle-start", "pipeline-complete",
        "cycle-complete"}) {
    EXPECT_NE(base_history.find(needle), std::string::npos) << needle;
  }

  struct Shape {
    int shards, parallelism, width;
  };
  for (const Shape& s : {Shape{2, 1, 1}, Shape{2, 4, 2}, Shape{4, 4, 4}}) {
    SCOPED_TRACE("shards=" + std::to_string(s.shards) +
                 " parallelism=" + std::to_string(s.parallelism) +
                 " width=" + std::to_string(s.width));
    SimWorld world(stores, Deployment(s.shards, s.parallelism, s.width));
    FleetReport report = world.fleet().RunSimulation(kDays);
    EXPECT_EQ(report.CanonicalDump(), base_report.CanonicalDump());
    EXPECT_EQ(world.loop().HistoryDump(), base_history)
        << "event histories are part of the determinism contract";
  }
}

TEST(SimFleetTest, OverrunDayRunsCatchUpCycleDeploymentInvariantly) {
  auto stores = BuildWorldStores();
  // Price every query so high that one cycle's canonical makespan on one
  // virtual worker dwarfs a simulated day.
  LatencyModel slow;
  slow.base_ms = 2e6;
  constexpr int64_t kDays = 3;

  SimWorld baseline(stores, Deployment(1, 1, 1, /*virtual_workers=*/1), slow);
  FleetReport base_report = baseline.fleet().RunSimulation(kDays);
  const std::string base_history = baseline.loop().HistoryDump();
  ASSERT_EQ(base_report.days.size(), static_cast<size_t>(kDays));
  EXPECT_TRUE(base_report.days[0].overran_day);
  EXPECT_GT(base_report.days[0].sim_makespan_ms,
            static_cast<double>(SimClock::kMillisPerDay));
  // Catch-up semantics: the next cycle started immediately after the
  // overrun, so its day index is past day 0 and strictly increasing.
  EXPECT_GT(base_report.days[1].day, 0);
  EXPECT_GT(base_report.days[2].day, base_report.days[1].day);

  // Overrun scheduling is priced on the canonical ledger, so the whole
  // catch-up history is byte-identical across deployment shapes.
  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    SimWorld world(stores, Deployment(shards, 4, 2, /*virtual_workers=*/1),
                   slow);
    FleetReport report = world.fleet().RunSimulation(kDays);
    EXPECT_EQ(report.CanonicalDump(), base_report.CanonicalDump());
    EXPECT_EQ(world.loop().HistoryDump(), base_history);
  }
}

TEST(SimFleetTest, CompatClockCtorMatchesExplicitLoop) {
  auto stores = BuildWorldStores();

  // Legacy construction: the caller owns a SimClock and never names the
  // loop. The fleet wraps it in an owned EventLoop.
  SimClock clock;
  std::vector<std::unique_ptr<SimulatedRemoteEndpoint>> endpoints;
  Fleet compat(&clock, Deployment(2, 2, 2));
  for (size_t i = 0; i < kEndpoints; ++i) {
    endpoints.push_back(std::make_unique<SimulatedRemoteEndpoint>(
        WorldUrl(i), "Sim " + std::to_string(i), stores[i].get(), &clock));
    EndpointRecord record;
    record.url = WorldUrl(i);
    record.name = endpoints[i]->name();
    compat.RegisterEndpoint(record);
    compat.AttachEndpoint(WorldUrl(i), endpoints[i].get());
  }
  FleetReport compat_report = compat.RunSimulation(2);

  SimWorld explicit_world(stores, Deployment(2, 2, 2));
  FleetReport explicit_report = explicit_world.fleet().RunSimulation(2);

  EXPECT_EQ(compat_report.CanonicalDump(), explicit_report.CanonicalDump());
  EXPECT_EQ(compat_report.Fingerprint(), explicit_report.Fingerprint());
  EXPECT_EQ(compat.loop().HistoryDump(),
            explicit_world.loop().HistoryDump());
  // The compat fleet drove the caller's clock, ending on a day boundary
  // (the documented post-RunSimulation clock contract).
  EXPECT_EQ(clock.NowMs(), 2 * SimClock::kMillisPerDay);
}

}  // namespace
}  // namespace hbold
