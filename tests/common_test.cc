// Unit tests for src/common: Status/Result, string utilities, JSON, RNG,
// clocks, logging.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace hbold {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Timeout("x"), Status::Timeout("x"));
  EXPECT_FALSE(Status::Timeout("x") == Status::Timeout("y"));
  EXPECT_FALSE(Status::Timeout("x") == Status::Unavailable("x"));
}

TEST(StatusTest, PredicateHelpers) {
  EXPECT_TRUE(Status::Unavailable("").IsUnavailable());
  EXPECT_TRUE(Status::Timeout("").IsTimeout());
  EXPECT_TRUE(Status::Unsupported("").IsUnsupported());
  EXPECT_TRUE(Status::ParseError("").IsParseError());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::IOError("disk"); };
  auto outer = [&]() -> Status {
    HBOLD_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIOError);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError,
        StatusCode::kIOError, StatusCode::kUnavailable, StatusCode::kTimeout,
        StatusCode::kUnsupported, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto get = [](bool good) -> Result<std::string> {
    if (good) return std::string("yes");
    return Status::Internal("boom");
  };
  auto use = [&](bool good) -> Result<size_t> {
    HBOLD_ASSIGN_OR_RETURN(std::string s, get(good));
    return s.size();
  };
  ASSERT_TRUE(use(true).ok());
  EXPECT_EQ(*use(true), 3u);
  EXPECT_FALSE(use(false).ok());
}

TEST(ResultTest, MoveOnlyType) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------- Strings

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http"));
  EXPECT_FALSE(StartsWith("ttp", "http"));
  EXPECT_TRUE(EndsWith("file.jsonl", ".jsonl"));
  EXPECT_FALSE(EndsWith("l", ".jsonl"));
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SpArQl"), "sparql");
  EXPECT_TRUE(ContainsIgnoreCase("http://x/SPARQL", "sparql"));
  EXPECT_FALSE(ContainsIgnoreCase("http://x/rest", "sparql"));
}

TEST(StringUtilTest, IriLocalName) {
  EXPECT_EQ(IriLocalName("http://x.org/onto#Person"), "Person");
  EXPECT_EQ(IriLocalName("http://x.org/Person"), "Person");
  EXPECT_EQ(IriLocalName("http://x.org/Person/"), "Person");
  EXPECT_EQ(IriLocalName("Person"), "Person");
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");
}

TEST(StringUtilTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("<a & \"b\">"), "&lt;a &amp; &quot;b&quot;&gt;");
}

// ---------------------------------------------------------------- JSON

TEST(JsonTest, ScalarsRoundTrip) {
  for (const std::string text :
       {"null", "true", "false", "42", "-3.5", "\"hi\""}) {
    auto parsed = Json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->Dump(), text);
  }
}

TEST(JsonTest, ObjectRoundTrip) {
  std::string text = R"({"a":[1,2,{"b":"c"}],"d":null})";
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Dump(), text);
}

TEST(JsonTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
}

TEST(JsonTest, StringEscapes) {
  auto parsed = Json::Parse(R"("line\nquote\"tab\t\\")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), "line\nquote\"tab\t\\");
}

TEST(JsonTest, UnicodeEscapes) {
  auto parsed = Json::Parse(R"("é€")");  // é €
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), "\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonTest, SurrogatePair) {
  auto parsed = Json::Parse(R"("😀")");  // 😀 U+1F600
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonTest, FieldAccessors) {
  auto doc = Json::Parse(R"({"s":"x","n":5,"b":true,"o":{"inner":1}})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("s"), "x");
  EXPECT_EQ(doc->GetInt("n"), 5);
  EXPECT_TRUE(doc->GetBool("b"));
  EXPECT_EQ(doc->GetString("missing", "dflt"), "dflt");
  ASSERT_NE(doc->Find("o"), nullptr);
  EXPECT_EQ(doc->Find("o")->GetInt("inner"), 1);
  EXPECT_EQ(doc->Find("nope"), nullptr);
}

TEST(JsonTest, SetAndAppend) {
  Json obj = Json::MakeObject();
  obj.Set("k", Json(1));
  obj.Set("k", Json(2));  // overwrite
  EXPECT_EQ(obj.GetInt("k"), 2);
  Json arr = Json::MakeArray();
  arr.Append(Json("a")).Append(Json("b"));
  EXPECT_EQ(arr.as_array().size(), 2u);
}

TEST(JsonTest, Equality) {
  auto a = Json::Parse(R"({"x":[1,2]})");
  auto b = Json::Parse(R"({ "x" : [ 1 , 2 ] })");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
  auto c = Json::Parse(R"({"x":[1,3]})");
  EXPECT_TRUE(*a != *c);
}

TEST(JsonTest, PrettyPrintParsesBack) {
  auto doc = Json::Parse(R"({"a":{"b":[1,2,3]},"c":"s"})");
  ASSERT_TRUE(doc.ok());
  std::string pretty = doc->Dump(2);
  auto reparsed = Json::Parse(pretty);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(*doc == *reparsed);
}

TEST(JsonTest, LargeIntegersPreserved) {
  auto doc = Json::Parse("123456789012");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->as_int(), 123456789012LL);
  EXPECT_EQ(doc->Dump(), "123456789012");
}

// ---------------------------------------------------------------- RNG

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(11);
  size_t low = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Zipf(100, 1.2) < 5) ++low;
  }
  // With s=1.2 the first five ranks should dominate clearly.
  EXPECT_GT(low, static_cast<size_t>(kTrials) / 3);
}

TEST(RngTest, ZipfCoversRange) {
  Rng rng(13);
  std::set<size_t> seen;
  for (int i = 0; i < 20000; ++i) seen.insert(rng.Zipf(10, 0.5));
  EXPECT_EQ(seen.size(), 10u);
  for (size_t v : seen) EXPECT_LT(v, 10u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

// ---------------------------------------------------------------- Clock

TEST(SimClockTest, AdvancesByDaysAndMillis) {
  SimClock clock;
  EXPECT_EQ(clock.NowMs(), 0);
  EXPECT_EQ(clock.NowDay(), 0);
  clock.AdvanceDays(3);
  EXPECT_EQ(clock.NowDay(), 3);
  clock.AdvanceMs(SimClock::kMillisPerHour * 25);
  EXPECT_EQ(clock.NowDay(), 4);
}

TEST(SimClockTest, ToStringFormat) {
  SimClock clock(SimClock::kMillisPerDay * 2 + SimClock::kMillisPerHour * 3 +
                 SimClock::kMillisPerMinute * 4 + 5 * 1000 + 6);
  EXPECT_EQ(clock.ToString(), "day 2 03:04:05.006");
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 1000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(sw.ElapsedNanos(), 0);
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
  int64_t before = sw.ElapsedNanos();
  sw.Reset();
  EXPECT_LE(sw.ElapsedNanos(), before + 1000000000LL);
}

// ---------------------------------------------------------------- Logging

TEST(LoggingTest, ThresholdFilters) {
  LogLevel prev = Logger::threshold();
  Logger::set_threshold(LogLevel::kError);
  EXPECT_EQ(Logger::threshold(), LogLevel::kError);
  // Smoke: must not crash under/over threshold.
  HBOLD_LOG(kDebug) << "suppressed";
  HBOLD_LOG(kError) << "emitted";
  Logger::set_threshold(prev);
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, SubmitReturnsFutureResult) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  auto f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ZeroWorkersClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, RunsAllTasksAcrossWorkers) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  ThreadPool::ParallelFor(&pool, hits.size(),
                          [&](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForNullPoolRunsInline) {
  std::vector<size_t> order;
  ThreadPool::ParallelFor(nullptr, 5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(ThreadPool::ParallelFor(&pool, 16,
                                       [&](size_t i) {
                                         ++ran;
                                         if (i % 3 == 0) {
                                           throw std::runtime_error("boom");
                                         }
                                       }),
               std::runtime_error);
  // Every iteration still ran — an exception does not abandon the rest.
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, NestedParallelForOnSharedPoolDoesNotDeadlock) {
  // The fleet pattern: outer loop = shard cycles, inner loop = endpoint
  // pipelines, both on ONE pool that is smaller than the outer fan-out.
  // The caller-participates claim loop must drive this to completion even
  // though every pool worker can be blocked inside an outer iteration.
  ThreadPool pool(2);
  constexpr size_t kOuter = 4;
  constexpr size_t kInner = 8;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  ThreadPool::ParallelFor(&pool, kOuter, [&](size_t o) {
    ThreadPool::ParallelFor(&pool, kInner,
                            [&](size_t i) { ++hits[o * kInner + i]; });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }  // destructor must run all 50 before joining
  EXPECT_EQ(count.load(), 50);
}

// ------------------------------------------------------ WorkerLatencyLedger

TEST(WorkerLatencyLedgerTest, SingleWorkerMakespanIsSum) {
  WorkerLatencyLedger ledger(1);
  ledger.Assign(10);
  ledger.Assign(20);
  ledger.Assign(30);
  EXPECT_DOUBLE_EQ(ledger.TotalMs(), 60);
  EXPECT_DOUBLE_EQ(ledger.MakespanMs(), 60);
}

TEST(WorkerLatencyLedgerTest, ListSchedulingPicksLeastLoaded) {
  WorkerLatencyLedger ledger(2);
  EXPECT_EQ(ledger.Assign(10), 0u);  // both idle -> lowest id
  EXPECT_EQ(ledger.Assign(4), 1u);   // worker 1 idle
  EXPECT_EQ(ledger.Assign(5), 1u);   // 4 < 10
  EXPECT_EQ(ledger.Assign(1), 1u);   // 9 < 10
  EXPECT_EQ(ledger.Assign(1), 0u);   // 10 == 10 -> lowest id
  EXPECT_DOUBLE_EQ(ledger.TotalMs(), 21);
  EXPECT_DOUBLE_EQ(ledger.MakespanMs(), 11);
}

TEST(WorkerLatencyLedgerTest, DeterministicAcrossReplays) {
  auto replay = [] {
    WorkerLatencyLedger ledger(4);
    for (int i = 0; i < 100; ++i) ledger.Assign((i * 37) % 11 + 1);
    return ledger.MakespanMs();
  };
  EXPECT_DOUBLE_EQ(replay(), replay());
}

// ------------------------------------------------------- LitePatternMatch

TEST(LitePatternMatchTest, UnanchoredSubstring) {
  EXPECT_TRUE(LitePatternMatch("http://x.org/sparql", "sparql"));
  EXPECT_FALSE(LitePatternMatch("http://x.org/download", "sparql"));
  EXPECT_TRUE(LitePatternMatch("abc", ""));
}

TEST(LitePatternMatchTest, Anchors) {
  EXPECT_TRUE(LitePatternMatch("alice", "^ali"));
  EXPECT_FALSE(LitePatternMatch("malice", "^ali"));
  EXPECT_TRUE(LitePatternMatch("query.rq", "rq$"));
  EXPECT_FALSE(LitePatternMatch("rq.query", "rq$"));
  EXPECT_TRUE(LitePatternMatch("exact", "^exact$"));
  EXPECT_FALSE(LitePatternMatch("inexact", "^exact$"));
}

TEST(LitePatternMatchTest, DotAndStar) {
  EXPECT_TRUE(LitePatternMatch("cat", "c.t"));
  EXPECT_FALSE(LitePatternMatch("ct", "c.t"));
  EXPECT_TRUE(LitePatternMatch("coooool", "co*l"));
  EXPECT_TRUE(LitePatternMatch("cl", "co*l"));
  EXPECT_TRUE(LitePatternMatch("http://a/b", "^http.*b$"));
  EXPECT_FALSE(LitePatternMatch("https://a/c", "^http.*b$"));
}

TEST(LitePatternMatchTest, EscapesMetacharacters) {
  EXPECT_TRUE(LitePatternMatch("x.org", "x\\.org"));
  EXPECT_FALSE(LitePatternMatch("xyorg", "x\\.org"));
  EXPECT_TRUE(LitePatternMatch("a*b", "a\\*b"));
  EXPECT_TRUE(LitePatternMatch("cost$", "cost\\$"));
}

TEST(LitePatternMatchTest, CaseInsensitiveFlag) {
  EXPECT_TRUE(LitePatternMatch("SPARQL endpoint", "sparql", true));
  EXPECT_FALSE(LitePatternMatch("SPARQL endpoint", "sparql", false));
  EXPECT_TRUE(LitePatternMatch("Alice", "^ali", true));
}

TEST(LitePatternMatchTest, PlusAndQuestionQuantifiers) {
  EXPECT_TRUE(LitePatternMatch("cool", "co+l"));
  EXPECT_FALSE(LitePatternMatch("cl", "co+l"));
  EXPECT_TRUE(LitePatternMatch("color", "colou?r"));
  EXPECT_TRUE(LitePatternMatch("colour", "colou?r"));
  EXPECT_FALSE(LitePatternMatch("colouur", "^colou?r$"));
}

TEST(LitePatternMatchTest, Alternation) {
  EXPECT_TRUE(LitePatternMatch("http://a/sparql", "sparql|query"));
  EXPECT_TRUE(LitePatternMatch("http://a/query", "sparql|query"));
  EXPECT_FALSE(LitePatternMatch("http://a/download", "sparql|query"));
  // Anchors bind per alternative, as in (^ab)|(cd$).
  EXPECT_TRUE(LitePatternMatch("abx", "^ab|cd$"));
  EXPECT_TRUE(LitePatternMatch("xcd", "^ab|cd$"));
  EXPECT_FALSE(LitePatternMatch("xabcdx", "^ab|cd$"));
  EXPECT_TRUE(LitePatternMatch("a|b", "a\\|b"));  // escaped: literal pipe
}

TEST(LitePatternMatchTest, CharacterClasses) {
  EXPECT_TRUE(LitePatternMatch("cat", "c[au]t"));
  EXPECT_TRUE(LitePatternMatch("cut", "c[au]t"));
  EXPECT_FALSE(LitePatternMatch("cot", "c[au]t"));
  EXPECT_TRUE(LitePatternMatch("x7y", "x[0-9]y"));
  EXPECT_FALSE(LitePatternMatch("xay", "x[0-9]y"));
  EXPECT_TRUE(LitePatternMatch("xay", "x[^0-9]y"));
  EXPECT_TRUE(LitePatternMatch("id42", "^id[0-9]+$"));
  EXPECT_FALSE(LitePatternMatch("id", "^id[0-9]+$"));
  EXPECT_TRUE(LitePatternMatch("Cat", "c[a-z]t", /*ignore_case=*/true));
}

TEST(LitePatternSupportedTest, DetectsUnsupportedSyntax) {
  EXPECT_TRUE(LitePatternSupported("sparql"));
  EXPECT_TRUE(LitePatternSupported("^a[0-9]+|b.*c$"));
  EXPECT_TRUE(LitePatternSupported("a\\(b\\)"));  // escaped parens are fine
  EXPECT_TRUE(LitePatternSupported("cost\\$"));   // escaped anchor is fine
  EXPECT_FALSE(LitePatternSupported("(ab)+"));
  EXPECT_FALSE(LitePatternSupported("a{2,3}"));
  EXPECT_FALSE(LitePatternSupported("[abc"));  // unclosed class
  EXPECT_FALSE(LitePatternSupported("oops\\"));  // trailing backslash
  // Shorthand classes / backreferences would match literally — reject.
  EXPECT_FALSE(LitePatternSupported("\\d+"));
  EXPECT_FALSE(LitePatternSupported("\\w*x"));
  EXPECT_FALSE(LitePatternSupported("a\\1"));
  // Quantifier with nothing to repeat (ECMAScript errors).
  EXPECT_FALSE(LitePatternSupported("+39"));
  EXPECT_FALSE(LitePatternSupported("a**"));
  EXPECT_FALSE(LitePatternSupported("ab|*c"));
  EXPECT_FALSE(LitePatternSupported("^*a"));
  // Mid-pattern anchors are ECMAScript assertions, not literals.
  EXPECT_FALSE(LitePatternSupported("a^b"));
  EXPECT_FALSE(LitePatternSupported("a$b"));
  EXPECT_TRUE(LitePatternSupported("^ab|cd$"));  // per-alternative anchors
}

}  // namespace
}  // namespace hbold
