// Unit tests for the incremental-extraction support layers: EndpointRecord
// JSON forward compatibility, the HexU64 codec, sampled bulk-load
// predicate statistics, and the adaptive plan-cache capacity policy.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/string_util.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/registry.h"
#include "rdf/graph.h"
#include "sparql/planner.h"

namespace hbold {
namespace {

using endpoint::EndpointRecord;
using rdf::Term;

// ------------------------------------------------- record forward-compat

TEST(EndpointRecordCompatTest, UnknownKeysSurviveRoundTrip) {
  EndpointRecord r;
  r.url = "http://e/sparql";
  r.name = "E";
  r.indexed = true;
  Json j = r.ToJson();
  // A future build added fields this build does not know about.
  j.Set("future_scalar", 42);
  Json nested = Json::MakeObject();
  nested.Set("inner", "kept");
  j.Set("future_object", nested);

  EndpointRecord parsed = EndpointRecord::FromJson(j);
  Json again = parsed.ToJson();
  ASSERT_NE(again.Find("future_scalar"), nullptr);
  EXPECT_EQ(again.Find("future_scalar")->as_int(), 42);
  ASSERT_NE(again.Find("future_object"), nullptr);
  EXPECT_EQ(again.Find("future_object")->GetString("inner"), "kept");
  // Known fields still parsed normally alongside the passthrough.
  EXPECT_EQ(parsed.url, "http://e/sparql");
  EXPECT_TRUE(parsed.indexed);
}

TEST(EndpointRecordCompatTest, UnknownKeysNeverShadowKnownFields) {
  EndpointRecord r;
  r.url = "http://e/sparql";
  Json j = r.ToJson();
  EndpointRecord parsed = EndpointRecord::FromJson(j);
  // "url" is a known key: it must live in the typed field, not in the
  // passthrough map, or a rename in a future build would emit it twice.
  EXPECT_TRUE(parsed.unknown_fields.empty());
}

TEST(EndpointRecordCompatTest, IncrementalFieldsOmittedUntilSet) {
  EndpointRecord r;
  r.url = "http://e/sparql";
  const std::string dump = r.ToJson().Dump();
  // A registry written with incremental extraction off must serialize
  // byte-identically to pre-incremental builds.
  EXPECT_EQ(dump.find("probed_generation"), std::string::npos);
  EXPECT_EQ(dump.find("class_fingerprints"), std::string::npos);

  r.probed_generation = "00000000000000a5";
  r.class_fingerprints["http://x/A"] = "0000000000000003";
  EndpointRecord parsed = EndpointRecord::FromJson(r.ToJson());
  EXPECT_EQ(parsed.probed_generation, r.probed_generation);
  EXPECT_EQ(parsed.class_fingerprints, r.class_fingerprints);
}

// ------------------------------------------------------------ hex codec

TEST(HexU64Test, RoundTripsEdgeValues) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0xdeadbeef},
                     ~uint64_t{0}}) {
    uint64_t parsed = 1;
    ASSERT_TRUE(ParseHexU64(HexU64(v), &parsed)) << HexU64(v);
    EXPECT_EQ(parsed, v);
  }
  EXPECT_EQ(HexU64(0).size(), 16u);  // fixed width: sortable, diffable
}

TEST(HexU64Test, RejectsMalformedInput) {
  uint64_t out = 7;
  EXPECT_FALSE(ParseHexU64("", &out));
  EXPECT_FALSE(ParseHexU64("xyz", &out));
  EXPECT_FALSE(ParseHexU64("123g", &out));
  EXPECT_FALSE(ParseHexU64("0x12", &out));
  EXPECT_FALSE(ParseHexU64("11112222333344445", &out));  // 17 digits
  EXPECT_EQ(out, 7u);  // untouched on failure
}

// ------------------------------------------------- sampled bulk stats

void BulkLoad(rdf::TripleStore* store, size_t n) {
  store->SetStatsSamplingThreshold(64);
  for (size_t i = 0; i < n; ++i) {
    store->Add(Term::Iri("http://s/" + std::to_string(i % 200)),
               Term::Iri("http://p/knows"),
               Term::Iri("http://o/" + std::to_string(i % 97)));
  }
  store->FinalizeIndex();
}

TEST(SampledStatsTest, BulkLoadTakesSampledPathDeterministically) {
  rdf::TripleStore a, b;
  BulkLoad(&a, 2000);
  BulkLoad(&b, 2000);
  rdf::TermId p = a.dict().Lookup(Term::Iri("http://p/knows"));
  ASSERT_NE(p, rdf::kInvalidTermId);
  rdf::PredicateStats stats_a = a.StatsForPredicate(p);
  rdf::PredicateStats stats_b = b.StatsForPredicate(p);

  // The initial load crossed the sampling threshold: estimated stats.
  EXPECT_FALSE(stats_a.exact);
  // Triple counts are index spans, never sampled.
  EXPECT_EQ(stats_a.triples, a.size());
  // Estimates are in a sane band and bit-identical across identical loads
  // (sampling is seeded from store content, not wall clock).
  EXPECT_GT(stats_a.distinct_subjects, 0u);
  EXPECT_LE(stats_a.distinct_subjects, stats_a.triples);
  EXPECT_EQ(stats_a.distinct_subjects, stats_b.distinct_subjects);
  EXPECT_EQ(stats_a.distinct_objects, stats_b.distinct_objects);
}

TEST(SampledStatsTest, SmallLoadStaysExact) {
  rdf::TripleStore store;
  store.SetStatsSamplingThreshold(64);
  for (size_t i = 0; i < 32; ++i) {
    store.Add(Term::Iri("http://s/" + std::to_string(i)),
              Term::Iri("http://p/knows"), Term::Iri("http://o/x"));
  }
  store.FinalizeIndex();
  rdf::TermId p = store.dict().Lookup(Term::Iri("http://p/knows"));
  rdf::PredicateStats stats = store.StatsForPredicate(p);
  EXPECT_TRUE(stats.exact);
  EXPECT_EQ(stats.distinct_subjects, 32u);
  EXPECT_EQ(stats.distinct_objects, 1u);
}

// ------------------------------------------------- adaptive plan cache

TEST(AdaptivePlanCacheTest, CapacityForStoreSizeIsClampedPowerOfTwo) {
  using sparql::PlanCache;
  EXPECT_EQ(PlanCache::CapacityForStoreSize(0), 64u);
  EXPECT_EQ(PlanCache::CapacityForStoreSize(1000), 64u);
  EXPECT_EQ(PlanCache::CapacityForStoreSize(2000), 128u);  // want 125 -> 128
  EXPECT_EQ(PlanCache::CapacityForStoreSize(size_t{1} << 30),
            PlanCache::kMaxAdaptiveCapacity);
}

TEST(AdaptivePlanCacheTest, AdaptiveCacheGrowsInsteadOfEvicting) {
  sparql::PlanCache adaptive(4, /*adaptive=*/true);
  sparql::PlanCache fixed(4, /*adaptive=*/false);
  constexpr int kQueries = 12;
  for (int i = 0; i < kQueries; ++i) {
    std::string text = "SELECT ?s WHERE { ?s <http://p/" +
                       std::to_string(i) + "> ?o }";
    auto prepared = std::make_shared<sparql::PreparedQuery>();
    adaptive.InsertPrepared(text, 1, prepared);
    fixed.InsertPrepared(text, 1, prepared);
  }
  size_t adaptive_hits = 0, fixed_hits = 0;
  for (int i = 0; i < kQueries; ++i) {
    std::string text = "SELECT ?s WHERE { ?s <http://p/" +
                       std::to_string(i) + "> ?o }";
    if (adaptive.LookupPrepared(text, 1) != nullptr) ++adaptive_hits;
    if (fixed.LookupPrepared(text, 1) != nullptr) ++fixed_hits;
  }
  // The adaptive cache grew to hold the whole corpus; the fixed one shed
  // entries to stay at capacity 4.
  EXPECT_EQ(adaptive_hits, static_cast<size_t>(kQueries));
  EXPECT_GE(adaptive.stats().capacity, static_cast<size_t>(kQueries));
  EXPECT_LE(adaptive.stats().capacity, sparql::PlanCache::kMaxAdaptiveCapacity);
  EXPECT_LT(fixed_hits, static_cast<size_t>(kQueries));
  EXPECT_EQ(fixed.stats().capacity, 4u);
}

TEST(AdaptivePlanCacheTest, LocalEndpointSurfacesAdaptedCapacity) {
  rdf::TripleStore store;
  BulkLoad(&store, 2000);
  endpoint::LocalEndpoint ep("http://l/sparql", "l", &store);
  endpoint::QueryEngineStats stats = ep.engine_stats();
  // 2000 triples -> capacity 128 (the CapacityForStoreSize policy above),
  // surfaced so fleet dashboards can sum the cache budget.
  EXPECT_EQ(stats.plan_cache_capacity, 128u);
}

}  // namespace
}  // namespace hbold
