// Unit tests for src/endpoint: local endpoint, simulated remote endpoint
// (availability / dialect / latency / truncation), and the registry.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "endpoint/local_endpoint.h"
#include "endpoint/registry.h"
#include "endpoint/simulated_endpoint.h"
#include "rdf/turtle.h"

namespace hbold::endpoint {
namespace {

class EndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto n = rdf::ParseTurtle(R"(
@prefix ex: <http://x/> .
ex:a a ex:C ; ex:p ex:b ; ex:q "1" .
ex:b a ex:C ; ex:q "2" .
ex:c a ex:D ; ex:p ex:a .
)",
                              &store_);
    ASSERT_TRUE(n.ok()) << n.status();
  }
  rdf::TripleStore store_;
  SimClock clock_;
};

// ---------------------------------------------------------------- Local

TEST_F(EndpointTest, LocalEndpointAnswersQueries) {
  LocalEndpoint ep("http://local/sparql", "local", &store_);
  auto r = ep.Query("SELECT ?s WHERE { ?s a <http://x/C> . }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->table.num_rows(), 2u);
  EXPECT_FALSE(r->truncated);
  EXPECT_GE(r->latency_ms, 0);
  EXPECT_EQ(ep.queries_served(), 1u);
  EXPECT_EQ(ep.url(), "http://local/sparql");
}

TEST_F(EndpointTest, LocalEndpointPropagatesParseErrors) {
  LocalEndpoint ep("u", "n", &store_);
  auto r = ep.Query("SELECT garbage");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

// ---------------------------------------------------------------- Dialect

TEST_F(EndpointTest, FullDialectAllowsAggregates) {
  SimulatedRemoteEndpoint ep("http://r/sparql", "r", &store_, &clock_);
  auto r = ep.Query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->table.ScalarInt("n"), static_cast<int64_t>(store_.size()));
}

TEST_F(EndpointTest, NoAggregatesDialectRejectsCount) {
  SimulatedRemoteEndpoint ep("u", "n", &store_, &clock_,
                             Dialect::NoAggregates());
  auto r = ep.Query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnsupported());
  // Plain selects still work.
  EXPECT_TRUE(ep.Query("SELECT ?s WHERE { ?s ?p ?o . }").ok());
}

TEST_F(EndpointTest, NoGroupByDialectRejectsGrouping) {
  SimulatedRemoteEndpoint ep("u", "n", &store_, &clock_, Dialect::NoGroupBy());
  auto grouped = ep.Query(
      "SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c . } GROUP BY ?c");
  ASSERT_FALSE(grouped.ok());
  EXPECT_TRUE(grouped.status().IsUnsupported());
  // Ungrouped COUNT is allowed by this dialect.
  EXPECT_TRUE(ep.Query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }").ok());
}

TEST_F(EndpointTest, RowCapTruncatesAndFlags) {
  SimulatedRemoteEndpoint ep("u", "n", &store_, &clock_, Dialect::RowCapped(2));
  auto r = ep.Query("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->table.num_rows(), 2u);
  EXPECT_TRUE(r->truncated);
}

TEST_F(EndpointTest, RowCapNotFlaggedWhenUnderCap) {
  SimulatedRemoteEndpoint ep("u", "n", &store_, &clock_,
                             Dialect::RowCapped(100));
  auto r = ep.Query("SELECT ?s WHERE { ?s a <http://x/C> . }");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->truncated);
}

TEST_F(EndpointTest, WorkBudgetTimesOut) {
  Dialect d;
  d.work_budget_bindings = 1;  // any real query exceeds this
  SimulatedRemoteEndpoint ep("u", "n", &store_, &clock_, d);
  auto r = ep.Query("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout());
}

// ---------------------------------------------------------------- Availability

TEST_F(EndpointTest, ForcedOutageDaysAreDown) {
  AvailabilityModel avail;
  avail.forced_outage_days = {1, 3};
  SimulatedRemoteEndpoint ep("u", "n", &store_, &clock_, Dialect::Full(),
                             avail);
  EXPECT_TRUE(ep.IsUpOn(0));
  EXPECT_FALSE(ep.IsUpOn(1));
  EXPECT_TRUE(ep.IsUpOn(2));
  EXPECT_FALSE(ep.IsUpOn(3));

  clock_.AdvanceDays(1);  // day 1
  auto r = ep.Query("SELECT ?s WHERE { ?s ?p ?o . }");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  clock_.AdvanceDays(1);  // day 2
  EXPECT_TRUE(ep.Query("SELECT ?s WHERE { ?s ?p ?o . }").ok());
}

TEST_F(EndpointTest, UptimeProbabilityIsDeterministicPerDay) {
  AvailabilityModel avail;
  avail.uptime = 0.5;
  avail.seed = 99;
  // Same (seed, day) must agree across calls and instances.
  AvailabilityModel avail2 = avail;
  size_t up_days = 0;
  for (int64_t day = 0; day < 200; ++day) {
    EXPECT_EQ(avail.IsUp(day), avail2.IsUp(day));
    if (avail.IsUp(day)) ++up_days;
  }
  // Roughly half the days up.
  EXPECT_GT(up_days, 70u);
  EXPECT_LT(up_days, 130u);
}

TEST_F(EndpointTest, UptimeExtremes) {
  AvailabilityModel always;
  always.uptime = 1.0;
  AvailabilityModel never;
  never.uptime = 0.0;
  for (int64_t day = 0; day < 10; ++day) {
    EXPECT_TRUE(always.IsUp(day));
    EXPECT_FALSE(never.IsUp(day));
  }
}

// ---------------------------------------------------------------- Latency

TEST_F(EndpointTest, LatencyModelScalesWithWork) {
  LatencyModel lat;
  lat.base_ms = 10;
  lat.per_binding_us = 1000;  // 1 ms per binding to make the effect visible
  SimulatedRemoteEndpoint ep("u", "n", &store_, &clock_, Dialect::Full(), {},
                             lat);
  auto small = ep.Query("SELECT ?s WHERE { ?s a <http://x/D> . }");
  auto large = ep.Query("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }");
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GE(small->latency_ms, 10);
  EXPECT_GT(large->latency_ms, small->latency_ms);
}

TEST(LatencyModelTest, CostFormula) {
  LatencyModel lat;
  lat.base_ms = 5;
  lat.per_binding_us = 2;
  lat.per_row_us = 4;
  EXPECT_DOUBLE_EQ(lat.Cost(1000, 500), 5 + 2.0 + 2.0);
}

// ---------------------------------------------------------------- Probe

TEST_F(EndpointTest, ProbeReportsLiveEndpoint) {
  SimulatedRemoteEndpoint ep("u", "n", &store_, &clock_);
  auto alive = Probe(&ep);
  ASSERT_TRUE(alive.ok()) << alive.status();
  EXPECT_TRUE(*alive);
}

TEST_F(EndpointTest, ProbeDistinguishesEmptyFromDown) {
  rdf::TripleStore empty;
  SimulatedRemoteEndpoint hollow("u", "n", &empty, &clock_);
  auto answered = Probe(&hollow);
  ASSERT_TRUE(answered.ok());
  EXPECT_FALSE(*answered);  // answered, but holds no triples

  AvailabilityModel avail;
  avail.forced_outage_days = {0};
  SimulatedRemoteEndpoint down("u", "n", &store_, &clock_, Dialect::Full(),
                               avail);
  auto failed = Probe(&down);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsUnavailable());
}

// ---------------------------------------------------------------- Registry

TEST(RegistryTest, AddDedupsByUrl) {
  EndpointRegistry reg;
  EndpointRecord r;
  r.url = "http://a/sparql";
  r.name = "A";
  EXPECT_TRUE(reg.Add(r));
  EXPECT_FALSE(reg.Add(r));  // duplicate
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.Contains("http://a/sparql"));
  EXPECT_FALSE(reg.Contains("http://b/sparql"));
}

TEST(RegistryTest, FindAndMutate) {
  EndpointRegistry reg;
  EndpointRecord r;
  r.url = "http://a";
  reg.Add(r);
  EXPECT_TRUE(reg.UpdateRecord("http://a", [](EndpointRecord& r) {
    r.indexed = true;
    r.last_success_day = 4;
  }));
  EXPECT_FALSE(reg.UpdateRecord("http://missing", [](EndpointRecord&) {}));
  const EndpointRecord* found = reg.Find("http://a");
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->indexed);
  EXPECT_EQ(reg.IndexedCount(), 1u);
  EXPECT_EQ(reg.Find("http://zzz"), nullptr);
}

TEST(RegistryTest, AllPreservesInsertionOrder) {
  EndpointRegistry reg;
  for (const char* url : {"http://c", "http://a", "http://b"}) {
    EndpointRecord r;
    r.url = url;
    reg.Add(r);
  }
  auto all = reg.All();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->url, "http://c");
  EXPECT_EQ(all[2]->url, "http://b");
}

TEST(RegistryTest, JsonRoundTrip) {
  EndpointRegistry reg;
  EndpointRecord r;
  r.url = "http://a";
  r.name = "A";
  r.source = EndpointSource::kPortalCrawl;
  r.added_day = 10;
  r.last_attempt_day = 12;
  r.last_success_day = 11;
  r.last_attempt_failed = true;
  r.indexed = true;
  reg.Add(r);

  EndpointRegistry loaded;
  ASSERT_TRUE(loaded.LoadJson(reg.ToJson()).ok());
  const EndpointRecord* got = loaded.Find("http://a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->name, "A");
  EXPECT_EQ(got->source, EndpointSource::kPortalCrawl);
  EXPECT_EQ(got->added_day, 10);
  EXPECT_EQ(got->last_attempt_day, 12);
  EXPECT_EQ(got->last_success_day, 11);
  EXPECT_TRUE(got->last_attempt_failed);
  EXPECT_TRUE(got->indexed);
}

TEST(RegistryTest, LoadRejectsBadJson) {
  EndpointRegistry reg;
  EXPECT_FALSE(reg.LoadJson(Json(5)).ok());
  Json arr = Json::MakeArray();
  arr.Append(Json::MakeObject());  // record without url
  EXPECT_FALSE(reg.LoadJson(arr).ok());
}

TEST(RegistryTest, SourceNames) {
  EXPECT_STREQ(EndpointSourceName(EndpointSource::kSeedList), "seed");
  EXPECT_STREQ(EndpointSourceName(EndpointSource::kPortalCrawl), "portal");
  EXPECT_STREQ(EndpointSourceName(EndpointSource::kManualInsert), "manual");
}

// ------------------------------------------------------------- Concurrency
//
// The truly concurrent local read path: no big lock around Query(), eager
// index finalization, atomic counters. These run under TSan in CI.

rdf::TripleStore MakeConcurrencyStore() {
  rdf::TripleStore store;
  for (int i = 0; i < 120; ++i) {
    std::string s = "http://c/s" + std::to_string(i);
    store.Add(rdf::Term::Iri(s), rdf::Term::Iri("http://c/type"),
              rdf::Term::Iri("http://c/C" + std::to_string(i % 4)));
    store.Add(rdf::Term::Iri(s), rdf::Term::Iri("http://c/p"),
              rdf::Term::Iri("http://c/s" + std::to_string((i + 1) % 120)));
  }
  return store;
}

TEST(ConcurrencyTest, ParallelLocalEndpointQueries) {
  rdf::TripleStore store = MakeConcurrencyStore();
  LocalEndpoint ep("http://local/sparql", "local", &store);
  const std::vector<std::string> queries = {
      "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }",
      "SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s <http://c/type> ?c . } "
      "GROUP BY ?c",
      "SELECT ?s ?o WHERE { ?s <http://c/p> ?o . } LIMIT 10",
  };
  // Sequential baselines for every query.
  std::vector<std::string> baselines;
  for (const std::string& q : queries) {
    auto r = ep.Query(q);
    ASSERT_TRUE(r.ok()) << r.status();
    baselines.push_back(r->table.ToCsv());
  }

  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        size_t qi = static_cast<size_t>(t + i) % queries.size();
        sparql::ExecStats stats;
        auto r = ep.QueryWithStats(queries[qi], &stats);
        if (!r.ok() || r->table.ToCsv() != baselines[qi]) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(ep.queries_served(),
            static_cast<size_t>(kThreads * kPerThread) + queries.size());
}

TEST(ConcurrencyTest, ParallelSimulatedEndpointQueriesDeterministicCost) {
  rdf::TripleStore store = MakeConcurrencyStore();
  SimClock clock;
  SimulatedRemoteEndpoint ep("http://sim/sparql", "sim", &store, &clock);
  const std::string q =
      "SELECT ?c (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s <http://c/type> ?c . }"
      " GROUP BY ?c";
  auto baseline = ep.Query(q);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        auto r = ep.Query(q);
        // The charged latency is computed from deterministic ExecStats, so
        // concurrency must not perturb it.
        if (!r.ok() || r->latency_ms != baseline->latency_ms ||
            r->table.ToCsv() != baseline->table.ToCsv()) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(ep.queries_served(), static_cast<size_t>(kThreads) * 25 + 1);
}

TEST(ConcurrencyTest, LazyRebuildIsGuardedAcrossReaders) {
  // Readers racing into a store with staged writes: double-checked locking
  // must let exactly one rebuild run while the rest wait, and every reader
  // must see the full index afterwards.
  for (int round = 0; round < 10; ++round) {
    rdf::TripleStore store = MakeConcurrencyStore();  // staged, not indexed
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    std::atomic<int> bad{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        rdf::TriplePattern all;
        if (store.Count(all) != 240) ++bad;
        rdf::TriplePattern typed;
        typed.p = store.dict().Lookup(rdf::Term::Iri("http://c/type"));
        if (store.CountDistinct(typed, rdf::TriplePos::kO) != 4) ++bad;
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(bad.load(), 0);
  }
}

}  // namespace
}  // namespace hbold::endpoint
