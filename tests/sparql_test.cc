// Unit tests for src/sparql: lexer, parser, executor semantics (BGP joins,
// FILTER, OPTIONAL, UNION, aggregates, modifiers), result tables, and the
// visual-query builder.

#include <gtest/gtest.h>

#include "rdf/graph.h"
#include "rdf/turtle.h"
#include "rdf/vocab.h"
#include "sparql/executor.h"
#include "sparql/lexer.h"
#include "sparql/parser.h"
#include "sparql/query_builder.h"
#include "sparql/results.h"

namespace hbold::sparql {
namespace {

using rdf::Term;

// Shared fixture: a small social/geo dataset.
class SparqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto n = rdf::ParseTurtle(R"(
@prefix ex: <http://x/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .

ex:alice a foaf:Person ; foaf:name "Alice" ; foaf:age 30 ;
    foaf:knows ex:bob ; ex:livesIn ex:rome .
ex:bob a foaf:Person ; foaf:name "Bob" ; foaf:age 25 ;
    foaf:knows ex:carol ; ex:livesIn ex:rome .
ex:carol a foaf:Person ; foaf:name "Carol" ; foaf:age 41 .
ex:rome a ex:City ; foaf:name "Rome" ;
    ex:website <http://rome.example.org/sparql> .
ex:milan a ex:City ; foaf:name "Milan" ;
    ex:website <http://milan.example.org/data> .
)",
                              &store_);
    ASSERT_TRUE(n.ok()) << n.status();
    executor_ = std::make_unique<Executor>(&store_);
  }

  ResultTable Run(const std::string& q) {
    auto r = executor_->Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n" << r.status();
    return r.ok() ? *r : ResultTable();
  }

  rdf::TripleStore store_;
  std::unique_ptr<Executor> executor_;
};

constexpr char kPrefixes[] =
    "PREFIX ex: <http://x/>\n"
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n";

// ---------------------------------------------------------------- Lexer

TEST(LexerTest, TokenizesCoreForms) {
  auto toks = Tokenize("SELECT ?x WHERE { ?x a <http://x/C> . }");
  ASSERT_TRUE(toks.ok());
  ASSERT_GE(toks->size(), 9u);
  EXPECT_EQ((*toks)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[1].kind, TokenKind::kVar);
  EXPECT_EQ((*toks)[1].text, "x");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto toks = Tokenize("select distinct where filter regex");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[4].text, "REGEX");
}

TEST(LexerTest, DisambiguatesIriFromLessThan) {
  auto toks = Tokenize("FILTER (?a < 5) . ?s ?p <http://x/y>");
  ASSERT_TRUE(toks.ok());
  bool saw_lt = false, saw_iri = false;
  for (const auto& t : *toks) {
    if (t.kind == TokenKind::kLt) saw_lt = true;
    if (t.kind == TokenKind::kIri) saw_iri = true;
  }
  EXPECT_TRUE(saw_lt);
  EXPECT_TRUE(saw_iri);
}

TEST(LexerTest, StringEscapesAndComments) {
  auto toks = Tokenize("\"a\\\"b\" # trailing comment\n'single'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "a\"b");
  EXPECT_EQ((*toks)[1].text, "single");
}

TEST(LexerTest, OperatorsTwoChar) {
  auto toks = Tokenize("!= <= >= && || ^^");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kNe);
  EXPECT_EQ((*toks)[1].kind, TokenKind::kLe);
  EXPECT_EQ((*toks)[2].kind, TokenKind::kGe);
  EXPECT_EQ((*toks)[3].kind, TokenKind::kAnd);
  EXPECT_EQ((*toks)[4].kind, TokenKind::kOr);
  EXPECT_EQ((*toks)[5].kind, TokenKind::kDtCaret);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(Tokenize("SELECT ?x & ?y").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
}

// ---------------------------------------------------------------- Parser

TEST(ParserTest, ParsesProjectionAndPrefixes) {
  auto q = ParseQuery(
      "PREFIX ex: <http://x/> SELECT DISTINCT ?a ?b WHERE { ?a ex:p ?b . } "
      "LIMIT 10 OFFSET 2");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->distinct);
  EXPECT_EQ(q->vars, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(q->limit, 10u);
  EXPECT_EQ(q->offset, 2u);
  ASSERT_EQ(q->where.triples.size(), 1u);
  EXPECT_EQ(q->where.triples[0].p.term.lexical(), "http://x/p");
}

TEST(ParserTest, ParsesCountAggregate) {
  auto q = ParseQuery(
      "SELECT ?c (COUNT(DISTINCT ?i) AS ?n) WHERE { ?i a ?c . } GROUP BY ?c");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->aggregates.size(), 1u);
  EXPECT_TRUE(q->aggregates[0].distinct);
  EXPECT_EQ(q->aggregates[0].var, "i");
  EXPECT_EQ(q->aggregates[0].as, "n");
  EXPECT_EQ(q->group_by, (std::vector<std::string>{"c"}));
  EXPECT_TRUE(q->UsesAggregates());
}

TEST(ParserTest, ParsesListing1PortalQuery) {
  // The exact query shape from the paper's Listing 1.
  auto q = ParseQuery(R"(
PREFIX dcat: <http://www.w3.org/ns/dcat#>
PREFIX dc: <http://purl.org/dc/terms/>
SELECT ?dataset ?title ?url
WHERE {
  ?dataset a dcat:Dataset .
  ?dataset dc:title ?title .
  ?dataset dcat:distribution ?distribution .
  ?distribution dcat:accessURL ?url .
  filter ( regex(?url, 'sparql') ) .
}
)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->vars.size(), 3u);
  EXPECT_EQ(q->where.triples.size(), 4u);
  EXPECT_EQ(q->where.filters.size(), 1u);
}

TEST(ParserTest, ParsesOptionalAndUnion) {
  auto q = ParseQuery(R"(
SELECT * WHERE {
  ?s a <http://x/C> .
  OPTIONAL { ?s <http://x/p> ?v . }
  { ?s <http://x/q> ?w . } UNION { ?s <http://x/r> ?w . }
})");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->select_all);
  EXPECT_EQ(q->where.optionals.size(), 1u);
  EXPECT_EQ(q->where.unions.size(), 1u);
}

TEST(ParserTest, ParsesOrderByForms) {
  auto q = ParseQuery(
      "SELECT ?a WHERE { ?a ?p ?b . } ORDER BY DESC(?b) ?a LIMIT 1");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_FALSE(q->order_by[0].second);
  EXPECT_TRUE(q->order_by[1].second);
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("WHERE { ?s ?p ?o }").ok());
  EXPECT_FALSE(ParseQuery("SELECT WHERE { ?s ?p ?o . }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o . ").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s nope:x ?o . }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o . } trailing").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT (SUM(?x) AS ?s) WHERE { ?a ?b ?x . }").ok());
}

TEST(ParserTest, ParsesSemicolonAndCommaLists) {
  auto q = ParseQuery(
      "PREFIX ex: <http://x/> SELECT ?s WHERE { ?s a ex:C ; ex:p ?a, ?b . }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->where.triples.size(), 3u);
}

// ---------------------------------------------------------------- Executor

TEST_F(SparqlTest, SimpleClassQuery) {
  ResultTable t = Run(std::string(kPrefixes) +
                      "SELECT ?p WHERE { ?p a foaf:Person . }");
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.columns(), (std::vector<std::string>{"p"}));
}

TEST_F(SparqlTest, JoinAcrossPatterns) {
  // Who lives in the same city as alice? (join via ?city)
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?other WHERE {
  ex:alice ex:livesIn ?city .
  ?other ex:livesIn ?city .
})");
  EXPECT_EQ(t.num_rows(), 2u);  // alice and bob
}

TEST_F(SparqlTest, FilterNumericComparison) {
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?p WHERE { ?p foaf:age ?a . FILTER (?a > 28) . })");
  EXPECT_EQ(t.num_rows(), 2u);  // alice(30), carol(41)
}

TEST_F(SparqlTest, FilterRegexOnIriIsLenient) {
  // Listing-1 style: regex over an IRI-valued object.
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?c WHERE { ?c ex:website ?u . FILTER regex(?u, "sparql") . })");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.Cell(0, "c")->lexical(), "http://x/rome");
}

TEST_F(SparqlTest, FilterRegexCaseInsensitiveFlag) {
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?p WHERE { ?p foaf:name ?n . FILTER regex(?n, "^ali", "i") . })");
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST_F(SparqlTest, FilterRegexAlternationAndQuantifiers) {
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?p WHERE { ?p foaf:name ?n . FILTER regex(?n, "^ali|^bob", "i") . })");
  EXPECT_EQ(t.num_rows(), 2u);  // Alice and Bob
  ResultTable q = Run(std::string(kPrefixes) + R"(
SELECT ?p WHERE { ?p foaf:name ?n . FILTER regex(?n, "^[B-C].*[bl]$") . })");
  EXPECT_EQ(q.num_rows(), 2u);  // Bob, Carol (not Alice)
}

TEST_F(SparqlTest, FilterRegexUnsupportedPatternFiltersRow) {
  // Patterns outside the lite-matcher subset evaluate to an error, which
  // FILTER treats as false — same observable behavior as a malformed
  // regex before, never a silent literal match.
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?p WHERE { ?p foaf:name ?n . FILTER regex(?n, "(ali)+") . })");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(SparqlTest, FilterStrAndContains) {
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?c WHERE { ?c ex:website ?u . FILTER CONTAINS(STR(?u), "example.org") . })");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(SparqlTest, FilterBooleanConnectives) {
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?p WHERE { ?p foaf:age ?a .
  FILTER (?a > 28 && ?a < 40 || ?a = 25) . })");
  EXPECT_EQ(t.num_rows(), 2u);  // 30 and 25
}

TEST_F(SparqlTest, FilterNotAndInequality) {
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?p WHERE { ?p a foaf:Person . ?p foaf:name ?n .
  FILTER (!(?n = "Alice")) . })");
  EXPECT_EQ(t.num_rows(), 2u);
  ResultTable t2 = Run(std::string(kPrefixes) + R"(
SELECT ?p WHERE { ?p foaf:name ?n . FILTER (?n != "Rome") . })");
  EXPECT_EQ(t2.num_rows(), 4u);
}

TEST_F(SparqlTest, OptionalKeepsUnmatchedRows) {
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?p ?k WHERE {
  ?p a foaf:Person .
  OPTIONAL { ?p foaf:knows ?k . }
})");
  EXPECT_EQ(t.num_rows(), 3u);
  size_t unbound = 0;
  for (size_t i = 0; i < t.num_rows(); ++i) {
    if (!t.Cell(i, "k").has_value()) ++unbound;
  }
  EXPECT_EQ(unbound, 1u);  // carol knows nobody
}

TEST_F(SparqlTest, BoundFilterOverOptional) {
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?p WHERE {
  ?p a foaf:Person .
  OPTIONAL { ?p foaf:knows ?k . }
  FILTER (!BOUND(?k)) .
})");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.Cell(0, "p")->lexical(), "http://x/carol");
}

TEST_F(SparqlTest, UnionConcatenatesAlternatives) {
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?x WHERE {
  { ?x a foaf:Person . } UNION { ?x a ex:City . }
})");
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST_F(SparqlTest, CountStarGlobal) {
  ResultTable t = Run(std::string(kPrefixes) +
                      "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }");
  EXPECT_EQ(t.ScalarInt("n"), static_cast<int64_t>(store_.size()));
}

TEST_F(SparqlTest, CountEmptyMatchIsZeroRow) {
  ResultTable t = Run(std::string(kPrefixes) +
                      "SELECT (COUNT(*) AS ?n) WHERE { ?s ex:nothing ?o . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.ScalarInt("n"), 0);
}

TEST_F(SparqlTest, GroupByClassWithCounts) {
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?c (COUNT(?i) AS ?n) WHERE { ?i a ?c . } GROUP BY ?c ORDER BY DESC(?n))");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Cell(0, "n")->lexical(), "3");  // Person
  EXPECT_EQ(t.Cell(1, "n")->lexical(), "2");  // City
}

TEST_F(SparqlTest, CountDistinct) {
  // Distinct cities people live in: rome only.
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT (COUNT(DISTINCT ?c) AS ?n) WHERE { ?p ex:livesIn ?c . })");
  EXPECT_EQ(t.ScalarInt("n"), 1);
}

TEST_F(SparqlTest, DistinctRemovesDuplicateRows) {
  ResultTable plain = Run(std::string(kPrefixes) +
                          "SELECT ?c WHERE { ?p ex:livesIn ?c . }");
  ResultTable dedup = Run(std::string(kPrefixes) +
                          "SELECT DISTINCT ?c WHERE { ?p ex:livesIn ?c . }");
  EXPECT_EQ(plain.num_rows(), 2u);
  EXPECT_EQ(dedup.num_rows(), 1u);
}

TEST_F(SparqlTest, OrderByNumericAscending) {
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?n WHERE { ?p foaf:age ?n . } ORDER BY ?n)");
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.Cell(0, "n")->lexical(), "25");
  EXPECT_EQ(t.Cell(2, "n")->lexical(), "41");
}

TEST_F(SparqlTest, LimitOffsetSlice) {
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?n WHERE { ?p foaf:age ?n . } ORDER BY ?n LIMIT 1 OFFSET 1)");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.Cell(0, "n")->lexical(), "30");
}

TEST_F(SparqlTest, SelectStarProjectsAllVars) {
  ResultTable t = Run(std::string(kPrefixes) +
                      "SELECT * WHERE { ?p foaf:knows ?q . }");
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(SparqlTest, SharedVariableWithinPattern) {
  // ?x ?p ?x — nothing is self-linked in the fixture.
  ResultTable t = Run("SELECT ?x WHERE { ?x ?p ?x . }");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(SparqlTest, ChainJoinOrderIndependence) {
  // knows-chain: alice -> bob -> carol; written in worst order to exercise
  // the greedy reorder.
  ResultTable t = Run(std::string(kPrefixes) + R"(
SELECT ?a ?c WHERE {
  ?b foaf:knows ?c .
  ?a foaf:knows ?b .
  ?a foaf:name "Alice" .
})");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.Cell(0, "c")->lexical(), "http://x/carol");
}

TEST_F(SparqlTest, ExecStatsPopulated) {
  ExecStats stats;
  auto r = executor_->Execute(
      std::string(kPrefixes) + "SELECT ?p WHERE { ?p a foaf:Person . }",
      &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.result_rows, 3u);
  EXPECT_GE(stats.intermediate_bindings, 3u);
}

TEST_F(SparqlTest, ParseErrorPropagates) {
  auto r = executor_->Execute("SELECT");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

// ---------------------------------------------------------------- Results

TEST_F(SparqlTest, ResultTableJsonShape) {
  ResultTable t = Run(std::string(kPrefixes) +
                      "SELECT ?p WHERE { ?p a ex:City . } ORDER BY ?p");
  Json j = t.ToJson();
  ASSERT_NE(j.Find("head"), nullptr);
  ASSERT_NE(j.Find("results"), nullptr);
  const Json* bindings = j.Find("results")->Find("bindings");
  ASSERT_NE(bindings, nullptr);
  EXPECT_EQ(bindings->as_array().size(), 2u);
  EXPECT_EQ(bindings->as_array()[0].Find("p")->GetString("type"), "uri");
}

TEST_F(SparqlTest, ResultTableTsvHasHeader) {
  ResultTable t = Run(std::string(kPrefixes) +
                      "SELECT ?p WHERE { ?p a ex:City . }");
  std::string tsv = t.ToTsv();
  EXPECT_EQ(tsv.substr(0, 2), "?p");
}

TEST(ResultTableTest, TruncateAndScalar) {
  ResultTable t({"n"});
  t.AddRow({Term::IntLiteral(9)});
  t.AddRow({Term::IntLiteral(8)});
  t.Truncate(1);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.ScalarInt("n"), 9);
  EXPECT_FALSE(t.ScalarInt("missing").has_value());
}

TEST(ResultTableTest, ScalarIntRejectsNonNumeric) {
  ResultTable t({"n"});
  t.AddRow({Term::Literal("abc")});
  EXPECT_FALSE(t.ScalarInt("n").has_value());
}

// ---------------------------------------------------------------- Builder

TEST(QueryBuilderTest, BuildsClassAttributeQuery) {
  QueryBuilder b;
  b.Prefix("foaf", "http://xmlns.com/foaf/0.1/")
      .Select("s")
      .Select("name")
      .Distinct()
      .WhereClass("s", "http://xmlns.com/foaf/0.1/Person")
      .WhereLink("s", "http://xmlns.com/foaf/0.1/name", "name")
      .OrderBy("name")
      .Limit(5);
  std::string text = b.Build();
  auto q = ParseQuery(text);
  ASSERT_TRUE(q.ok()) << text << "\n" << q.status();
  EXPECT_TRUE(q->distinct);
  EXPECT_EQ(q->where.triples.size(), 2u);
  EXPECT_EQ(q->limit, 5u);
}

TEST(QueryBuilderTest, BuildsCountQuery) {
  QueryBuilder b;
  b.SelectCount(std::nullopt, "n").WhereRaw("?s", "?p", "?o");
  auto q = ParseQuery(b.Build());
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->aggregates.size(), 1u);
  EXPECT_FALSE(q->aggregates[0].var.has_value());
}

TEST(QueryBuilderTest, FiltersAndOptional) {
  QueryBuilder b;
  b.Select("s")
      .WhereClass("s", "http://x/C")
      .WhereLink("s", "http://x/p", "v")
      .MakeLastOptional()
      .FilterRegex("s", "sparql", /*case_insensitive=*/true)
      .FilterCompare("v", ">", "10");
  auto q = ParseQuery(b.Build());
  ASSERT_TRUE(q.ok()) << b.Build() << "\n" << q.status();
  EXPECT_EQ(q->where.optionals.size(), 1u);
  EXPECT_EQ(q->where.filters.size(), 2u);
}

// ----------------------------------------------------- hostile-text escaping

TEST(QueryBuilderTest, EscapeLiteralEmitsOnlyLexerEscapes) {
  EXPECT_EQ(EscapeLiteral("plain"), "plain");
  EXPECT_EQ(EscapeLiteral("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLiteral("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLiteral("line\nbreak\ttab\rcr"),
            "line\\nbreak\\ttab\\rcr");
}

TEST(QueryBuilderTest, EscapeRegexTextNeutralizesMetacharacters) {
  EXPECT_EQ(EscapeRegexText("abc"), "abc");
  EXPECT_EQ(EscapeRegexText("C++ (draft)"), "C\\+\\+ \\(draft\\)");
  EXPECT_EQ(EscapeRegexText("a.b*c?"), "a\\.b\\*c\\?");
  EXPECT_EQ(EscapeRegexText("^[x]|{y}$"), "\\^\\[x\\]\\|\\{y\\}\\$");
}

TEST(QueryBuilderTest, EscapeIriPercentEncodesForbiddenBytes) {
  // Well-formed IRIs pass through byte-identical.
  EXPECT_EQ(EscapeIri("http://x/Person"), "http://x/Person");
  // Delimiters that would terminate or corrupt the <...> token get
  // percent-encoded, so the query stays parseable.
  EXPECT_EQ(EscapeIri("http://x/a b"), "http://x/a%20b");
  EXPECT_EQ(EscapeIri("http://x/a>c"), "http://x/a%3Ec");
  EXPECT_EQ(EscapeIri("http://x/a\"c"), "http://x/a%22c");
  EXPECT_EQ(EscapeIri("http://x/a\\c"), "http://x/a%5Cc");
  EXPECT_EQ(EscapeIri("http://x/a\nc"), "http://x/a%0Ac");
}

// Hostile labels round-trip through the builder into queries the repo's own
// parser accepts — quotes, backslashes, newlines, and regex metacharacters
// can never break out of the literal or IRI context.
TEST(QueryBuilderTest, HostileTextProducesParseableQueries) {
  const std::string hostile[] = {
      "say \"hi\"",  "back\\slash", "line\nbreak",
      "C++ (draft)", "^a.b$|[c]*",  "tab\there \"x\\y\"",
  };
  for (const std::string& text : hostile) {
    QueryBuilder b;
    b.Select("s")
        .WhereClass("s", "http://x/C " + text)  // hostile IRI too
        .WhereLink("s", "http://x/p", "v")
        .FilterRegex("v", EscapeRegexText(text), true)
        .FilterCompare("v", "!=", "\"" + EscapeLiteral(text) + "\"");
    auto q = ParseQuery(b.Build());
    ASSERT_TRUE(q.ok()) << b.Build() << "\n" << q.status();
    EXPECT_EQ(q->where.filters.size(), 2u);
  }
}

// A regex-escaped search still MATCHES the literal text it came from when
// executed (metachars match themselves after escaping).
TEST_F(SparqlTest, EscapedRegexMatchesLiterally) {
  QueryBuilder b;
  b.Select("name")
      .WhereClass("p", "http://xmlns.com/foaf/0.1/Person")
      .WhereLink("p", "http://xmlns.com/foaf/0.1/name", "name")
      .FilterRegex("name", EscapeRegexText("Alice"), false);
  ResultTable t = Run(b.Build());
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.Cell(0, "name")->lexical(), "Alice");

  // A pattern full of metachars escaped: matches nothing, breaks nothing.
  QueryBuilder b2;
  b2.Select("name")
      .WhereClass("p", "http://xmlns.com/foaf/0.1/Person")
      .WhereLink("p", "http://xmlns.com/foaf/0.1/name", "name")
      .FilterRegex("name", EscapeRegexText("^Al.ce$"), false);
  EXPECT_EQ(Run(b2.Build()).num_rows(), 0u);
}

// End-to-end: builder-generated query runs on the fixture store.
TEST_F(SparqlTest, BuilderQueryExecutes) {
  QueryBuilder b;
  b.Prefix("foaf", "http://xmlns.com/foaf/0.1/")
      .Select("name")
      .WhereClass("p", "http://xmlns.com/foaf/0.1/Person")
      .WhereLink("p", "http://xmlns.com/foaf/0.1/name", "name")
      .OrderBy("name");
  ResultTable t = Run(b.Build());
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.Cell(0, "name")->lexical(), "Alice");
}

}  // namespace
}  // namespace hbold::sparql
